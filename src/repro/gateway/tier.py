"""The gateway tier: per-node gateways plus cluster-wide tenant accounting.

:class:`GatewayTier` is what a gateway-mode workload run attaches to the
runtime (``rts.gateway_tier``): it builds one :class:`Gateway` per client
node, resolves per-tenant workload overrides once, aggregates per-tenant
latency histograms and shed counters across gateways, and renders the
``read_write_summary()["gateway"]`` block.  Runs that never attach a tier
carry no block at all, which is what keeps every pre-gateway baseline
byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..metrics.latency import LatencyHistogram, LatencyRecorder, rounded_summary
from ..workloads.spec import Request, TenantSpec, WorkloadSpec
from .gateway import Gateway, TenantState
from .params import GatewayParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.cluster import Cluster
    from ..rts.base import RuntimeSystem
    from ..sim.process import SimProcess
    from ..workloads.scenarios import Scenario

#: The tenant a tenant-less spec runs under (single-class traffic).
DEFAULT_TENANT = TenantSpec(name="default")


class GatewayTier:
    """All gateways of one run, plus the cross-gateway tenant rollup."""

    def __init__(self, rts: "RuntimeSystem", scenario: "Scenario",
                 params: GatewayParams,
                 recorder: Optional[LatencyRecorder] = None,
                 counts: Optional[Dict[str, int]] = None) -> None:
        self.rts = rts
        self.scenario = scenario
        self.spec: WorkloadSpec = scenario.spec
        self.params = params
        self.tenant_specs = self.spec.tenants or (DEFAULT_TENANT,)
        #: Client-observed latency of completed requests (read/write), the
        #: same recorder the classic runner feeds; optional so the tier
        #: also works standalone in tests.
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.counts = counts if counts is not None else {"reads": 0, "writes": 0}
        self.gateways: List[Gateway] = []
        self._tenant_latency: Dict[str, LatencyHistogram] = {
            spec.name: LatencyHistogram() for spec in self.tenant_specs}
        self._tenant_workloads: Dict[str, WorkloadSpec] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def tenant_workload(self, tenant: TenantSpec) -> WorkloadSpec:
        """The run's spec with this tenant's pacing overrides applied."""
        cached = self._tenant_workloads.get(tenant.name)
        if cached is not None:
            return cached
        overrides: Dict[str, Any] = {}
        if tenant.arrival_rate is not None:
            overrides["arrival_rate"] = tenant.arrival_rate
        if tenant.think_time is not None:
            overrides["think_time"] = tenant.think_time
        if tenant.ops_per_session is not None:
            overrides["ops_per_client"] = tenant.ops_per_session
        spec = self.spec.with_overrides(**overrides) if overrides else self.spec
        self._tenant_workloads[tenant.name] = spec
        return spec

    def build(self, cluster: "Cluster", hosts: List[int]) -> List["SimProcess"]:
        """Create one gateway per host node; returns every spawned process."""
        procs: List["SimProcess"] = []
        for node_id in hosts:
            gateway = Gateway(self, cluster.node(node_id), self.params)
            self.gateways.append(gateway)
            procs.extend(gateway.start())
        return procs

    @property
    def num_sessions(self) -> int:
        """Concurrent sessions across all gateways."""
        per_gateway = sum(spec.sessions for spec in self.tenant_specs)
        return per_gateway * len(self.gateways)

    # ------------------------------------------------------------------ #
    # Accounting hooks (called by gateways)
    # ------------------------------------------------------------------ #

    def note_completion(self, tenant: TenantState, request: Request,
                        latency: float) -> None:
        self._tenant_latency[tenant.name].record(latency)
        kind = "write" if request.is_write else "read"
        self.recorder.record(kind, latency)
        self.counts["writes" if request.is_write else "reads"] += 1

    def note_shed(self, tenant: TenantState, request: Request,
                  reason: str) -> None:
        """Per-gateway counters already track sheds; hook kept for tests."""

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, Any]:
        """The ``read_write_summary()["gateway"]`` block (fingerprint-stable)."""
        tenants: Dict[str, Any] = {}
        for spec in sorted(self.tenant_specs, key=lambda t: t.name):
            offered = admitted = completed = 0
            shed: Dict[str, int] = {}
            for gateway in self.gateways:
                for state in gateway.tenants:
                    if state.name != spec.name:
                        continue
                    offered += state.offered
                    admitted += state.admitted
                    completed += state.completed
                    for reason, count in state.shed.items():
                        shed[reason] = shed.get(reason, 0) + count
            tenants[spec.name] = {
                "weight": spec.weight,
                "priority": spec.priority,
                "rate": spec.rate,
                "sessions": spec.sessions * len(self.gateways),
                "offered": offered,
                "admitted": admitted,
                "completed": completed,
                "shed": dict(sorted(shed.items())),
                "latency": rounded_summary(
                    self._tenant_latency[spec.name].summary()),
            }
        total_offered = sum(row["offered"] for row in tenants.values())
        total_completed = sum(row["completed"] for row in tenants.values())
        return {
            "params": {
                "workers": self.params.workers,
                "accept_queue": self.params.accept_queue,
                "shed_depth": self.params.shed_depth,
            },
            "gateways": len(self.gateways),
            "sessions": self.num_sessions,
            "offered": total_offered,
            "completed": total_completed,
            "shed": total_offered - total_completed,
            "tenants": tenants,
        }

    def tenant_percentile(self, name: str, fraction: float) -> float:
        """One tenant's completed-request latency percentile (bench helper)."""
        return self._tenant_latency[name].percentile(fraction)
