"""One gateway: arrival pump, admission control, fair queue, worker pool.

A :class:`Gateway` multiplexes every session on its node onto the runtime's
invoke path with exactly ``1 + workers`` simulated processes:

* the **driver** pops session arrivals (a heap of ``(arrival_time,
  session)``) in virtual-time order and runs the admission pipeline for
  each — token-bucket quota, overload shed, accept-queue bound — then
  either parks the request in the weighted fair queue or sheds it;
* the **workers** block on a counting semaphore, pop the fair queue, and
  perform the request against the runtime; completions feed closed-loop
  sessions their next arrival through the driver.

Everything is decided at deterministic virtual times with named rng
streams, so gateway cells fingerprint byte-identically per seed.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..sim.sync import SimSemaphore
from ..workloads.spec import Request, TenantSpec
from .params import GatewayParams
from .session import READY, ClientSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.cluster import Node
    from ..sim.process import SimProcess
    from .tier import GatewayTier

#: Admission-pipeline shed reasons, in the order the pipeline checks them.
SHED_REASONS = ("quota", "overload", "queue_full", "evicted")


class TokenBucket:
    """A token-bucket quota: ``rate`` tokens/second, capacity ``burst``.

    Refill is computed lazily from the arrival timestamps themselves (all
    virtual-time), so two runs of the same seed see identical decisions.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: Optional[float]) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else rate
        self.tokens = self.burst
        self.stamp: Optional[float] = None

    def try_take(self, now: float) -> bool:
        """Spend one token at virtual time ``now`` if the quota allows it."""
        if self.stamp is None:
            self.stamp = now
        elif now > self.stamp:
            self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class TenantState:
    """Per-gateway accounting for one tenant class."""

    __slots__ = ("spec", "name", "weight", "priority", "bucket", "last_finish",
                 "offered", "admitted", "completed", "shed")

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.weight = spec.weight
        self.priority = spec.priority
        self.bucket = TokenBucket(spec.rate, spec.burst) if spec.rate is not None else None
        #: Finish tag of this tenant's most recent enqueue (SFQ state).
        self.last_finish = 0.0
        self.offered = 0
        self.admitted = 0
        self.completed = 0
        self.shed = dict.fromkeys(SHED_REASONS, 0)


class _QueueEntry:
    """One admitted request parked in the fair queue."""

    __slots__ = ("arrival", "request", "session", "tenant")

    def __init__(self, arrival: float, request: Request,
                 session: ClientSession, tenant: TenantState) -> None:
        self.arrival = arrival
        self.request = request
        self.session = session
        self.tenant = tenant


class FairQueue:
    """Start-time fair queueing (SFQ) across tenants.

    Each enqueue is tagged ``start = max(vtime, tenant.last_finish)`` and
    ``finish = start + 1/weight``; dequeues pop the smallest finish tag and
    advance the queue's virtual time to the popped start tag.  Backlogged
    tenants therefore share service in proportion to their weights, while
    an idle tenant's unused share is not banked.
    """

    __slots__ = ("_heap", "_seq", "_vtime")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, float, _QueueEntry]] = []
        self._seq = 0
        self._vtime = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: _QueueEntry) -> None:
        tenant = entry.tenant
        start = self._vtime if self._vtime > tenant.last_finish else tenant.last_finish
        finish = start + 1.0 / tenant.weight
        tenant.last_finish = finish
        self._seq += 1
        heapq.heappush(self._heap, (finish, self._seq, start, entry))

    def pop(self) -> _QueueEntry:
        _finish, _seq, start, entry = heapq.heappop(self._heap)
        if start > self._vtime:
            self._vtime = start
        return entry

    def evict_lower_priority(self, priority: int) -> Optional[_QueueEntry]:
        """Remove and return the least-entitled entry below ``priority``.

        "Least entitled" is the lowest tenant priority, breaking ties
        toward the largest finish tag and then the most recent enqueue, so
        the victim is always the request fair queueing would have served
        last.  Returns ``None`` when nothing queued is below ``priority``.
        """
        best_index = -1
        best_key: Optional[Tuple[int, float, int]] = None
        for index, (finish, seq, _start, entry) in enumerate(self._heap):
            tenant_priority = entry.tenant.priority
            if tenant_priority >= priority:
                continue
            key = (tenant_priority, -finish, -seq)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        if best_index < 0:
            return None
        victim = self._heap[best_index][3]
        last = self._heap.pop()
        if best_index < len(self._heap):
            self._heap[best_index] = last
            heapq.heapify(self._heap)
        return victim


class Gateway:
    """The per-node front door: one driver process plus a worker pool."""

    def __init__(self, tier: "GatewayTier", node: "Node",
                 params: GatewayParams) -> None:
        self.tier = tier
        self.node = node
        self.sim = node.sim
        self.rts = tier.rts
        self.scenario = tier.scenario
        self.params = params
        self.tenants: List[TenantState] = [TenantState(spec)
                                           for spec in tier.tenant_specs]
        self._max_priority = max(state.priority for state in self.tenants)
        self.sessions: List[ClientSession] = []
        #: Pending session arrivals: (arrival_time, seq, session, request).
        self.arrivals: List[Tuple[float, int, ClientSession, Request]] = []
        self.queue = FairQueue()
        self.work = SimSemaphore(self.sim, 0, name=f"gateway{node.node_id}.work")
        #: Closed-loop arrivals produced by workers, merged by the driver.
        self._incoming: List[Tuple[float, int, ClientSession, Request]] = []
        #: Sessions whose next arrival waits on an in-flight completion.
        self._awaiting = 0
        self._seq = 0
        self._driver: Optional["SimProcess"] = None
        self._sleeping = False
        self._closing = False

    # ------------------------------------------------------------------ #
    # Construction / start
    # ------------------------------------------------------------------ #

    def start(self) -> List["SimProcess"]:
        """Build this node's sessions and spawn the driver + workers."""
        node_id = self.node.node_id
        for state in self.tenants:
            spec = self.tier.tenant_workload(state.spec)
            for index in range(state.spec.sessions):
                rng = self.sim.rng.stream(
                    f"gateway.{node_id}.{state.name}.{index}")
                self.sessions.append(ClientSession(
                    sid=len(self.sessions), tenant=state, spec=spec,
                    rng=rng, start_time=0.0))
        procs = [self.node.kernel.spawn_thread(
            self._driver_body, name=f"gw{node_id}.driver")]
        self._driver = procs[0]
        for wid in range(self.params.workers):
            procs.append(self.node.kernel.spawn_thread(
                self._worker_body, name=f"gw{node_id}.worker{wid}"))
        return procs

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------ #
    # Driver: the arrival pump
    # ------------------------------------------------------------------ #

    def _driver_body(self) -> None:
        proc = self.sim.current_process
        start = proc.local_time
        for session in self.sessions:
            session.start_time = start
            session._open_clock = start
            self._chain(session, start)
            # A closed-loop session's *first* request has no predecessor
            # whose completion could release it: time it off the start.
            self._release_waiting(session, start)
        heap = self.arrivals
        while True:
            if self._incoming:
                for item in self._incoming:
                    heapq.heappush(heap, item)
                del self._incoming[:]
            now = proc.local_time
            while heap and heap[0][0] <= now:
                arrival, _seq, session, request = heapq.heappop(heap)
                self._admit(now, arrival, session, request)
            if heap:
                self._sleep(proc, heap[0][0])
            elif self._awaiting or self._incoming:
                self._sleep(proc, None)
            else:
                break
        # Shutdown: every session is exhausted and no completion can
        # produce another arrival; wake each worker once so it can observe
        # the flag after the queue drains.
        self._closing = True
        self.work.release(self.params.workers)

    def _sleep(self, proc: "SimProcess", until: Optional[float]) -> None:
        """Suspend until the next arrival is due or a worker stirs us."""
        timer = None
        if until is not None:
            delay = until - proc.local_time
            timer = self.sim.schedule(delay if delay > 0.0 else 0.0, self._stir)
        self._sleeping = True
        proc.suspend()
        self._sleeping = False
        if timer is not None:
            self.sim.cancel(timer)

    def _stir(self) -> None:
        """Wake the driver (idempotent; timer and workers both call this)."""
        if self._sleeping and self._driver is not None:
            self._sleeping = False
            self._driver.wake()

    # ------------------------------------------------------------------ #
    # Admission pipeline
    # ------------------------------------------------------------------ #

    def _admit(self, now: float, arrival: float, session: ClientSession,
               request: Request) -> None:
        tenant = session.tenant
        tenant.offered += 1
        params = self.params
        reason: Optional[str] = None
        if tenant.bucket is not None and not tenant.bucket.try_take(arrival):
            reason = "quota"
        elif (params.shed_depth is not None
              and tenant.priority < self._max_priority
              and self.rts.downstream_queue_depth() >= params.shed_depth):
            reason = "overload"
        elif params.accept_queue is not None and len(self.queue) >= params.accept_queue:
            victim = self.queue.evict_lower_priority(tenant.priority)
            if victim is None:
                reason = "queue_full"
            else:
                self._evict(now, victim)
        # Generate the session's next request either way (sheds included):
        # an open-loop session stays on schedule, a closed-loop one chains
        # off this request's completion (for sheds, the rejection itself).
        if reason is not None:
            tenant.shed[reason] += 1
            self.tier.note_shed(tenant, request, reason)
            self._chain(session, now)
            # A shed *is* the request's completion as far as the session
            # can tell: a closed-loop successor hears "no" at shed time
            # and thinks from there.
            self._release_waiting(session, now)
        else:
            tenant.admitted += 1
            self.queue.push(_QueueEntry(arrival, request, session, tenant))
            self.work.release()
            self._chain(session, now)

    def _evict(self, now: float, victim: _QueueEntry) -> None:
        victim.tenant.shed["evicted"] += 1
        self.tier.note_shed(victim.tenant, victim.request, "evicted")
        self._release_waiting(victim.session, now)

    def _release_waiting(self, session: ClientSession, base: float) -> None:
        """Time a stashed closed-loop successor off its predecessor's end."""
        if session.waiting is None:
            return
        next_arrival, next_request = session.release(base)
        self._awaiting -= 1
        heapq.heappush(self.arrivals,
                       (next_arrival, self._next_seq(), session, next_request))

    def _chain(self, session: ClientSession, now: float) -> None:
        if session.done or session.waiting is not None:
            return
        state = session.advance(now)
        if state is None:
            return
        tag, arrival, request = state
        if tag == READY:
            heapq.heappush(self.arrivals,
                           (arrival, self._next_seq(), session, request))
        else:
            self._awaiting += 1

    # ------------------------------------------------------------------ #
    # Workers: the service pool
    # ------------------------------------------------------------------ #

    def _worker_body(self) -> None:
        proc = self.sim.current_process
        while True:
            self.work.acquire()
            if len(self.queue):
                entry = self.queue.pop()
            elif self._closing:
                return
            else:
                # An eviction consumed this permit's queue entry; go back
                # to sleep on the semaphore.
                continue
            self.scenario.perform(self.rts, proc, entry.request)
            completion = proc.local_time
            tenant = entry.tenant
            tenant.completed += 1
            self.tier.note_completion(tenant, entry.request,
                                      completion - entry.arrival)
            session = entry.session
            if session.waiting is not None:
                next_arrival, next_request = session.release(completion)
                self._awaiting -= 1
                self._incoming.append(
                    (next_arrival, self._next_seq(), session, next_request))
                self._stir()
