"""The front door: a session tier between many clients and the runtime.

The paper's stack assumed a few dozen application processes; this package is
what lets the reproduction face *millions* of clients.  Instead of one
simulated process per client (whose OS-thread cost caps a run at a few
hundred), each client node hosts one :class:`~repro.gateway.gateway.Gateway`
through which thousands of lightweight :class:`ClientSession` state machines
multiplex onto the existing :meth:`~repro.rts.base.RuntimeSystem.invoke`
path.  Three mechanisms keep the edge well-behaved under overload:

* **admission control** — a bounded accept queue per gateway; a full queue
  rejects new arrivals (or evicts a queued lower-priority request) instead
  of letting latency grow without bound;
* **weighted fair queueing** — admitted requests are served in start-time
  fair-queueing order across tenants, with per-tenant token-bucket quotas
  (:class:`~repro.workloads.spec.TenantSpec`), so a noisy neighbour cannot
  starve a quiet one;
* **overload shedding** — the same per-shard sequencer depth that arms the
  write batcher's backpressure
  (:meth:`~repro.rts.base.RuntimeSystem.downstream_queue_depth`) is checked
  at admission time: when the downstream is congested, only the
  highest-priority tenants are admitted, so admitted-request p99 degrades
  gracefully instead of spiralling.

Sessions are pure state (a request generator plus one pending arrival), so
a gateway drives tens of thousands of them with one driver process and a
small worker pool; the worker pool is the gateway's service capacity.  All
decisions happen at deterministic virtual times from named rng streams, so
gateway runs fingerprint byte-identically per seed.  The tier is created
lazily by gateway-mode workload runs (``WorkloadRunner(gateway=...)``) and
attached as ``rts.gateway_tier``; runs without it carry no gateway block in
``read_write_summary()``, keeping every pre-gateway baseline unchanged.
"""

from .gateway import FairQueue, Gateway, TokenBucket
from .params import GatewayParams, gateway_params
from .session import ClientSession
from .tier import GatewayTier

__all__ = [
    "ClientSession",
    "FairQueue",
    "Gateway",
    "GatewayParams",
    "GatewayTier",
    "TokenBucket",
    "gateway_params",
]
