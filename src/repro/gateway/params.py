"""Gateway tuning knobs, with the same coercion idiom as batching params."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ConfigurationError


@dataclass(frozen=True)
class GatewayParams:
    """Per-gateway capacity and admission-control configuration.

    Attributes
    ----------
    workers:
        Size of the worker pool actually issuing admitted requests against
        the runtime; this is the gateway's service capacity (sessions are
        state machines, workers are the only simulated processes that
        invoke operations).
    accept_queue:
        Bound on the admitted-but-not-yet-served queue.  A full queue
        rejects the arrival — unless the arriving tenant's priority is
        strictly higher than some queued request's, in which case that
        request is evicted instead.  ``None`` removes the bound (the
        "unshed" baseline overload benchmarks measure against).
    shed_depth:
        Downstream congestion threshold: while the runtime's
        ``downstream_queue_depth()`` is at or above this, only tenants at
        the workload's highest priority level are admitted.  ``None``
        disables overload shedding.
    """

    workers: int = 4
    accept_queue: Optional[int] = 64
    shed_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"gateways need workers >= 1, got {self.workers}")
        if self.accept_queue is not None and self.accept_queue < 1:
            raise ConfigurationError(
                f"accept_queue must be >= 1 (or None for unbounded), got {self.accept_queue}")
        if self.shed_depth is not None and self.shed_depth < 1:
            raise ConfigurationError(
                f"shed_depth must be >= 1 (or None to disable), got {self.shed_depth}")


def gateway_params(value: Any) -> Optional[GatewayParams]:
    """Coerce a user-facing gateway argument into :class:`GatewayParams`.

    ``None``/``False`` mean "no gateway tier" (the classic runner);
    ``True`` selects the defaults; a dict gives field overrides; params
    pass through.
    """
    if value is None or value is False:
        return None
    if value is True:
        return GatewayParams()
    if isinstance(value, GatewayParams):
        return value
    if isinstance(value, dict):
        return GatewayParams(**value)
    raise ConfigurationError(
        f"gateway must be True, a dict of GatewayParams fields, or GatewayParams; "
        f"got {value!r}")
