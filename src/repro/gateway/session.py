"""Client sessions: cheap per-client state machines, not simulated processes.

A :class:`ClientSession` is the gateway-tier replacement for the classic
runner's one-SimProcess-per-client: it owns a deterministic request stream
(:func:`~repro.workloads.spec.request_stream`, or the traced variant when
the spec carries an ``arrival_trace``) and turns it into timed *arrivals*
for its gateway's driver.  A session is a generator plus a few floats —
no OS thread — which is what makes ≥10k concurrent sessions per sim cell
affordable.

Arrival semantics follow the spec's (possibly per-phase) client model:

* **open** phases draw Poisson gaps onto an absolute arrival clock, so
  arrivals stay on schedule no matter how far behind the service side is
  (latency is charged from the intended arrival — no coordinated
  omission);
* **closed** phases wait for the previous request's completion (or its
  shed) plus an exponential think time;
* **hybrid** streams switch per phase: the open clock restarts from the
  switch point whenever a closed phase hands over to an open one.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

from ..workloads.spec import (
    Request,
    ResolvedPhase,
    WorkloadSpec,
    request_stream,
    traced_request_stream,
)

#: ``advance`` outcome tags: the next arrival is already timed, or it waits
#: on the in-flight request's completion (closed-loop chaining).
READY = "ready"
WAIT = "wait"


class ClientSession:
    """One client's request stream, advanced by its gateway's driver."""

    __slots__ = ("sid", "tenant", "rng", "phases", "start_time", "waiting",
                 "done", "_iter", "_traced", "_open_clock", "_prev_model")

    def __init__(self, sid: int, tenant: Any, spec: WorkloadSpec,
                 rng: random.Random, start_time: float) -> None:
        self.sid = sid
        #: The gateway-side tenant state this session bills to (opaque here).
        self.tenant = tenant
        self.rng = rng
        self.phases: List[ResolvedPhase] = spec.resolved_phases()
        self.start_time = start_time
        #: A generated closed-loop request waiting for its predecessor's
        #: completion before its arrival time exists.
        self.waiting: Optional[Request] = None
        self.done = False
        self._traced = bool(spec.arrival_trace)
        self._iter: Iterator[Any] = (traced_request_stream(spec, rng)
                                     if self._traced else request_stream(spec, rng))
        self._open_clock = start_time
        self._prev_model: Optional[str] = None

    def advance(self, now: float) -> Optional[Tuple[str, float, Optional[Request]]]:
        """Generate the next request; returns how (and when) it arrives.

        ``(READY, arrival, request)`` — the arrival time is determined
        (open-loop schedule or trace offset); ``(WAIT, 0.0, None)`` — the
        request is closed-loop and stashed in :attr:`waiting` until
        :meth:`release` is called with its predecessor's completion time;
        ``None`` — the stream is exhausted.
        """
        item = next(self._iter, None)
        if item is None:
            self.done = True
            return None
        if self._traced:
            request, offset = item
            return (READY, self.start_time + offset, request)
        request = item
        phase = self.phases[request.phase]
        if phase.client_model == "open":
            if self._prev_model == "closed":
                # Closed -> open handover: the schedule restarts from the
                # switch point instead of back-filling arrivals for the
                # time spent in the closed phase.
                self._open_clock = now
            self._prev_model = "open"
            self._open_clock += self.rng.expovariate(phase.arrival_rate)
            return (READY, self._open_clock, request)
        self._prev_model = "closed"
        self.waiting = request
        return (WAIT, 0.0, None)

    def release(self, completion_time: float) -> Tuple[float, Request]:
        """Time the stashed closed-loop request off its predecessor's end."""
        request = self.waiting
        assert request is not None, "release() without a waiting request"
        self.waiting = None
        think = self.phases[request.phase].think_time
        arrival = completion_time
        if think > 0.0:
            arrival += self.rng.expovariate(1.0 / think)
        return arrival, request
