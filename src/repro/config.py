"""Configuration dataclasses for the simulated cluster and its cost model.

The paper's measurements were taken on 16 MC68030 processors connected by a
10 Mb/s Ethernet running the Amoeba microkernel.  The reproduction replaces
that hardware with a discrete-event simulation whose behaviour is controlled
by the dataclasses in this module.  All times are expressed in **seconds of
virtual time**; all sizes in bytes.

The defaults are calibrated so that the relative cost of computation versus
communication is in the same regime as the paper's testbed: a null RPC of a
few milliseconds, a reliable broadcast of a couple of milliseconds plus
per-receiver interrupt handling, and application "work units" on the order of
tens of microseconds (an MC68030 executed roughly a few million instructions
per second).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .errors import ConfigurationError

#: Maximum payload carried by a single simulated network packet, in bytes.
#: The paper's PB/BB switch-over point is "one packet"; classic Ethernet
#: frames carry at most 1500 bytes of payload.
DEFAULT_PACKET_SIZE = 1500


@dataclass(frozen=True)
class NetworkParams:
    """Parameters of the simulated interconnect.

    Attributes
    ----------
    bandwidth_bps:
        Raw bandwidth of the shared medium in bits per second.  The default is
        the paper's 10 Mb/s Ethernet.
    latency:
        Fixed propagation plus media-access latency per packet (seconds).
    packet_size:
        Maximum payload bytes per packet; larger messages are fragmented.
    packet_overhead_bytes:
        Header bytes added to every packet (consumes bandwidth only).
    supports_broadcast:
        Whether the medium supports hardware (multicast) broadcast.  The
        broadcast RTS requires this; the point-to-point RTS does not.
    loss_rate:
        Probability that an individual packet is dropped in transit.  Used by
        the failure-injection tests; zero by default.
    """

    bandwidth_bps: float = 10_000_000.0
    latency: float = 0.0002
    packet_size: int = DEFAULT_PACKET_SIZE
    packet_overhead_bytes: int = 64
    supports_broadcast: bool = True
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be positive")
        if self.latency < 0:
            raise ConfigurationError("latency must be non-negative")
        if self.packet_size <= 0:
            raise ConfigurationError("packet_size must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")

    def transmit_time(self, payload_bytes: int) -> float:
        """Time the medium is occupied transmitting ``payload_bytes`` in one packet."""
        total_bytes = payload_bytes + self.packet_overhead_bytes
        return (total_bytes * 8.0) / self.bandwidth_bps

    def packets_for(self, payload_bytes: int) -> int:
        """Number of packets needed to carry a message of ``payload_bytes``."""
        if payload_bytes <= 0:
            return 1
        return -(-payload_bytes // self.packet_size)


@dataclass(frozen=True)
class CpuParams:
    """Per-node CPU cost parameters.

    Attributes
    ----------
    work_unit_time:
        Virtual time consumed by one application "work unit".  Applications
        account for their computation in abstract work units (e.g. one tour
        extension in TSP, one constraint check in ACP); this factor converts
        them to seconds.
    interrupt_cost:
        CPU time consumed by taking a network interrupt (per received packet).
    protocol_cost:
        CPU time for protocol processing of one message (header parsing,
        buffer management) beyond the raw interrupt.
    operation_dispatch_cost:
        CPU time to marshal/dispatch one shared-object operation locally.
    sequencing_cost:
        CPU *service time* the sequencer spends ordering one message:
        assigning the number, retaining the message in the history buffer,
        flow control.  Unlike the other cost fields this is a queueing
        service time — messages arriving faster than ``1 / sequencing_cost``
        wait in the sequencer's queue — so it bounds a single group's
        ordered-broadcast throughput.  The paper reports exactly this
        sequencer load as the protocol's limit for short messages, and it
        is what multi-group sharding spreads over the cluster.  The default
        of 0 disables the queueing model (sequencing is instantaneous and
        charged at ``operation_dispatch_cost``, the regime the paper-figure
        reproductions are calibrated against); the shard-scaling benchmark
        raises it to study the saturated sequencer.
    context_switch_cost:
        CPU time for a thread context switch inside a node.
    """

    work_unit_time: float = 2.0e-5
    interrupt_cost: float = 1.0e-4
    protocol_cost: float = 3.0e-4
    operation_dispatch_cost: float = 5.0e-5
    sequencing_cost: float = 0.0
    context_switch_cost: float = 5.0e-5

    def __post_init__(self) -> None:
        for name in (
            "work_unit_time",
            "interrupt_cost",
            "protocol_cost",
            "operation_dispatch_cost",
            "sequencing_cost",
            "context_switch_cost",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class BroadcastParams:
    """Parameters of the sequencer-based totally-ordered broadcast protocols."""

    #: Messages at most this many packets long use PB; longer ones use BB.
    pb_max_packets: int = 1
    #: Size of the sequencer's history buffer (messages retained for
    #: retransmission requests).
    history_size: int = 1024
    #: Virtual-time interval between sequencer liveness checks (election).
    election_timeout: float = 0.05
    #: Fixed protocol selection: "auto" (paper behaviour), "pb", or "bb".
    method: str = "auto"

    def __post_init__(self) -> None:
        if self.pb_max_packets < 1:
            raise ConfigurationError("pb_max_packets must be >= 1")
        if self.history_size < 1:
            raise ConfigurationError("history_size must be >= 1")
        if self.method not in ("auto", "pb", "bb"):
            raise ConfigurationError("method must be one of 'auto', 'pb', 'bb'")


@dataclass(frozen=True)
class ReplicationParams:
    """Dynamic-replication policy parameters for the point-to-point RTS.

    A machine acquires a local copy of an object when its observed
    read/write ratio exceeds ``replicate_threshold`` (with at least
    ``min_accesses`` accesses observed); it drops the copy again when the
    ratio falls below ``drop_threshold``.  Using two thresholds gives the
    hysteresis the paper describes.
    """

    replicate_threshold: float = 4.0
    drop_threshold: float = 1.0
    min_accesses: int = 8
    #: Exponential decay applied to the statistics window after each decision,
    #: so that the policy adapts to phase changes in the access pattern.
    decay: float = 0.5

    def __post_init__(self) -> None:
        if self.replicate_threshold <= self.drop_threshold:
            raise ConfigurationError(
                "replicate_threshold must be greater than drop_threshold"
            )
        if self.min_accesses < 1:
            raise ConfigurationError("min_accesses must be >= 1")
        if not 0.0 <= self.decay <= 1.0:
            raise ConfigurationError("decay must be in [0, 1]")


@dataclass(frozen=True)
class CostModel:
    """Complete cost model of the simulated cluster."""

    network: NetworkParams = field(default_factory=NetworkParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    broadcast: BroadcastParams = field(default_factory=BroadcastParams)
    replication: ReplicationParams = field(default_factory=ReplicationParams)

    def with_overrides(self, **sections: Any) -> "CostModel":
        """Return a copy with per-section overrides applied.

        Each keyword names a section (``network``, ``cpu``, ``broadcast``,
        ``replication``) and maps either to a dict of field overrides or to a
        complete replacement params object::

            model.with_overrides(network={"bandwidth_bps": 1e8},
                                 replication=ReplicationParams(min_accesses=2))
        """
        updated: dict[str, Any] = {}
        for section, overrides in sections.items():
            if not hasattr(self, section):
                raise ConfigurationError(f"unknown cost-model section: {section!r}")
            current = getattr(self, section)
            if isinstance(overrides, type(current)):
                updated[section] = overrides
            else:
                updated[section] = replace(current, **dict(overrides))
        return replace(self, **updated)


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of a simulated cluster run.

    Attributes
    ----------
    num_nodes:
        Number of processor-pool machines (the paper used up to 16).
    cost_model:
        Cost model shared by all nodes and the interconnect.
    seed:
        Master seed for all pseudo-random streams used by the simulation.
    trace:
        Whether to record a structured event trace (useful for debugging and
        for the consistency checker; adds memory overhead).
    """

    num_nodes: int = 4
    cost_model: CostModel = field(default_factory=CostModel)
    seed: int = 42
    trace: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")

    def with_nodes(self, num_nodes: int) -> "ClusterConfig":
        """Return a copy of this configuration with a different node count."""
        return replace(self, num_nodes=num_nodes)

    def with_seed(self, seed: int) -> "ClusterConfig":
        """Return a copy of this configuration with a different master seed."""
        return replace(self, seed=seed)


DEFAULT_COST_MODEL = CostModel()
