"""Experiment orchestration used by the benchmark suite and the examples."""

from .experiment import ScalingExperiment, ExperimentResult
from .sweeps import ParameterSweep, workload_run_collection
from .figures import render_speedup_figure

__all__ = [
    "ScalingExperiment",
    "ExperimentResult",
    "ParameterSweep",
    "workload_run_collection",
    "render_speedup_figure",
]
