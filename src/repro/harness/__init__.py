"""Experiment orchestration used by the benchmark suite and the examples."""

from .experiment import ScalingExperiment, ExperimentResult
from .sweeps import ParameterSweep
from .figures import render_speedup_figure

__all__ = [
    "ScalingExperiment",
    "ExperimentResult",
    "ParameterSweep",
    "render_speedup_figure",
]
