"""Generic parameter sweeps (used by the protocol and ablation benchmarks)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

from ..metrics.collectors import RunCollection, RunRecord


@dataclass
class SweepPoint:
    """One parameter combination and the measurement it produced."""

    params: Dict[str, Any]
    measurement: Dict[str, Any]


class ParameterSweep:
    """Run a measurement function over the cartesian product of parameters.

    The measurement function receives the parameter combination as keyword
    arguments and returns a dict of measured quantities.
    """

    def __init__(self, name: str, measure: Callable[..., Mapping[str, Any]],
                 parameters: Mapping[str, Sequence[Any]]) -> None:
        self.name = name
        self.measure = measure
        self.parameters = {key: list(values) for key, values in parameters.items()}

    def combinations(self) -> List[Dict[str, Any]]:
        keys = sorted(self.parameters)
        product = itertools.product(*(self.parameters[k] for k in keys))
        return [dict(zip(keys, combo)) for combo in product]

    def execute(self) -> List[SweepPoint]:
        points = []
        for combo in self.combinations():
            measurement = dict(self.measure(**combo))
            points.append(SweepPoint(params=combo, measurement=measurement))
        return points

    @staticmethod
    def to_rows(points: Iterable[SweepPoint], param_keys: Sequence[str],
                measure_keys: Sequence[str]) -> List[List[str]]:
        """Flatten sweep points into table rows for reporting."""
        rows = []
        for point in points:
            row = [str(point.params.get(k)) for k in param_keys]
            row.extend(str(point.measurement.get(k)) for k in measure_keys)
            rows.append(row)
        return rows


def workload_run_collection(reports: Iterable[Any]) -> RunCollection:
    """Adapt :class:`~repro.workloads.runner.WorkloadReport` objects to the
    harness's :class:`RunCollection`, so workload sweeps can reuse the same
    filtering/column machinery as the speedup benchmarks."""
    collection = RunCollection()
    for report in reports:
        collection.add(RunRecord(
            label=f"{report.scenario}/{report.runtime}",
            params={"scenario": report.scenario, "runtime": report.runtime,
                    "workload": report.workload, "num_nodes": report.num_nodes,
                    "num_clients": report.num_clients},
            elapsed=report.elapsed,
            value=report.total_ops,
            network=dict(report.network),
            rts=dict(report.rts_summary),
            extra={"throughput": report.throughput,
                   "latency": report.percentile_row(),
                   "facts": dict(report.scenario_facts),
                   "policies": report.final_policies()},
        ))
    return collection
