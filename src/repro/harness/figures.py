"""Rendering of the paper's figures from experiment results."""

from __future__ import annotations

from typing import Dict, Optional

from ..metrics.report import ascii_plot, format_table
from ..metrics.speedup import SpeedupCurve


def render_speedup_figure(title: str, curve: SpeedupCurve,
                          max_procs: Optional[int] = None) -> str:
    """Render a Fig. 2 / Fig. 3 style chart: measured speedup vs perfect speedup."""
    procs = curve.processor_counts
    top = max_procs or max(procs)
    measured = {float(p): curve.speedup(p) for p in procs}
    perfect = {float(p): float(p) for p in procs}
    chart = ascii_plot(
        {"measured": measured, "perfect": perfect},
        title=title, x_label="number of processors", y_label="speedup",
        y_max=float(top),
    )
    table = format_table(
        ["CPUs", "time (s)", "speedup", "efficiency"],
        curve.as_rows(),
    )
    return f"{chart}\n\n{table}"
