"""Scaling experiments: run the same Orca program over a range of processor counts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..metrics.collectors import RunCollection, RunRecord
from ..metrics.speedup import SpeedupCurve
from ..orca.program import ProgramResult

#: A factory that, given a processor count, runs the program and returns its result.
RunFunction = Callable[[int], ProgramResult]


@dataclass
class ExperimentResult:
    """Outcome of one scaling experiment."""

    name: str
    curve: SpeedupCurve
    runs: RunCollection
    #: The application-level answer from each run (used to assert all
    #: processor counts computed the same result).
    values: Dict[int, Any] = field(default_factory=dict)

    def consistent_values(self) -> bool:
        """True if every processor count produced the same application answer."""
        unique = {repr(v) for v in self.values.values()}
        return len(unique) <= 1

    def table_rows(self) -> List[List[str]]:
        return self.curve.as_rows()


class ScalingExperiment:
    """Runs a program at several processor counts and builds its speedup curve."""

    def __init__(self, name: str, run: RunFunction,
                 processor_counts: Sequence[int], base_procs: Optional[int] = None) -> None:
        self.name = name
        self.run = run
        self.processor_counts = sorted(set(processor_counts))
        self.base_procs = base_procs if base_procs is not None else self.processor_counts[0]

    def execute(self) -> ExperimentResult:
        """Run every configuration; returns the collected curve and records."""
        times: Dict[int, float] = {}
        values: Dict[int, Any] = {}
        runs = RunCollection()
        for procs in self.processor_counts:
            result = self.run(procs)
            times[procs] = result.elapsed
            values[procs] = result.value
            runs.add(RunRecord.from_program_result(
                label=self.name, params={"procs": procs}, result=result,
            ))
        curve = SpeedupCurve(times=times, base_procs=self.base_procs)
        return ExperimentResult(name=self.name, curve=curve, runs=runs, values=values)
