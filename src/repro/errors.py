"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures distinctly from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the simulator runs out of events while processes are blocked."""


class ProcessError(SimulationError):
    """Raised when a simulated process misbehaves (e.g. crashes with an exception)."""


class NetworkError(ReproError):
    """Errors raised by the simulated network substrate."""


class RoutingError(NetworkError):
    """Raised when a message is addressed to an unknown node."""


class RpcError(ReproError):
    """Errors raised by the Amoeba RPC layer."""


class RpcTimeoutError(RpcError):
    """Raised when an RPC does not complete within its timeout."""


class RpcPeerDeadError(RpcError):
    """Raised when the failure detector reports the RPC's server crashed.

    The cluster wires every node crash to :meth:`RpcEndpoint.fail_pending_to`,
    so a client blocked on a call to the dead machine is woken with this
    error instead of hanging on a reply that can never arrive — the
    simulator's stand-in for a failure-detection service.
    """


class BroadcastError(ReproError):
    """Errors raised by the totally-ordered broadcast protocols."""


class SequencerUnavailableError(BroadcastError):
    """Raised when no sequencer is available and election is disabled."""


class RtsError(ReproError):
    """Errors raised by the shared-object runtime systems."""


class TransactionAborted(RtsError):
    """Raised by ``transact(..., on_guard="abort")`` when a guard rejects
    the group; no participant applied anything."""


class UnknownObjectError(RtsError):
    """Raised when an operation references an object id not registered locally."""


class UnknownOperationError(RtsError):
    """Raised when an operation name is not defined by the object's type."""


class ConsistencyViolationError(RtsError):
    """Raised by the consistency checker when a history is not sequentially consistent."""


class OrcaError(ReproError):
    """Errors raised by the Orca programming layer."""


class OrcaTypeError(OrcaError):
    """Raised by the Orca mini-language type checker."""


class OrcaSyntaxError(OrcaError):
    """Raised by the Orca mini-language parser."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class OrcaRuntimeError(OrcaError):
    """Raised when an Orca mini-language program fails at run time."""


class ApplicationError(ReproError):
    """Errors raised by the example applications."""


class ConfigurationError(ReproError):
    """Raised when configuration values are inconsistent or out of range."""
