"""Whole-program execution: build a cluster, run main, collect measurements.

:class:`OrcaProgram` is the top-level entry point used by the examples and
benchmarks.  It assembles the simulated cluster, instantiates the requested
runtime system, runs the user's ``main(proc, *args)`` function as the first
Orca process on processor 0, and returns a :class:`ProgramResult` with the
program's return value, the elapsed virtual time, and the communication /
runtime statistics needed to reproduce the paper's measurements.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..amoeba.cluster import Cluster
from ..config import ClusterConfig
from ..errors import ConfigurationError
from ..rts.base import RuntimeSystem
from ..rts.hybrid import HybridRts
from ..rts.policy import DEFAULT_POLICY_FOR_KIND
from .process import OrcaProcess

#: rts= spellings accepted by :class:`OrcaProgram`, with the default policy
#: each configures the unified runtime with.  ``"hybrid"`` is the
#: mixed-per-object spelling; the rest share the cross-layer mapping.
RTS_KINDS = dict(DEFAULT_POLICY_FOR_KIND, hybrid="broadcast")


@dataclass
class ProgramResult:
    """Everything measured during one Orca program run."""

    #: Return value of the program's ``main`` function.
    value: Any
    #: Virtual time at which the last process finished (seconds).
    elapsed: float
    #: Number of processors used.
    num_nodes: int
    #: Which runtime system ran the program.
    rts_name: str
    #: Network traffic summary (messages, bytes, interrupts, ...).
    network: Dict[str, Any] = field(default_factory=dict)
    #: Runtime-system summary (reads, writes, replication decisions, ...).
    rts: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock seconds spent simulating (for harness bookkeeping only).
    wall_seconds: float = 0.0
    #: Events processed by the simulator.
    events: int = 0
    #: Protocol CPU overhead charged across all nodes (seconds of virtual time).
    overhead_time: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ProgramResult value={self.value!r} elapsed={self.elapsed:.4f}s "
                f"nodes={self.num_nodes} rts={self.rts_name}>")


#: Signature of an Orca main function: ``main(proc, *args) -> value``.
MainFunction = Callable[..., Any]


class OrcaProgram:
    """An Orca program: a main function plus the cluster it runs on."""

    def __init__(self, main: MainFunction, config: Optional[ClusterConfig] = None,
                 rts: str = "broadcast", rts_options: Optional[Dict[str, Any]] = None,
                 network_type: Optional[str] = None) -> None:
        """Prepare a program.

        Parameters
        ----------
        main:
            The main function, called as ``main(proc, *args)`` where ``proc``
            is the root :class:`OrcaProcess` (running on processor 0).
        config:
            Cluster configuration (processor count, cost model, seed).
        rts:
            ``"broadcast"`` (every object broadcast replicated — the paper's
            default), ``"p2p"`` (every object primary copy), ``"hybrid"``
            (per-object policies via ``rts_options["default_policy"]`` and
            ``new_object(policy=...)``), or ``"adaptive"`` (objects migrate
            between policies based on their read/write mix).
        rts_options:
            Extra keyword arguments for the unified runtime constructor
            (e.g. ``{"protocol": "invalidation"}`` for the p2p flavour, or
            ``{"num_shards": 4, "batching": True}``).
        network_type:
            ``"ethernet"`` or ``"switched"``; defaults to Ethernet for every
            broadcast-capable configuration and switched for the p2p RTS.
        """
        self.main = main
        self.config = config or ClusterConfig()
        self.rts_kind = rts
        self.rts_options = dict(rts_options or {})
        if rts not in RTS_KINDS:
            raise ConfigurationError(f"unknown runtime system {rts!r}")
        if network_type is None:
            network_type = "switched" if rts == "p2p" else "ethernet"
        self.network_type = network_type
        #: Populated by :meth:`run` (useful for post-run inspection in tests).
        self.cluster: Optional[Cluster] = None
        self.runtime: Optional[RuntimeSystem] = None

    # ------------------------------------------------------------------ #

    def _build_runtime(self, cluster: Cluster) -> RuntimeSystem:
        options = dict(self.rts_options)
        options.setdefault("default_policy", RTS_KINDS[self.rts_kind])
        runtime = HybridRts(cluster, **options)
        if self.rts_kind == "hybrid":
            # Mixed per-object policies: report under the unified name
            # rather than whatever the default policy happens to be.
            runtime.name = "hybrid-rts"
        return runtime

    def run(self, *main_args: Any, keep_cluster: bool = False, **main_kwargs: Any) -> ProgramResult:
        """Execute the program to completion and return its measurements.

        The cluster and runtime are discarded afterwards unless
        ``keep_cluster`` is true (tests use this to inspect internal state).
        """
        started = _wallclock.perf_counter()
        cluster = Cluster(self.config, network_type=self.network_type)
        runtime = self._build_runtime(cluster)
        self.cluster, self.runtime = cluster, runtime

        root = OrcaProcess(cluster, runtime, node_id=0, name="main")
        outcome: Dict[str, Any] = {}

        def _main_body() -> None:
            outcome["value"] = self.main(root, *main_args, **main_kwargs)

        root.sim_proc = cluster.node(0).kernel.spawn_thread(_main_body, name="main")
        try:
            elapsed = cluster.sim.run()
            result = ProgramResult(
                value=outcome.get("value"),
                elapsed=elapsed,
                num_nodes=cluster.num_nodes,
                rts_name=runtime.name,
                network=cluster.network_summary(),
                rts=runtime.read_write_summary(),
                wall_seconds=_wallclock.perf_counter() - started,
                events=cluster.sim.events_processed,
                overhead_time=cluster.total_overhead_time(),
            )
        finally:
            if not keep_cluster:
                cluster.shutdown()
                self.cluster, self.runtime = None, None
        return result

    # ------------------------------------------------------------------ #

    def run_on(self, num_nodes: int, *main_args: Any, **main_kwargs: Any) -> ProgramResult:
        """Run the same program on a cluster of ``num_nodes`` processors."""
        original = self.config
        self.config = original.with_nodes(num_nodes)
        try:
            return self.run(*main_args, **main_kwargs)
        finally:
            self.config = original
