"""Object proxies: the syntax through which Orca processes touch shared objects.

A :class:`BoundObject` wraps an :class:`~repro.rts.base.ObjectHandle` and the
runtime system managing it.  Attribute access returns a callable per declared
operation, so application code simply writes ``bound.enqueue(job)`` or
``value = bound.read()`` — the proxy figures out which simulated process is
invoking (the one currently holding control) and routes the call through the
runtime system, which makes it a local read, a broadcast write, or an RPC as
appropriate.  This is what the paper calls location transparency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict

from ..errors import OrcaError, UnknownOperationError
from ..rts.base import ObjectHandle, RuntimeSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.process import SimProcess


class BoundObject:
    """A location-transparent reference to a shared object, usable from any process."""

    __slots__ = ("_rts", "_handle", "_op_cache")

    def __init__(self, rts: RuntimeSystem, handle: ObjectHandle) -> None:
        self._rts = rts
        self._handle = handle
        self._op_cache: Dict[str, Callable[..., Any]] = {}

    # -- introspection ----------------------------------------------------- #

    @property
    def handle(self) -> ObjectHandle:
        """The underlying runtime handle."""
        return self._handle

    @property
    def name(self) -> str:
        """The object's name (for reports and debugging)."""
        return self._handle.name

    @property
    def runtime(self) -> RuntimeSystem:
        """The runtime system managing this object."""
        return self._rts

    @property
    def policy(self) -> str:
        """Name of the management policy currently governing this object."""
        return self._rts.policy_of(self._handle)

    def migrate(self, policy: Any) -> bool:
        """Move this object under another management policy at run time.

        Only meaningful on the unified runtime; returns ``True`` when a
        migration was performed (see
        :meth:`repro.rts.hybrid.HybridRts.migrate`).
        """
        migrate = getattr(self._rts, "migrate", None)
        if migrate is None:
            raise OrcaError(
                f"runtime {self._rts.name!r} does not support policy migration")
        return migrate(self._current_process(), self._handle, policy)

    def operations(self):
        """Names of the operations this object supports."""
        return sorted(self._handle.spec_class.operations())

    # -- invocation --------------------------------------------------------- #

    def _current_process(self) -> "SimProcess":
        proc = self._rts.sim.current_process
        if proc is None:
            raise OrcaError(
                f"operation on shared object {self.name!r} invoked outside any "
                "Orca process (operations must run inside the simulation)"
            )
        return proc

    def invoke(self, op_name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke an operation by name (the explicit form of attribute access)."""
        proc = self._current_process()
        return self._rts.invoke(proc, self._handle, op_name, args, kwargs)

    def __getattr__(self, op_name: str) -> Callable[..., Any]:
        if op_name.startswith("_"):
            raise AttributeError(op_name)
        cached = self._op_cache.get(op_name)
        if cached is not None:
            return cached
        if op_name not in self._handle.spec_class.operations():
            raise UnknownOperationError(
                f"object {self.name!r} of type {self._handle.spec_class.__name__!r} "
                f"has no operation {op_name!r}"
            )

        def call(*args: Any, **kwargs: Any) -> Any:
            proc = self._current_process()
            return self._rts.invoke(proc, self._handle, op_name, args, kwargs)

        call.__name__ = op_name
        self._op_cache[op_name] = call
        return call

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BoundObject {self.name!r} via {self._rts.name}>"
