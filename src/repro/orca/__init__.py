"""The Orca programming model.

Orca programs consist of *processes* and *shared data-objects*.  Processes
are created with ``fork`` and may run on any processor; objects are abstract
data types whose operations are indivisible and sequentially consistent, no
matter how many machines hold replicas.  This package provides that model as
a Python API (:mod:`repro.orca.api`, :mod:`repro.orca.process`,
:mod:`repro.orca.program`), a library of generally useful object types
(:mod:`repro.orca.builtin_objects`), and a small Orca-subset language front
end (:mod:`repro.orca.lang`).
"""

from ..rts.object_model import ObjectSpec, operation
from .api import BoundObject
from .process import OrcaProcess
from .program import OrcaProgram, ProgramResult

__all__ = [
    "ObjectSpec",
    "operation",
    "BoundObject",
    "OrcaProcess",
    "OrcaProgram",
    "ProgramResult",
]
