"""Orca processes: the active entities of an Orca program.

An :class:`OrcaProcess` wraps a simulated kernel thread pinned to one
processor-pool node and provides the Orca-level facilities: ``fork`` to
create new processes (optionally on another processor), shared-object
creation, work accounting, and joining.  Shared objects are passed to forked
children simply by passing the :class:`~repro.orca.api.BoundObject` as an
argument — call-by-reference, exactly as in Orca.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Type

from ..errors import OrcaError
from ..rts.base import RuntimeSystem
from ..rts.object_model import ObjectSpec
from .api import BoundObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.cluster import Cluster
    from ..sim.process import SimProcess

_process_ids = itertools.count(1)


class OrcaProcess:
    """One Orca process, running on a specific processor."""

    def __init__(self, cluster: "Cluster", rts: RuntimeSystem, node_id: int,
                 name: str = "orca") -> None:
        self.cluster = cluster
        self.rts = rts
        self.node_id = node_id
        self.name = name
        self.pid = next(_process_ids)
        self.sim_proc: Optional["SimProcess"] = None
        self.children: List["OrcaProcess"] = []

    # ------------------------------------------------------------------ #
    # Environment
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of processors in the pool."""
        return self.cluster.num_nodes

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def now(self) -> float:
        """Current virtual time as observed by this process."""
        if self.sim_proc is not None:
            return self.sim_proc.local_time
        return self.sim.now

    def _require_running(self) -> "SimProcess":
        proc = self.sim.current_process
        if proc is None or proc is not self.sim_proc:
            raise OrcaError(
                f"Orca process {self.name!r} used from outside its own execution context"
            )
        return proc

    # ------------------------------------------------------------------ #
    # Work accounting and time
    # ------------------------------------------------------------------ #

    def compute(self, work_units: float) -> None:
        """Account ``work_units`` of application computation (lazy, cheap)."""
        self._require_running().compute(work_units)

    def hold(self, duration: float) -> None:
        """Let virtual time pass (e.g. to model I/O or explicit delays)."""
        self._require_running().hold(duration)

    # ------------------------------------------------------------------ #
    # Shared objects
    # ------------------------------------------------------------------ #

    def new_object(self, spec_class: Type[ObjectSpec], *args: Any,
                   name: Optional[str] = None, policy: Any = None,
                   **kwargs: Any) -> BoundObject:
        """Create a shared object and return a location-transparent reference.

        ``policy`` selects the object's management policy (``"broadcast"``,
        ``"primary-invalidate"``, ``"primary-update"``, ``"adaptive"``, or a
        :class:`~repro.rts.policy.ManagementPolicy`); ``None`` uses the
        runtime's default.
        """
        proc = self._require_running()
        handle = self.rts.create_object(proc, spec_class, args, kwargs,
                                        name=name, policy=policy)
        return BoundObject(self.rts, handle)

    def transact(self, ops, on_guard: str = "retry") -> List[Any]:
        """Execute operations on several shared objects atomically.

        ``ops`` is a sequence of ``(obj, op_name[, args[, kwargs]])``
        entries where ``obj`` is a :class:`BoundObject` (or a raw handle);
        the per-operation results come back in the same order.  The group
        is all-or-nothing and serializable against every other invocation
        in the program.  ``on_guard="abort"`` raises
        :class:`~repro.errors.TransactionAborted` when a guard rejects the
        group instead of waiting and retrying.

        Caveat: plain reads between a cross-shard commit's per-shard
        applies can see read skew (one object post-commit, another
        pre-commit); read the objects through a transaction of their own
        when a consistent multi-object view matters.  See
        :meth:`repro.rts.hybrid.HybridRts.transact`.
        """
        proc = self._require_running()
        transact = getattr(self.rts, "transact", None)
        if transact is None:
            raise OrcaError(
                f"runtime {self.rts.name!r} does not support transactions")
        return transact(proc, ops, on_guard=on_guard)

    # ------------------------------------------------------------------ #
    # Process management
    # ------------------------------------------------------------------ #

    def fork(self, func: Callable[..., Any], *args: Any,
             on_node: Optional[int] = None, name: Optional[str] = None,
             **kwargs: Any) -> "OrcaProcess":
        """Create a new Orca process running ``func(child, *args, **kwargs)``.

        ``on_node`` selects the processor; the default is the forker's own
        processor (the Orca default).  Shared objects are passed by reference
        simply by including their :class:`BoundObject` in ``args``.
        """
        parent_proc = self._require_running()
        target_node = self.node_id if on_node is None else on_node
        if not 0 <= target_node < self.cluster.num_nodes:
            raise OrcaError(
                f"fork onto node {target_node} but the pool has {self.cluster.num_nodes} nodes"
            )
        child = OrcaProcess(self.cluster, self.rts, target_node,
                            name=name or f"{func.__name__}@{target_node}")
        self.children.append(child)

        cpu = self.cluster.cost_model.cpu
        net = self.cluster.cost_model.network
        # Creating a remote process costs the forker a dispatch and the fork
        # request one message's worth of latency before the child starts.
        parent_proc.advance(cpu.operation_dispatch_cost)
        start_delay = 0.0
        if target_node != self.node_id:
            start_delay = net.latency + net.transmit_time(128) + cpu.context_switch_cost

        def _child_body() -> None:
            return func(child, *args, **kwargs)

        child.sim_proc = self.cluster.node(target_node).kernel.spawn_thread(
            _child_body, name=child.name, start_delay=start_delay,
        )
        return child

    def fork_workers(self, func: Callable[..., Any], *args: Any,
                     count: Optional[int] = None, start_node: int = 0,
                     **kwargs: Any) -> List["OrcaProcess"]:
        """Fork one worker per processor (the replicated-worker paradigm).

        ``count`` defaults to the number of processors; workers are placed
        round-robin starting at ``start_node``.  Each worker receives its
        worker index as a keyword argument ``worker_id``.
        """
        total = self.cluster.num_nodes if count is None else count
        workers = []
        for index in range(total):
            node = (start_node + index) % self.cluster.num_nodes
            workers.append(
                self.fork(func, *args, on_node=node, worker_id=index,
                          name=f"{func.__name__}[{index}]@{node}", **kwargs)
            )
        return workers

    def join(self, child: "OrcaProcess") -> Any:
        """Wait for ``child`` to terminate; returns its result."""
        proc = self._require_running()
        if child.sim_proc is None:
            raise OrcaError(f"cannot join process {child.name!r}: it never started")
        return proc.join(child.sim_proc)

    def join_all(self, children: List["OrcaProcess"]) -> List[Any]:
        """Wait for every process in ``children``; returns their results in order."""
        return [self.join(child) for child in children]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<OrcaProcess {self.name!r} pid={self.pid} node={self.node_id}>"
