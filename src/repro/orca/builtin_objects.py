"""A library of generally useful shared object types.

These are the object types most Orca programs need: shared scalars, a job
queue for the replicated-worker paradigm, sets, counters, dictionaries and a
barrier.  They also serve as worked examples of how to define object types
with the :func:`~repro.rts.object_model.operation` decorator, including
guarded (blocking) operations.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional

from ..rts.object_model import ObjectSpec, operation


class IntObject(ObjectSpec):
    """A shared integer with atomic read-modify-write operations.

    The TSP global bound is an ``IntObject`` used through :meth:`min_update`,
    whose indivisibility prevents the race the paper mentions ("first checks
    if the new value actually is less than the current value").
    """

    def init(self, value: int = 0) -> None:
        self.value = value

    @operation(write=False)
    def read(self) -> int:
        """Return the current value (local, no communication when replicated)."""
        return self.value

    @operation(write=True)
    def assign(self, value: int) -> int:
        """Set the value unconditionally; returns the new value."""
        self.value = value
        return self.value

    @operation(write=True)
    def add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; returns the new value."""
        self.value += delta
        return self.value

    @operation(write=True)
    def min_update(self, candidate: int) -> bool:
        """Atomically lower the value to ``candidate`` if that is smaller.

        Returns True if the value was changed.
        """
        if candidate < self.value:
            self.value = candidate
            return True
        return False

    @operation(write=True)
    def max_update(self, candidate: int) -> bool:
        """Atomically raise the value to ``candidate`` if that is larger."""
        if candidate > self.value:
            self.value = candidate
            return True
        return False


class BoolObject(ObjectSpec):
    """A shared boolean flag (e.g. ACP's "no solution exists" flag)."""

    def init(self, value: bool = False) -> None:
        self.value = bool(value)

    @operation(write=False)
    def read(self) -> bool:
        return self.value

    @operation(write=True)
    def set(self, value: bool = True) -> bool:
        self.value = bool(value)
        return self.value

    @operation(write=True, guard=lambda self: self.value)
    def await_true(self) -> bool:
        """Block the caller until the flag becomes true."""
        return True


class CounterObject(ObjectSpec):
    """A shared counter that can be waited on (used for termination detection)."""

    def init(self, value: int = 0) -> None:
        self.value = value

    @operation(write=False)
    def read(self) -> int:
        return self.value

    @operation(write=True)
    def increment(self, delta: int = 1) -> int:
        self.value += delta
        return self.value

    @operation(write=True)
    def decrement(self, delta: int = 1) -> int:
        self.value -= delta
        return self.value


class JobQueue(ObjectSpec):
    """The replicated-worker job queue.

    Workers call :meth:`get_job`, which blocks while the queue is empty and
    returns ``None`` once the queue has been closed with :meth:`no_more_jobs`
    and drained — the standard Orca idiom for terminating worker processes.
    """

    def init(self, jobs: Optional[List[Any]] = None) -> None:
        self.jobs = deque(jobs or [])
        self.closed = False
        self.added = len(self.jobs)
        self.taken = 0

    @operation(write=True)
    def add_job(self, job: Any) -> int:
        """Append one job; returns the queue length."""
        self.jobs.append(job)
        self.added += 1
        return len(self.jobs)

    @operation(write=True)
    def add_jobs(self, jobs: List[Any]) -> int:
        """Append many jobs at once; returns the queue length."""
        self.jobs.extend(jobs)
        self.added += len(jobs)
        return len(self.jobs)

    @operation(write=True, guard=lambda self: bool(self.jobs) or self.closed)
    def get_job(self) -> Any:
        """Remove and return the next job; ``None`` when closed and drained.

        Blocks (via the guard) while the queue is empty but still open.
        """
        if self.jobs:
            self.taken += 1
            return self.jobs.popleft()
        return None

    @operation(write=True)
    def no_more_jobs(self) -> None:
        """Close the queue: blocked and future ``get_job`` calls return None."""
        self.closed = True

    @operation(write=False)
    def size(self) -> int:
        return len(self.jobs)

    @operation(write=False)
    def is_closed(self) -> bool:
        return self.closed


class SetObject(ObjectSpec):
    """A shared set (e.g. ATPG's set of already-covered faults)."""

    def init(self, items: Optional[List[Any]] = None) -> None:
        self.items = set(items or [])

    @operation(write=False)
    def contains(self, item: Any) -> bool:
        return item in self.items

    @operation(write=False)
    def size(self) -> int:
        return len(self.items)

    @operation(write=False)
    def snapshot(self) -> List[Any]:
        """Return the current membership as a sorted list."""
        return sorted(self.items)

    @operation(write=True)
    def add(self, item: Any) -> bool:
        """Insert ``item``; returns True if it was not already present."""
        if item in self.items:
            return False
        self.items.add(item)
        return True

    @operation(write=True)
    def add_many(self, items: List[Any]) -> int:
        """Insert several items; returns how many were new."""
        new = [item for item in items if item not in self.items]
        self.items.update(new)
        return len(new)

    @operation(write=True)
    def remove(self, item: Any) -> bool:
        if item in self.items:
            self.items.discard(item)
            return True
        return False


class DictObject(ObjectSpec):
    """A shared dictionary (e.g. a shared transposition table)."""

    def init(self, capacity: Optional[int] = None) -> None:
        self.entries: Dict[Any, Any] = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    @operation(write=False)
    def lookup(self, key: Any) -> Any:
        """Return the value stored under ``key`` or ``None``."""
        return self.entries.get(key)

    @operation(write=False)
    def size(self) -> int:
        return len(self.entries)

    @operation(write=True)
    def store(self, key: Any, value: Any) -> bool:
        """Store ``key -> value``; evicts nothing unless capacity is exceeded.

        Returns False if the table is full and the key was not stored.
        """
        if key in self.entries:
            self.entries[key] = value
            return True
        if self.capacity is not None and len(self.entries) >= self.capacity:
            return False
        self.entries[key] = value
        return True

    @operation(write=True)
    def clear(self) -> None:
        self.entries.clear()


class BarrierObject(ObjectSpec):
    """A reusable barrier implemented as a shared object."""

    def init(self, parties: int) -> None:
        self.parties = parties
        self.arrived = 0
        self.generation = 0

    @operation(write=True)
    def arrive(self) -> int:
        """Register arrival; returns the generation this arrival belongs to."""
        generation = self.generation
        self.arrived += 1
        if self.arrived >= self.parties:
            self.arrived = 0
            self.generation += 1
        return generation

    @operation(write=False)
    def current_generation(self) -> int:
        return self.generation

    @operation(write=True, guard=lambda self, generation: self.generation > generation)
    def await_generation(self, generation: int) -> int:
        """Block until the barrier generation exceeds ``generation``.

        The idiom is ``g = barrier.arrive(); barrier.await_generation(g)``.
        """
        return self.generation
