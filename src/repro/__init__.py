"""repro — reproduction of *Programming a Distributed System Using Shared Objects*.

The package implements, in simulation, the full stack described by
Tanenbaum, Bal and Kaashoek (HPDC 1993):

* ``repro.sim`` — a deterministic discrete-event simulation kernel;
* ``repro.amoeba`` — an Amoeba-like substrate: nodes, a 10 Mb/s Ethernet
  model, RPC, and the PB/BB totally-ordered reliable broadcast protocols;
* ``repro.rts`` — the shared data-object runtime systems (broadcast RTS and
  point-to-point RTS with invalidation / two-phase update and dynamic
  replication);
* ``repro.orca`` — the Orca programming model (shared abstract data types,
  processes, ``fork``) plus a small Orca-subset language front end;
* ``repro.apps`` — the paper's applications: TSP, Arc Consistency, computer
  chess (Oracol) and ATPG;
* ``repro.baselines`` — comparison points (central-server objects, page-based
  DSM, explicit message passing);
* ``repro.metrics`` / ``repro.harness`` — measurement and experiment
  orchestration used by the benchmark suite.

Quickstart
----------

::

    from repro import ClusterConfig, OrcaProgram, ObjectSpec, operation

    class Counter(ObjectSpec):
        def init(self):
            self.value = 0

        @operation(write=True)
        def increment(self):
            self.value += 1
            return self.value

        @operation(write=False)
        def read(self):
            return self.value

    def worker(proc, counter):
        for _ in range(10):
            counter.increment()
            proc.compute(100)

    def main(proc):
        counter = proc.new_object(Counter, name="counter")
        workers = [proc.fork(worker, counter, on_node=i) for i in range(4)]
        proc.join_all(workers)
        return counter.read()

    program = OrcaProgram(main, config=ClusterConfig(num_nodes=4))
    result = program.run()
    assert result.value == 40
"""

from .config import (
    BroadcastParams,
    ClusterConfig,
    CostModel,
    CpuParams,
    NetworkParams,
    ReplicationParams,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ClusterConfig",
    "CostModel",
    "NetworkParams",
    "CpuParams",
    "BroadcastParams",
    "ReplicationParams",
    # Re-exported lazily below:
    "ObjectSpec",
    "operation",
    "OrcaProgram",
    "OrcaProcess",
    "ProgramResult",
    "WorkloadRunner",
    "WorkloadSpec",
    "WorkloadReport",
    "ScenarioRegistry",
]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily re-export the Orca programming API.

    The Orca layer imports the RTS and Amoeba packages; importing it lazily
    keeps ``import repro`` cheap for users who only need the configuration
    types or the simulation kernel.
    """
    if name in ("ObjectSpec", "operation", "OrcaProcess"):
        from . import orca

        return getattr(orca, name)
    if name in ("OrcaProgram", "ProgramResult"):
        from .orca import program as _program

        return getattr(_program, name)
    if name in ("WorkloadRunner", "WorkloadSpec", "WorkloadReport", "ScenarioRegistry"):
        from . import workloads

        return getattr(workloads, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
