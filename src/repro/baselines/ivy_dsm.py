"""A small page-based distributed shared memory in the style of Ivy (Li & Hudak).

The paper motivates shared data-objects by contrast with page-based DSM:
pages are a fixed, coarse unit (the whole page travels on every miss), and
writable pages cannot be replicated without weakening consistency.  This
module implements just enough of a write-invalidate, single-writer /
multiple-reader page protocol to serve as the benchmark baseline:

* a central manager (node 0) tracks, per page, the owner and the copy set;
* a read fault fetches the whole page from the owner and adds the reader to
  the copy set (read-only replication);
* a write fault invalidates every copy, transfers ownership, and gives the
  writer an exclusive writable copy.

The DSM supports multiple pages (one per shared datum), and two front ends:

* the raw key/value API (:meth:`IvyDsm.read` / :meth:`IvyDsm.write`) used by
  the RW-RATIO benchmark, which operates on page 0;
* :class:`IvyObjectRuntime`, an adapter implementing the common
  :class:`~repro.rts.base.RuntimeSystem` interface by placing each shared
  object's marshalled state on its own page — every read operation on a node
  without a valid copy faults in the *whole page*, and every write operation
  invalidates all other copies first.  This lets the workload subsystem run
  identical scenarios against the object runtimes and the DSM baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Set, Tuple, Type

from ..amoeba.cluster import Cluster
from ..amoeba.rpc import RpcReply, RpcRequest
from ..config import ClusterConfig
from ..rts.base import ObjectHandle, RuntimeSystem
from ..rts.object_model import RETRY, ObjectSpec, execute_operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.process import SimProcess

#: Size of one DSM page in bytes (the unit that travels on every fault).
PAGE_SIZE = 8192

PORT_READ_FAULT = "ivy.read_fault"
PORT_WRITE_FAULT = "ivy.write_fault"

#: Page id used by the raw key/value front end.
DEFAULT_PAGE = 0


@dataclass
class _PageState:
    """Manager-side bookkeeping for one page."""

    owner: int
    copyset: Set[int] = field(default_factory=set)
    content: Dict[str, Any] = field(default_factory=dict)
    #: True while a write grant is in flight but its content not yet written
    #: back.  Real Ivy forwards the fault to the owner, which relinquishes
    #: the page before the transfer; this flag models that serialization
    #: (without it, two overlapping write faults could both receive the
    #: pre-grant content and one update would be lost).
    transfer_pending: bool = False
    waiters: list = field(default_factory=list)


@dataclass
class _LocalPage:
    """One node's view of a page."""

    valid: bool = False
    writable: bool = False
    content: Dict[str, Any] = field(default_factory=dict)


class IvyDsm:
    """A multi-page write-invalidate DSM spanning all nodes of a cluster."""

    def __init__(self, cluster: Cluster, manager_node: int = 0) -> None:
        self.cluster = cluster
        self.manager_node = manager_node
        self._pages: Dict[int, _PageState] = {}
        #: (node_id, page_id) -> local view.
        self._local: Dict[Tuple[int, int], _LocalPage] = {}
        self.read_faults = 0
        self.write_faults = 0
        self.invalidations = 0
        self.create_page(DEFAULT_PAGE)
        rpc = cluster.rpc_for(manager_node)
        rpc.register_service(PORT_READ_FAULT, self._serve_read_fault, may_block=True)
        rpc.register_service(PORT_WRITE_FAULT, self._serve_write_fault, may_block=True)
        for node in cluster.nodes:
            node.register_handler("ivy.invalidate", self._on_invalidate)

    # ------------------------------------------------------------------ #
    # Page management
    # ------------------------------------------------------------------ #

    def create_page(self, page_id: int, content: Optional[Dict[str, Any]] = None) -> None:
        """Allocate a page owned by the manager, optionally pre-filled."""
        self._pages[page_id] = _PageState(owner=self.manager_node,
                                          copyset={self.manager_node},
                                          content=dict(content or {}))
        self._local[(self.manager_node, page_id)] = _LocalPage(
            valid=True, writable=True, content=self._pages[page_id].content)

    def _local_page(self, node_id: int, page_id: int) -> _LocalPage:
        key = (node_id, page_id)
        local = self._local.get(key)
        if local is None:
            local = _LocalPage()
            self._local[key] = local
        return local

    def has_valid_copy(self, node_id: int, page_id: int = DEFAULT_PAGE) -> bool:
        """True if ``node_id`` holds a valid (possibly read-only) copy."""
        return self._local_page(node_id, page_id).valid

    # ------------------------------------------------------------------ #
    # Manager side
    # ------------------------------------------------------------------ #

    def _await_transfer(self, page: _PageState) -> None:
        """Block the serving process until any in-flight write grant commits."""
        proc = self.cluster.sim.current_process
        while page.transfer_pending and proc is not None:
            page.waiters.append(proc)
            proc.suspend()

    def _serve_read_fault(self, request: RpcRequest) -> RpcReply:
        requester = request.payload["node"]
        page = self._pages[request.payload.get("page", DEFAULT_PAGE)]
        self._await_transfer(page)
        self.read_faults += 1
        page.copyset.add(requester)
        return RpcReply(payload=dict(page.content), size=PAGE_SIZE)

    def _serve_write_fault(self, request: RpcRequest) -> RpcReply:
        requester = request.payload["node"]
        page_id = request.payload.get("page", DEFAULT_PAGE)
        page = self._pages[page_id]
        self._await_transfer(page)
        self.write_faults += 1
        # Invalidate every other copy (their next access will fault again).
        for node_id in sorted(page.copyset - {requester}):
            self.invalidations += 1
            local = self._local_page(node_id, page_id)
            local.valid = False
            local.writable = False
            manager = self.cluster.node(self.manager_node)
            manager.send(manager.make_message(node_id, "ivy.invalidate", size=32))
        page.copyset = {requester}
        page.owner = requester
        page.transfer_pending = True
        return RpcReply(payload=dict(page.content), size=PAGE_SIZE)

    def _on_invalidate(self, msg) -> None:
        # Invalidation is applied eagerly manager-side (the message models the
        # network traffic and interrupt cost); nothing further to do here.
        pass

    # ------------------------------------------------------------------ #
    # Node-side faults (called from application processes)
    # ------------------------------------------------------------------ #

    def fault_read(self, proc: "SimProcess", node_id: int,
                   page_id: int = DEFAULT_PAGE) -> Dict[str, Any]:
        """Ensure a valid (read-only is enough) copy; returns its content."""
        local = self._local_page(node_id, page_id)
        if not local.valid:
            content = self.cluster.rpc_for(node_id).call(
                proc, self.manager_node, PORT_READ_FAULT,
                payload={"node": node_id, "page": page_id}, size=32)
            local.content = dict(content)
            local.valid = True
            local.writable = False
        return local.content

    def fault_write(self, proc: "SimProcess", node_id: int,
                    page_id: int = DEFAULT_PAGE) -> Dict[str, Any]:
        """Ensure an exclusive writable copy; returns its content."""
        local = self._local_page(node_id, page_id)
        if not local.writable:
            content = self.cluster.rpc_for(node_id).call(
                proc, self.manager_node, PORT_WRITE_FAULT,
                payload={"node": node_id, "page": page_id}, size=32)
            local.content = dict(content)
            local.valid = True
            local.writable = True
        return local.content

    def commit(self, node_id: int, page_id: int, content: Dict[str, Any]) -> None:
        """Install new content on this node's writable copy.

        The manager's authoritative content is kept in sync (zero-cost model:
        the page is written back lazily when the next fault fetches it).
        """
        local = self._local_page(node_id, page_id)
        local.content = content
        page = self._pages[page_id]
        page.content = content
        page.transfer_pending = False
        waiters, page.waiters = page.waiters, []
        for waiter in waiters:
            waiter.wake()

    # ------------------------------------------------------------------ #
    # Raw key/value front end (page 0; the RW-RATIO workload)
    # ------------------------------------------------------------------ #

    def read(self, proc, node_id: int, key: str) -> Optional[Any]:
        """Read ``key`` from the shared page at ``node_id``."""
        return self.fault_read(proc, node_id).get(key)

    def write(self, proc, node_id: int, key: str, value: Any) -> None:
        """Write ``key`` on the shared page at ``node_id`` (exclusive access)."""
        content = self.fault_write(proc, node_id)
        content[key] = value
        self.commit(node_id, DEFAULT_PAGE, content)


class IvyObjectRuntime(RuntimeSystem):
    """Shared objects on top of the Ivy DSM: one page per object.

    This adapter gives the page-based baseline the same
    :class:`~repro.rts.base.RuntimeSystem` interface as the broadcast and
    point-to-point runtimes, so workloads and benchmarks can sweep all of
    them uniformly.  The cost structure is exactly what the paper criticises:
    a read miss moves :data:`PAGE_SIZE` bytes however small the object, and a
    write stalls while every cached copy is invalidated.
    """

    name = "ivy-dsm-rts"

    def __init__(self, cluster: Cluster, manager_node: int = 0) -> None:
        super().__init__(cluster)
        self.dsm = IvyDsm(cluster, manager_node=manager_node)

    object_policy_name = "ivy-pages"

    def create_object(self, proc: "SimProcess", spec_class: Type[ObjectSpec],
                      args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None,
                      name: Optional[str] = None,
                      policy: Any = None) -> ObjectHandle:
        """Create a shared object whose state lives on a fresh DSM page.

        ``policy`` is accepted for interface uniformity and ignored: Ivy
        manages every object through page ownership.
        """
        handle = self._new_handle(spec_class, name)
        instance = spec_class.create(args, kwargs)
        self.dsm.create_page(handle.obj_id, instance.marshal_state())
        proc.advance(self.cost_model.cpu.operation_dispatch_cost)
        return handle

    def _invoke(self, proc: "SimProcess", handle: ObjectHandle, op_name: str,
                args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None) -> Any:
        node = self._node_of(proc)
        nid = node.node_id
        op = handle.spec_class.operation_def(op_name)
        cpu = self.cost_model.cpu
        proc.advance(cpu.operation_dispatch_cost)
        if op.work_units:
            proc.compute(op.work_units)
        # Sampled before any fault: did this access hit a valid local copy?
        was_local = self.dsm.has_valid_copy(nid, handle.obj_id)
        while True:
            if op.is_write:
                state = self.dsm.fault_write(proc, nid, handle.obj_id)
                try:
                    instance = handle.spec_class()
                    instance.unmarshal_state(state)
                    result = execute_operation(instance, op, args, kwargs)
                except BaseException:
                    # Write back the untouched state so the page's pending
                    # transfer completes even when the operation raises;
                    # otherwise every later fault would block forever.
                    self.dsm.commit(nid, handle.obj_id, state)
                    raise
            else:
                state = self.dsm.fault_read(proc, nid, handle.obj_id)
                instance = handle.spec_class()
                instance.unmarshal_state(state)
                result = execute_operation(instance, op, args, kwargs)
            if result is RETRY:
                # Guarded operation not ready: poll again after a short wait
                # (pages have no change notification — another DSM weakness).
                # A write fault must still write back the untouched state so
                # the page's pending transfer completes.
                if op.is_write:
                    self.dsm.commit(nid, handle.obj_id, state)
                self.stats.guard_retries += 1
                proc.hold(cpu.protocol_cost * 4)
                continue
            if op.is_write:
                self.dsm.commit(nid, handle.obj_id, instance.marshal_state())
                self.stats.note_write(handle.obj_id)
                self.stats.rpc_writes += 1
            else:
                self.stats.note_read(handle.obj_id, local=was_local)
            return result


def run_ivy_workload(num_nodes: int = 8, ops_per_worker: int = 40,
                     read_fraction: float = 0.9, seed: int = 13) -> float:
    """Run the RW-RATIO counter workload on the Ivy baseline; returns virtual time."""
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    try:
        dsm = IvyDsm(cluster)

        def worker(node_id: int) -> None:
            proc = cluster.sim.current_process
            state = node_id * 2654435761 + 1
            for _ in range(ops_per_worker):
                proc.compute(200)
                state = (state * 1103515245 + 12345) % 2**31
                if (state % 1000) / 1000.0 < read_fraction:
                    dsm.read(proc, node_id, "counter")
                else:
                    current = dsm.read(proc, node_id, "counter") or 0
                    dsm.write(proc, node_id, "counter", current + 1)

        for node in cluster.nodes:
            node.kernel.spawn_thread(worker, node.node_id)
        return cluster.run()
    finally:
        cluster.shutdown()
