"""A small page-based distributed shared memory in the style of Ivy (Li & Hudak).

The paper motivates shared data-objects by contrast with page-based DSM:
pages are a fixed, coarse unit (the whole page travels on every miss), and
writable pages cannot be replicated without weakening consistency.  This
module implements just enough of a write-invalidate, single-writer /
multiple-reader page protocol to serve as the benchmark baseline:

* a central manager (node 0) tracks, per page, the owner and the copy set;
* a read fault fetches the whole page from the owner and adds the reader to
  the copy set (read-only replication);
* a write fault invalidates every copy, transfers ownership, and gives the
  writer an exclusive writable copy.

The "application" shares one counter that happens to live on one page — the
same workload the RW-RATIO benchmark runs over the object runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..amoeba.cluster import Cluster
from ..amoeba.rpc import RpcReply, RpcRequest
from ..config import ClusterConfig

#: Size of one DSM page in bytes (the unit that travels on every fault).
PAGE_SIZE = 8192

PORT_READ_FAULT = "ivy.read_fault"
PORT_WRITE_FAULT = "ivy.write_fault"


@dataclass
class _PageState:
    """Manager-side bookkeeping for one page."""

    owner: int
    copyset: Set[int] = field(default_factory=set)
    content: Dict[str, int] = field(default_factory=dict)


@dataclass
class _LocalPage:
    """One node's view of a page."""

    valid: bool = False
    writable: bool = False
    content: Dict[str, int] = field(default_factory=dict)


class IvyDsm:
    """A single-page write-invalidate DSM spanning all nodes of a cluster."""

    def __init__(self, cluster: Cluster, manager_node: int = 0) -> None:
        self.cluster = cluster
        self.manager_node = manager_node
        self._page = _PageState(owner=manager_node, copyset={manager_node})
        self._local: Dict[int, _LocalPage] = {
            node.node_id: _LocalPage() for node in cluster.nodes
        }
        self._local[manager_node] = _LocalPage(valid=True, writable=True)
        self.read_faults = 0
        self.write_faults = 0
        self.invalidations = 0
        rpc = cluster.rpc_for(manager_node)
        rpc.register_service(PORT_READ_FAULT, self._serve_read_fault, may_block=True)
        rpc.register_service(PORT_WRITE_FAULT, self._serve_write_fault, may_block=True)
        for node in cluster.nodes:
            node.register_handler("ivy.invalidate", self._on_invalidate)

    # ------------------------------------------------------------------ #
    # Manager side
    # ------------------------------------------------------------------ #

    def _serve_read_fault(self, request: RpcRequest) -> RpcReply:
        requester = request.payload["node"]
        self.read_faults += 1
        self._page.copyset.add(requester)
        return RpcReply(payload=dict(self._page.content), size=PAGE_SIZE)

    def _serve_write_fault(self, request: RpcRequest) -> RpcReply:
        requester = request.payload["node"]
        self.write_faults += 1
        # Invalidate every other copy (their next access will fault again).
        for node_id in sorted(self._page.copyset - {requester}):
            self.invalidations += 1
            self._local[node_id].valid = False
            self._local[node_id].writable = False
            manager = self.cluster.node(self.manager_node)
            manager.send(manager.make_message(node_id, "ivy.invalidate", size=32))
        self._page.copyset = {requester}
        self._page.owner = requester
        return RpcReply(payload=dict(self._page.content), size=PAGE_SIZE)

    def _on_invalidate(self, msg) -> None:
        self._local[msg.dst].valid = False
        self._local[msg.dst].writable = False

    # ------------------------------------------------------------------ #
    # Node-side access (called from application processes)
    # ------------------------------------------------------------------ #

    def read(self, proc, node_id: int, key: str) -> Optional[int]:
        """Read ``key`` from the shared page at ``node_id``."""
        local = self._local[node_id]
        if not local.valid:
            content = self.cluster.rpc_for(node_id).call(
                proc, self.manager_node, PORT_READ_FAULT,
                payload={"node": node_id}, size=32)
            local.content = dict(content)
            local.valid = True
            local.writable = False
        return local.content.get(key)

    def write(self, proc, node_id: int, key: str, value: int) -> None:
        """Write ``key`` on the shared page at ``node_id`` (exclusive access)."""
        local = self._local[node_id]
        if not local.writable:
            content = self.cluster.rpc_for(node_id).call(
                proc, self.manager_node, PORT_WRITE_FAULT,
                payload={"node": node_id}, size=32)
            local.content = dict(content)
            local.valid = True
            local.writable = True
        local.content[key] = value
        # Keep the manager's authoritative content in sync (zero-cost model:
        # the page is written back lazily when the next fault fetches it).
        self._page.content = local.content


def run_ivy_workload(num_nodes: int = 8, ops_per_worker: int = 40,
                     read_fraction: float = 0.9, seed: int = 13) -> float:
    """Run the RW-RATIO counter workload on the Ivy baseline; returns virtual time."""
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    try:
        dsm = IvyDsm(cluster)

        def worker(node_id: int) -> None:
            proc = cluster.sim.current_process
            state = node_id * 2654435761 + 1
            for _ in range(ops_per_worker):
                proc.compute(200)
                state = (state * 1103515245 + 12345) % 2**31
                if (state % 1000) / 1000.0 < read_fraction:
                    dsm.read(proc, node_id, "counter")
                else:
                    current = dsm.read(proc, node_id, "counter") or 0
                    dsm.write(proc, node_id, "counter", current + 1)

        for node in cluster.nodes:
            node.kernel.spawn_thread(worker, node.node_id)
        return cluster.run()
    finally:
        cluster.shutdown()
