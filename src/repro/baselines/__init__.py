"""Comparison baselines used by the ablation benchmarks.

* :mod:`repro.baselines.central_server` — shared objects with a single copy
  (every remote access is an RPC), the "no replication" end of the spectrum;
* :mod:`repro.baselines.ivy_dsm` — a small page-based distributed shared
  memory in the style of Li & Hudak's Ivy, which the paper contrasts with
  object-based sharing in §1-2, plus :class:`IvyObjectRuntime`, an adapter
  exposing the DSM through the common RuntimeSystem interface so workloads
  can sweep it alongside the object runtimes.
"""

from .central_server import CentralServerRts
from .ivy_dsm import IvyDsm, IvyObjectRuntime, run_ivy_workload

__all__ = ["CentralServerRts", "IvyDsm", "IvyObjectRuntime", "run_ivy_workload"]
