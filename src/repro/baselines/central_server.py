"""Central-server objects: exactly one copy, every remote access is an RPC.

This is the point-to-point runtime system with replication switched off — the
configuration the paper's §2 argues against for read-mostly objects, and the
baseline the RW-RATIO benchmark sweeps against the fully replicated RTS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..rts.p2p.runtime import PointToPointRts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..amoeba.cluster import Cluster


class CentralServerRts(PointToPointRts):
    """A runtime system that never replicates: the primary copy is the only copy."""

    name = "central-server-rts"

    def __init__(self, cluster: "Cluster", protocol: str = "update") -> None:
        super().__init__(cluster, protocol=protocol, dynamic_replication=False,
                         replicate_everywhere=False)
