#!/usr/bin/env python3
"""Quickstart: define a shared object type, fork workers, watch it stay consistent.

This is the smallest complete Orca program: a replicated counter object shared
by one worker per simulated processor.  Reads are local; the increments are
broadcast through the totally-ordered group layer, so every machine applies
them in the same order and the final value is exact.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterConfig, ObjectSpec, OrcaProgram, operation


class Counter(ObjectSpec):
    """A shared counter with a read operation and an atomic increment."""

    def init(self, start: int = 0) -> None:
        self.value = start
        self.increments = 0

    @operation(write=False)
    def read(self) -> int:
        return self.value

    @operation(write=True)
    def increment(self, by: int = 1) -> int:
        self.value += by
        self.increments += 1
        return self.value


def worker(proc, counter, iterations: int, worker_id: int = 0):
    """Each worker alternates local computation with shared increments."""
    for i in range(iterations):
        proc.compute(500)             # ~10 ms of simulated application work
        counter.increment()
        observed = counter.read()     # a purely local read of the replica
        assert observed >= i + 1
    return proc.node_id


def main(proc, iterations_per_worker: int = 20):
    counter = proc.new_object(Counter, 0, name="demo-counter")
    workers = proc.fork_workers(worker, counter, iterations_per_worker)
    placements = proc.join_all(workers)
    return {
        "final_value": counter.read(),
        "workers": len(workers),
        "worker_nodes": placements,
    }


if __name__ == "__main__":
    config = ClusterConfig(num_nodes=8, seed=42)
    program = OrcaProgram(main, config)
    result = program.run(20)

    print("Quickstart: replicated shared counter on a simulated 8-node Amoeba cluster")
    print(f"  final counter value : {result.value['final_value']} "
          f"(expected {8 * 20})")
    print(f"  virtual elapsed time: {result.elapsed * 1000:.2f} ms")
    print(f"  broadcast writes    : {result.rts['broadcast_writes']}")
    print(f"  local reads         : {result.rts['local_reads']}")
    print(f"  network messages    : {result.network['messages']}")
    print(f"  receive interrupts  : {result.network['interrupts']}")
    assert result.value["final_value"] == 8 * 20

    # The same stack can also be driven by synthetic traffic: five lines get
    # a named scenario with throughput and tail-latency percentiles
    # (see examples/workloads_demo.py for the full sweep).
    from repro import WorkloadRunner

    report = WorkloadRunner("hot-spot", runtime="broadcast",
                            num_nodes=8, seed=42).run()
    p99 = report.percentile_row()["p99"]
    print(f"  hot-spot workload   : {report.throughput:.0f} ops/s, "
          f"p99 latency {p99 * 1000:.2f} ms")
