#!/usr/bin/env python3
"""Oracol demo: parallel alpha-beta with shared killer/transposition tables (§4.3).

Searches a couple of tactical 6x6 positions on 1 and 10 simulated processors,
with shared and with local tables, and prints the speedup plus the extra
nodes the parallel search expands (the "search overhead" that keeps chess
speedups modest).

Run with::

    python examples/chess_demo.py [depth]
"""

from __future__ import annotations

import sys

from repro.apps.chess import random_tactical_position
from repro.apps.chess.orca_chess import run_chess_program
from repro.apps.chess.sequential import solve_positions_sequential


def main() -> None:
    depth = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    positions = [random_tactical_position(seed=s, plies=6) for s in (3, 9)]
    print(f"Oracol demo: {len(positions)} positions, iterative deepening to depth {depth}")

    sequential = solve_positions_sequential(positions, depth)
    print(f"  sequential nodes searched : {sequential.total_nodes}")

    one = run_chess_program(positions, num_procs=1, depth=depth)
    ten = run_chess_program(positions, num_procs=10, depth=depth)
    speedup = one.elapsed / ten.elapsed
    overhead = ten.value.total_nodes / max(1, one.value.total_nodes)
    print(f"   1 CPU : elapsed {one.elapsed:8.3f}s, nodes {one.value.total_nodes}")
    print(f"  10 CPUs: elapsed {ten.elapsed:8.3f}s, nodes {ten.value.total_nodes}")
    print(f"  speedup on 10 CPUs        : {speedup:.2f} "
          f"(the paper reports 4.5 - 5.5)")
    print(f"  search overhead (node ratio parallel/sequential): {overhead:.2f}x")

    shared = run_chess_program(positions, num_procs=6, depth=depth, shared_tables=True)
    local = run_chess_program(positions, num_procs=6, depth=depth, shared_tables=False)
    print("\nShared vs local tables on 6 CPUs (same best moves either way):")
    print(f"  shared tables: elapsed {shared.elapsed:8.3f}s, "
          f"nodes {shared.value.total_nodes}, broadcasts {shared.rts['broadcast_writes']}")
    print(f"  local tables : elapsed {local.elapsed:8.3f}s, "
          f"nodes {local.value.total_nodes}, broadcasts {local.rts['broadcast_writes']}")


if __name__ == "__main__":
    main()
