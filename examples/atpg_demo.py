#!/usr/bin/env python3
"""ATPG demo: PODEM with static fault partitioning and fault simulation (§4.4).

Generates a random combinational circuit, runs the Orca ATPG program with and
without the fault-simulation optimisation over several processor counts, and
prints the absolute-speed / speedup trade-off the paper describes.

Run with::

    python examples/atpg_demo.py [num_gates]
"""

from __future__ import annotations

import sys

from repro.apps.atpg import all_faults, random_circuit
from repro.apps.atpg.orca_atpg import run_atpg_program
from repro.metrics.report import format_table


def main() -> None:
    num_gates = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    circuit = random_circuit(num_inputs=8, num_gates=num_gates, num_outputs=5, seed=19)
    faults = all_faults(circuit)
    print(f"ATPG demo: {num_gates}-gate circuit, {len(faults)} stuck-at faults")

    rows = []
    for use_sim in (False, True):
        label = "with fault simulation" if use_sim else "plain PODEM"
        base = None
        for procs in (1, 4, 8):
            result = run_atpg_program(circuit, num_procs=procs,
                                      use_fault_simulation=use_sim)
            if base is None:
                base = result.elapsed
            rows.append([
                label,
                str(procs),
                f"{result.elapsed:.3f}",
                f"{base / result.elapsed:.2f}",
                str(result.value.covered),
                f"{result.value.coverage * 100:.0f}%",
            ])
    print(format_table(
        ["variant", "CPUs", "elapsed (s)", "speedup", "faults covered", "coverage"],
        rows,
    ))
    print("\nFault simulation lowers the absolute time (fewer PODEM runs) but its")
    print("speedup curve is flatter: covered-fault broadcasts plus the load imbalance")
    print("left by static partitioning — the same trade-off reported in the paper.")


if __name__ == "__main__":
    main()
