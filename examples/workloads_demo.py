#!/usr/bin/env python3
"""Workload subsystem demo: synthetic traffic, every runtime, tail latencies.

Drives two contrasting scenarios — a read-mostly catalog (replication's best
case) and a write-contended hot-spot cell under open-loop Poisson arrivals —
against all four runtime systems, and prints throughput with p50/p95/p99
latency for each.  Also shows a multi-phase "bursty" workload where the
arrival rate spikes mid-run.

Run with::

    python examples/workloads_demo.py
"""

from __future__ import annotations

from repro.metrics.latency import format_latency_row
from repro.metrics.report import format_table
from repro.workloads import (
    RUNTIME_KINDS,
    WorkloadRunner,
    WorkloadSpec,
    bursty,
)

NUM_NODES = 8
SEED = 7

CATALOG = WorkloadSpec(name="catalog", num_keys=32, read_fraction=0.98,
                       popularity="zipfian", zipf_s=1.2, ops_per_client=40,
                       think_time=0.0002)
HOT_SPOT = WorkloadSpec(name="hot-spot", num_keys=1, read_fraction=0.5,
                        client_model="open", arrival_rate=1200.0,
                        ops_per_client=30)


def sweep(scenario: str, spec: WorkloadSpec) -> None:
    rows = []
    for runtime in RUNTIME_KINDS:
        report = WorkloadRunner(scenario, workload=spec, runtime=runtime,
                                num_nodes=NUM_NODES, seed=SEED).run()
        p50, p95, p99, mean = format_latency_row(
            report.request_latency["overall"])
        rows.append([report.runtime, str(report.total_ops),
                     f"{report.throughput:.0f}", p50, p95, p99, mean])
    print(format_table(
        ["runtime", "ops", "ops/s", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
        rows, title=f"scenario {scenario!r} ({spec.name} workload)"))
    print()


def burst_demo() -> None:
    spec = bursty("calm-burst", ops_per_phase=20, base_rate=300.0,
                  burst_rate=3000.0, read_fraction=0.9, num_keys=16)
    report = WorkloadRunner("counter-farm", workload=spec,
                            runtime="broadcast", num_nodes=NUM_NODES,
                            seed=SEED).run()
    overall = report.percentile_row()
    print("bursty open-loop counter farm on the broadcast RTS:")
    print(f"  {report.total_ops} requests over {len(spec.phases)} phases, "
          f"{report.throughput:.0f} ops/s")
    print(f"  p50 {overall['p50'] * 1000:.3f} ms   "
          f"p95 {overall['p95'] * 1000:.3f} ms   "
          f"p99 {overall['p99'] * 1000:.3f} ms "
          f"(burst queueing shows up in the tail)")


if __name__ == "__main__":
    print(f"Synthetic shared-object workloads on a {NUM_NODES}-node simulated cluster")
    print()
    sweep("read-mostly-catalog", CATALOG)
    sweep("hot-spot", HOT_SPOT)
    burst_demo()
