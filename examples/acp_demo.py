#!/usr/bin/env python3
"""Arc Consistency with shared domain/work/result objects (the paper's Fig. 3).

Builds a 64-variable instance, runs the Orca ACP program on 2..16 simulated
processors, verifies the result against sequential AC-3, and prints the
speedup curve plus the protocol overhead that explains why ACP scales less
well than TSP (every domain update is broadcast to every machine).

Run with::

    python examples/acp_demo.py [num_variables]
"""

from __future__ import annotations

import sys

from repro.apps.acp import random_acp_problem, solve_sequential_ac3
from repro.apps.acp.orca_acp import run_acp_program
from repro.harness.figures import render_speedup_figure
from repro.metrics.speedup import SpeedupCurve


def main() -> None:
    num_variables = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    problem = random_acp_problem(num_variables=num_variables, domain_size=16, seed=21)
    print(f"ACP demo: {num_variables} variables, {len(problem.constraints)} constraints")

    sequential = solve_sequential_ac3(problem)
    print(f"  sequential: consistent={sequential.consistent}, "
          f"domain sizes sum={sum(sequential.domain_sizes())}, "
          f"revisions={sequential.revisions}")

    times = {}
    for procs in (2, 4, 8, 12, 16):
        result = run_acp_program(problem, num_procs=procs)
        times[procs] = result.elapsed
        assert result.value.domain_sizes == sequential.domain_sizes()
        print(f"  {procs:2d} CPUs: elapsed {result.elapsed:8.3f}s  "
              f"broadcasts {result.rts['broadcast_writes']:5d}  "
              f"protocol CPU overhead {result.overhead_time:6.3f}s")

    curve = SpeedupCurve(times, base_procs=2)
    print()
    print(render_speedup_figure(
        "Fig. 3 style — Arc Consistency speedup (64 variables)", curve, 16))
    print("\nNote how the protocol overhead column grows with the processor count:")
    print("replicating the domain/work objects means every update interrupts every CPU,")
    print("which is exactly why the paper's ACP speedups trail its TSP speedups.")


if __name__ == "__main__":
    main()
