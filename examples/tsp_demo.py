#!/usr/bin/env python3
"""The paper's favourite example: branch-and-bound TSP with a replicated bound.

Runs the Orca TSP program (job queue + shared global bound, replicated
workers) on 1, 2, 4, 8 and 16 simulated processors and prints the speedup
curve in the style of the paper's Fig. 2, plus the read/write ratio of the
bound object that makes replication pay off.

Run with::

    python examples/tsp_demo.py [num_cities]
"""

from __future__ import annotations

import sys

from repro.apps.tsp import random_instance, solve_sequential
from repro.apps.tsp.orca_tsp import run_tsp_program
from repro.harness.figures import render_speedup_figure
from repro.metrics.speedup import SpeedupCurve


def main() -> None:
    num_cities = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    instance = random_instance(num_cities, seed=14)
    print(f"TSP demo: {num_cities} cities, branch-and-bound with a shared bound object")

    sequential = solve_sequential(instance)
    print(f"  sequential optimum      : {sequential.best_length}")
    print(f"  sequential search nodes : {sequential.nodes_expanded}")

    times = {}
    last = None
    for procs in (1, 2, 4, 8, 16):
        result = run_tsp_program(instance, num_procs=procs)
        times[procs] = result.elapsed
        last = result
        best, jobs, nodes = result.value
        assert best == sequential.best_length, "parallel result must match sequential"
        print(f"  {procs:2d} CPUs: elapsed {result.elapsed:8.3f}s  "
              f"(jobs {jobs}, nodes {nodes}, broadcasts {result.rts['broadcast_writes']})")

    curve = SpeedupCurve(times, base_procs=1)
    print()
    print(render_speedup_figure(
        "Fig. 2 style — TSP speedup (shared bound, replicated workers)", curve, 16))
    reads = last.rts["local_reads"]
    writes = last.rts["broadcast_writes"]
    print(f"\nBound/queue objects on 16 CPUs: {reads} local reads, "
          f"{writes} broadcast writes (read/write ratio ~{reads / max(1, writes):.0f}:1)")


if __name__ == "__main__":
    main()
