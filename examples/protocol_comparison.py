#!/usr/bin/env python3
"""Substrate demo: PB vs BB broadcast, and invalidation vs two-phase update.

The first half reproduces §3.1's trade-off between the two totally-ordered
broadcast protocols: PB ships the message twice (2m bytes, one interrupt per
receiver), BB ships it once plus a short Accept (m bytes, two interrupts).
The second half compares the point-to-point runtime system's invalidation and
update protocols on a read/write-mix sweep (§3.2.2: "no clear winner").

Run with::

    python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig, CostModel
from repro.metrics.report import format_table
from repro.orca.builtin_objects import IntObject
from repro.orca.program import OrcaProgram


def broadcast_protocol_costs(method: str, size: int, count: int = 20):
    cost_model = CostModel().with_overrides(broadcast={"method": method})
    cluster = Cluster(ClusterConfig(num_nodes=8, seed=3, cost_model=cost_model))
    try:
        group = cluster.broadcast_group
        for node in cluster.nodes:
            group.set_delivery_handler(node.node_id, lambda d: None)
        for _ in range(count):
            group.broadcast_from(1, payload="x" * 8, size=size)
        cluster.run()
        receiver = cluster.node(5)
        return {
            "wire_bytes": cluster.network.stats.wire_bytes,
            "interrupts_per_receiver": receiver.nic.stats.interrupts / count,
        }
    finally:
        cluster.shutdown()


def rts_protocol_elapsed(protocol: str, read_fraction: float):
    def main(proc):
        shared = proc.new_object(IntObject, 0)
        def worker(wproc, obj, worker_id=0):
            rng_state = worker_id
            for i in range(60):
                wproc.compute(100)
                rng_state = (rng_state * 1103515245 + 12345) % 2**31
                if (rng_state % 1000) / 1000.0 < read_fraction:
                    obj.read()
                else:
                    obj.add(1)
        proc.join_all(proc.fork_workers(worker, shared))
        return shared.read()

    program = OrcaProgram(main, ClusterConfig(num_nodes=8, seed=5), rts="p2p",
                          rts_options={"protocol": protocol,
                                       "replicate_everywhere": True,
                                       "dynamic_replication": False})
    return program.run().elapsed


def main() -> None:
    print("PB vs BB (8 machines, 20 broadcasts each):")
    rows = []
    for size in (200, 1000, 4000):
        for method in ("pb", "bb"):
            stats = broadcast_protocol_costs(method, size)
            rows.append([f"{size}", method.upper(),
                         f"{stats['wire_bytes']}",
                         f"{stats['interrupts_per_receiver']:.1f}"])
    print(format_table(["message bytes", "protocol", "wire bytes", "interrupts/receiver"],
                       rows))
    print("\nInvalidation vs two-phase update (8 machines, swept read fraction):")
    rows = []
    for read_fraction in (0.5, 0.9, 0.99):
        inval = rts_protocol_elapsed("invalidation", read_fraction)
        update = rts_protocol_elapsed("update", read_fraction)
        winner = "update" if update < inval else "invalidation"
        rows.append([f"{read_fraction:.2f}", f"{inval:.4f}", f"{update:.4f}", winner])
    print(format_table(["read fraction", "invalidation (s)", "update (s)", "faster"], rows))


if __name__ == "__main__":
    main()
