#!/usr/bin/env python3
"""Unified object-management demo: per-object policies + live migration.

One cluster, three shared objects, three management strategies:

* a read-mostly catalog pinned to **broadcast** replication (local reads on
  every machine);
* a write-hot ledger pinned to a **primary copy** with invalidation (writes
  do not interrupt the whole cluster);
* an **adaptive** counter that starts broadcast replicated, turns write-hot,
  migrates itself to a primary copy at run time, then migrates back when
  the mix flips to read-mostly.

Run with::

    python examples/adaptive_demo.py
"""

from __future__ import annotations

from repro.config import ClusterConfig
from repro.metrics.report import format_table
from repro.orca import OrcaProgram
from repro.orca.builtin_objects import DictObject, IntObject


def main(proc):
    catalog = proc.new_object(DictObject, name="catalog", policy="broadcast")
    ledger = proc.new_object(IntObject, 0, name="ledger",
                             policy="primary-invalidate")
    counter = proc.new_object(IntObject, 0, name="counter",
                              policy={"min_accesses": 12,
                                      "check_interval": 4})

    for key in range(8):
        catalog.store(f"item{key}", key * 10)

    timeline = [("created", counter.policy)]

    # Phase 1: the counter is write-hot -> the controller moves it to a
    # primary copy (watch the policy change under our feet).
    for i in range(40):
        counter.add(1)
        ledger.add(2)
        catalog.lookup(f"item{i % 8}")
        proc.hold(0.0005)
    timeline.append(("after write-hot phase", counter.policy))

    # Phase 2: the mix flips to read-mostly -> back to broadcast.
    for i in range(160):
        counter.read()
        catalog.lookup(f"item{i % 8}")
        proc.hold(0.0002)
    timeline.append(("after read-mostly phase", counter.policy))

    # Policies can also be switched explicitly, mid-run.
    ledger.migrate("primary-update")
    timeline.append(("ledger after explicit migrate", ledger.policy))

    return {
        "timeline": timeline,
        "counter": counter.read(),
        "ledger": ledger.read(),
    }


def run() -> None:
    program = OrcaProgram(main, ClusterConfig(num_nodes=8, seed=11),
                          rts="hybrid")
    result = program.run()

    print(format_table(
        ["moment", "policy"],
        [[moment, policy] for moment, policy in result.value["timeline"]],
        title="Management policy over the program's lifetime"))
    print()

    per_object = result.rts.get("per_object", {})
    print(format_table(
        ["object", "reads", "writes", "final policy"],
        [[name, str(row["reads"]), str(row["writes"]), row["policy"]]
         for name, row in per_object.items()],
        title="Reconciled per-object summary (reads/writes/policy)"))
    print()

    migrations = result.rts.get("migrations", {})
    print(f"migrations: {migrations.get('total', 0)} "
          f"(to primary: {migrations.get('to_primary', 0)}, "
          f"to broadcast: {migrations.get('to_broadcast', 0)})")
    print(f"counter value: {result.value['counter']}, "
          f"ledger value: {result.value['ledger']}")
    print(f"virtual time: {result.elapsed * 1e3:.2f} ms on "
          f"{result.num_nodes} nodes ({result.rts_name})")


if __name__ == "__main__":
    run()
