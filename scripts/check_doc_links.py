"""Docs link check: every relative Markdown link must resolve.

Scans the repository's Markdown files (README.md, docs/, benchmarks/,
ROADMAP.md, ...) for inline links and validates:

* relative file targets exist (``[text](docs/ARCHITECTURE.md)``);
* anchor fragments point at a real heading in the target file, using
  GitHub's slug rules (lowercase, punctuation stripped, spaces to
  dashes), for both ``other.md#section`` and same-file ``#section``
  links.

External links (``http(s)://``, ``mailto:``) are not fetched — this
gate is about keeping the internal docs graph unbroken as files move,
not about the outside world.

Usage::

    python scripts/check_doc_links.py [root]
"""

from __future__ import annotations

import os
import re
import sys

#: Directories never scanned for Markdown sources.
SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}

#: Inline Markdown links: [text](target).  Images share the syntax.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings, used to build the anchor set of a file.
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")

#: Fenced code blocks must not contribute links or headings.
_FENCE = re.compile(r"^(```|~~~)")


def _slugify(heading: str) -> str:
    """GitHub's heading-to-anchor rule (close enough for ASCII docs)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _markdown_lines(path: str):
    """Yield the file's lines with fenced code blocks blanked out."""
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if _FENCE.match(line.strip()):
                in_fence = not in_fence
                yield ""
            else:
                yield "" if in_fence else line


def find_markdown_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path: str):
    """The set of heading slugs a Markdown file exposes."""
    slugs = set()
    for line in _markdown_lines(path):
        match = _HEADING.match(line)
        if match:
            slugs.add(_slugify(match.group(1)))
    return slugs


def check_file(path: str, root: str, anchor_cache):
    problems = []
    for number, line in enumerate(_markdown_lines(path), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = target.partition("#")
            if target:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
            else:
                resolved = path  # same-file anchor
            where = f"{os.path.relpath(path, root)}:{number}"
            if not os.path.exists(resolved):
                problems.append(f"{where}: broken link -> {target}")
                continue
            if fragment and resolved.endswith(".md"):
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    problems.append(
                        f"{where}: missing anchor -> "
                        f"{target or os.path.basename(path)}#{fragment}")
    return problems


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = os.path.abspath(args[0]) if args else os.getcwd()
    anchor_cache = {}
    problems = []
    checked = 0
    for path in find_markdown_files(root):
        checked += 1
        problems.extend(check_file(path, root, anchor_cache))
    if problems:
        print(f"BROKEN DOCS LINKS ({len(problems)}):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"ok: {checked} Markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
