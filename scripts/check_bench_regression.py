"""Benchmark-regression gate for the CI smoke reports.

Compares a freshly produced ``--smoke`` JSON report against a committed
baseline (``benchmarks/baselines/*.json``) and fails when a performance
metric regressed beyond the tolerance:

* throughput-like metrics (higher is better) must not drop below
  ``baseline * (1 - tolerance)``;
* latency-like metrics (lower is better) must not rise above
  ``baseline * (1 + tolerance)``.

Every other field is informational only — correctness is the determinism
byte-diff's job, not this gate's.  The simulator is deterministic in
virtual time, so the default +/-15% tolerance is generous headroom for
intentional performance changes; genuine regressions blow straight
through it.

A second mode gates **wall-clock** time: ``--budget`` takes a committed
budget file (cell name -> max seconds) and ``--timings`` the measured
timings JSON a benchmark emitted (e.g. ``bench_kernel_scaling.py
--timings``).  Every budgeted cell must be present and inside its budget.
Budgets are set with generous headroom over a healthy run — they exist to
catch the kernel hot path regressing by integer factors, not CI noise.

Usage::

    python scripts/check_bench_regression.py \
        --baseline benchmarks/baselines/workloads.json \
        --candidate smoke-1.json [--tolerance 0.15]

    python scripts/check_bench_regression.py \
        --budget benchmarks/baselines/wallclock_budget.json \
        --timings timings.json
"""

from __future__ import annotations

import argparse
import json
import sys

HIGHER_IS_BETTER = {"throughput", "post_window_throughput"}
LOWER_IS_BETTER = {
    "p50",
    "p95",
    "p99",
    "recovery_window",
    "max_write_latency",
    "drain_window",
    "max_rejoin_window",
}


def iter_metrics(node, path=()):
    """Yield ``(path, key, value)`` for every gated numeric field."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key in HIGHER_IS_BETTER | LOWER_IS_BETTER and isinstance(
                value, (int, float)
            ):
                yield path, key, float(value)
            else:
                yield from iter_metrics(value, path + (str(key),))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from iter_metrics(value, path + (str(index),))


def lookup(node, path):
    for key in path:
        if isinstance(node, dict):
            node = node.get(key)
        elif isinstance(node, list):
            index = int(key)
            node = node[index] if 0 <= index < len(node) else None
        else:
            return None
    return node


def compare(baseline, candidate, tolerance):
    """Return a list of human-readable regression descriptions."""
    problems = []
    for path, key, base_value in iter_metrics(baseline):
        cand_node = lookup(candidate, path)
        cand_value = cand_node.get(key) if isinstance(cand_node, dict) else None
        where = "/".join(path + (key,))
        if not isinstance(cand_value, (int, float)):
            problems.append(f"{where}: missing from candidate report")
            continue
        cand_value = float(cand_value)
        if base_value == 0.0:
            continue  # nothing meaningful to ratio against
        ratio = cand_value / base_value
        if key in HIGHER_IS_BETTER and ratio < 1.0 - tolerance:
            problems.append(
                f"{where}: {cand_value:.6g} is {100 * (1 - ratio):.1f}% below "
                f"baseline {base_value:.6g}"
            )
        if key in LOWER_IS_BETTER and ratio > 1.0 + tolerance:
            problems.append(
                f"{where}: {cand_value:.6g} is {100 * (ratio - 1):.1f}% above "
                f"baseline {base_value:.6g}"
            )
    return problems


def check_budget(budget, timings):
    """Return problems for budgeted cells that are missing or over budget."""
    problems = []
    for cell, limit in sorted(budget.items()):
        measured = timings.get(cell)
        if not isinstance(measured, (int, float)):
            problems.append(f"{cell}: no measured timing (budget {limit}s)")
        elif float(measured) > float(limit):
            problems.append(f"{cell}: {float(measured):.3f}s exceeds budget {float(limit):.3f}s")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline")
    parser.add_argument("--candidate")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--budget", help="committed wall-clock budget file (cell -> max s)")
    parser.add_argument("--timings", help="measured wall-clock timings to gate with --budget")
    args = parser.parse_args(argv)

    if bool(args.budget) != bool(args.timings):
        parser.error("--budget and --timings must be used together")
    if args.budget:
        with open(args.budget) as fh:
            budget = json.load(fh)
        with open(args.timings) as fh:
            timings = json.load(fh)
        problems = check_budget(budget, timings)
        label = f"{args.timings} vs budget {args.budget}"
        if problems:
            print(f"OVER BUDGET: {label}")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"ok: {label} ({len(budget)} cells inside their wall-clock budget)")
        return 0

    if not args.baseline or not args.candidate:
        parser.error("either --baseline/--candidate or --budget/--timings is required")
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)

    checked = sum(1 for _ in iter_metrics(baseline))
    problems = compare(baseline, candidate, args.tolerance)
    label = f"{args.candidate} vs {args.baseline}"
    if problems:
        print(f"REGRESSION: {label} ({len(problems)} of {checked} metrics)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"ok: {label} ({checked} metrics within +/-{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
