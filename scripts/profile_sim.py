"""Profile the simulator hot path over a parameterised benchmark cell.

Runs one broadcast-heavy workload cell (the same shape as
``benchmarks/bench_kernel_scaling.py``) under ``cProfile`` and prints a
top-N table by cumulative and by internal time, so "make the kernel faster"
always starts from a measurement instead of a hunch.  CI can archive the
output as an artifact to track where the time goes across commits.

Usage::

    PYTHONPATH=src python scripts/profile_sim.py
    PYTHONPATH=src python scripts/profile_sim.py --nodes 64 --ops 20 --top 40
    PYTHONPATH=src python scripts/profile_sim.py --out profile.txt
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - script-mode bootstrap
    sys.path.insert(0, _SRC)

from repro.config import ClusterConfig, CostModel
from repro.workloads import WorkloadRunner, WorkloadSpec


def build_cell(args: argparse.Namespace):
    """The profiled workload: sequenced write broadcasts, loaded sequencer."""
    cost_model = CostModel().with_overrides(cpu={"sequencing_cost": args.sequencing_cost})
    spec = WorkloadSpec(
        name="counter-farm-writes",
        num_keys=32,
        read_fraction=0.0,
        ops_per_client=args.ops,
        think_time=args.think_time,
    )

    def cell():
        runner = WorkloadRunner(
            "counter-farm",
            workload=spec,
            runtime="broadcast",
            num_nodes=args.nodes,
            clients_per_node=args.clients,
            seed=args.seed,
            num_shards=args.shards,
            config=ClusterConfig(num_nodes=args.nodes, seed=args.seed, cost_model=cost_model),
        )
        return runner.run()

    return cell


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the discrete-event hot path over one bench cell"
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--clients", type=int, default=6, help="closed-loop clients per node")
    parser.add_argument("--ops", type=int, default=40, help="ops per client")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--think-time", type=float, default=0.0005)
    parser.add_argument(
        "--sequencing-cost",
        type=float,
        default=2.0e-4,
        help="per-message sequencer service time (seconds)",
    )
    parser.add_argument("--top", type=int, default=25, help="rows per ranking table")
    parser.add_argument("--out", default=None, help="also write the report to this file")
    args = parser.parse_args(argv)

    cell = build_cell(args)
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    report = cell()
    profiler.disable()
    wall = time.perf_counter() - started

    buf = io.StringIO()
    buf.write(
        f"profile_sim: {args.nodes} nodes x {args.clients} clients x "
        f"{args.ops} ops (shards={args.shards}, seed={args.seed})\n"
        f"wall={wall:.3f}s ops={report.total_ops} "
        f"virtual_throughput={report.throughput:.1f} ops/s\n\n"
    )
    stats = pstats.Stats(profiler, stream=buf)
    buf.write(f"=== top {args.top} by cumulative time ===\n")
    stats.sort_stats("cumulative").print_stats(args.top)
    buf.write(f"\n=== top {args.top} by internal time ===\n")
    stats.sort_stats("tottime").print_stats(args.top)

    text = buf.getvalue()
    sys.stdout.write(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
