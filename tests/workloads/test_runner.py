"""Integration tests: the workload runner against all four runtimes."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.harness.sweeps import workload_run_collection
from repro.workloads import (
    RUNTIME_KINDS,
    WorkloadRunner,
    WorkloadSpec,
    run_scenario_matrix,
)

SMALL = WorkloadSpec(name="small", num_keys=4, read_fraction=0.75,
                     ops_per_client=12, think_time=0.0002)


def small_runner(scenario="counter-farm", runtime="broadcast", seed=11,
                 workload=SMALL, **kwargs):
    return WorkloadRunner(scenario, workload=workload, runtime=runtime,
                          num_nodes=3, clients_per_node=1, seed=seed, **kwargs)


class TestRunnerBasics:
    def test_rejects_unknown_runtime(self):
        with pytest.raises(ConfigurationError):
            WorkloadRunner("counter-farm", runtime="quantum")

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            WorkloadRunner("no-such-scenario")

    @pytest.mark.parametrize("runtime", RUNTIME_KINDS)
    def test_runs_on_every_runtime(self, runtime):
        report = small_runner(runtime=runtime).run()
        assert report.total_ops == 3 * SMALL.ops_per_client
        assert report.total_ops == report.reads + report.writes
        assert report.elapsed > 0
        assert report.throughput > 0
        # The scenario's own consistency check ran and produced facts.
        assert report.scenario_facts["counter_total"] == report.writes

    def test_report_identifies_the_configuration(self):
        report = small_runner(runtime="central").run()
        assert report.scenario == "counter-farm"
        assert report.runtime == "central-server-rts"
        assert report.workload == "small"
        assert report.num_nodes == 3
        assert report.num_clients == 3


class TestLatencyCollection:
    def test_request_latency_has_read_write_and_overall(self):
        report = small_runner().run()
        assert set(report.request_latency) >= {"read", "write", "overall"}
        overall = report.request_latency["overall"]
        assert overall["count"] == report.total_ops
        assert 0 <= overall["p50"] <= overall["p95"] <= overall["p99"]

    def test_rts_invocation_latency_is_wired(self):
        """The runtime's own invocation path records through LatencyProbe,
        covering exactly the measurement window (counter-farm issues one
        invocation per request; setup and validation are excluded)."""
        report = small_runner(runtime="broadcast").run()
        assert report.rts_latency["overall"]["count"] == report.total_ops
        assert report.rts_latency["write"]["count"] == report.writes
        assert report.rts_latency["read"]["count"] == report.reads

    def test_percentile_row_defaults_to_overall(self):
        report = small_runner().run()
        row = report.percentile_row()
        assert row == {key: report.request_latency["overall"][key]
                       for key in ("p50", "p95", "p99", "mean")}


class TestDeterminism:
    @pytest.mark.parametrize("runtime", RUNTIME_KINDS)
    def test_same_seed_reproduces_report_exactly(self, runtime):
        first = small_runner(runtime=runtime).run()
        second = small_runner(runtime=runtime).run()
        assert first.fingerprint() == second.fingerprint()
        assert first.request_latency == second.request_latency
        assert first.rts_latency == second.rts_latency
        assert first.network == second.network

    def test_different_seed_changes_the_traffic(self):
        first = small_runner(seed=1).run()
        second = small_runner(seed=2).run()
        assert first.fingerprint() != second.fingerprint()


class TestClientModels:
    def test_open_loop_issues_all_requests(self):
        spec = WorkloadSpec(name="open", num_keys=4, read_fraction=0.8,
                            client_model="open", arrival_rate=800.0,
                            ops_per_client=10)
        report = small_runner(workload=spec).run()
        assert report.total_ops == 30

    def test_open_loop_latency_includes_queueing_delay(self):
        """Under overload, intended-arrival accounting inflates latencies."""
        slow = WorkloadSpec(name="slow", num_keys=1, read_fraction=0.0,
                            client_model="open", arrival_rate=200.0,
                            ops_per_client=10)
        fast = slow.with_overrides(name="fast", arrival_rate=100000.0)
        relaxed = small_runner("hot-spot", workload=slow).run()
        swamped = small_runner("hot-spot", workload=fast).run()
        assert (swamped.request_latency["overall"]["p95"]
                > relaxed.request_latency["overall"]["p95"])

    def test_closed_loop_think_time_stretches_the_run(self):
        quick = small_runner(workload=SMALL.with_overrides(think_time=0.0)).run()
        thoughtful = small_runner(
            workload=SMALL.with_overrides(think_time=0.005)).run()
        assert thoughtful.elapsed > quick.elapsed

    def test_arrival_trace_drives_the_request_count(self):
        traced = WorkloadSpec(name="traced", num_keys=4, read_fraction=0.5,
                              client_model="open",
                              arrival_trace=((0.01, 1000.0), (0.01, 3000.0)))
        report = small_runner(workload=traced).run()
        # ~3 clients x ~(10 + 30) arrivals; exact count is seed-determined.
        assert 60 <= report.total_ops <= 180
        repeat = small_runner(workload=traced).run()
        assert repeat.fingerprint() == report.fingerprint()

    def test_hotspot_shift_scenario_moves_between_shards(self):
        report = WorkloadRunner("hotspot-shift", runtime="broadcast",
                                num_nodes=4, clients_per_node=1, seed=11,
                                num_shards=4).run()
        assert report.scenario_facts["counter_total"] == report.writes
        # The per-phase hotspot landed writes on several groups.
        per_shard = report.rts_summary["sharding"]["per_shard"]
        busy = [s for s, stats in per_shard.items() if stats["writes"] > 0]
        assert len(busy) >= 3


class TestMatrixAndHarness:
    def test_matrix_covers_all_combinations(self):
        reports = run_scenario_matrix(
            ["hot-spot", "kv-table"], ["broadcast", "central"],
            workload=SMALL, num_nodes=3, seed=5)
        assert len(reports) == 4
        assert {(r.scenario, r.runtime) for r in reports} == {
            ("hot-spot", "broadcast-rts"), ("hot-spot", "central-server-rts"),
            ("kv-table", "broadcast-rts"), ("kv-table", "central-server-rts"),
        }

    def test_workload_run_collection_adapts_reports(self):
        reports = [small_runner().run()]
        collection = workload_run_collection(reports)
        assert len(collection) == 1
        record = collection.records[0]
        assert record.params["scenario"] == "counter-farm"
        assert record.extra["throughput"] == reports[0].throughput
        assert collection.filter(runtime="broadcast-rts").records


class TestCrossRuntimeConsistency:
    def test_all_runtimes_agree_on_final_state(self):
        """Same seed -> same request streams -> identical shared-object facts."""
        facts = [small_runner(runtime=runtime).run().scenario_facts
                 for runtime in RUNTIME_KINDS]
        assert all(f == facts[0] for f in facts)

    def test_fifo_queue_conserves_items_everywhere(self):
        spec = WorkloadSpec(name="q", read_fraction=0.5, ops_per_client=10,
                            think_time=0.0002)
        for runtime in RUNTIME_KINDS:
            report = small_runner("fifo-queue", workload=spec,
                                  runtime=runtime).run()
            facts = report.scenario_facts
            assert facts["enqueued"] - facts["dequeued"] == facts["backlog"]


class TestTransactionalScenarios:
    """The PR 8 scenario kinds: atomic on a transactional runtime, degraded
    (but still conserving / self-consistent) everywhere else."""

    def test_bank_transfer_is_atomic_on_broadcast(self):
        spec = WorkloadSpec(name="bank", num_keys=4, read_fraction=0.5,
                            ops_per_client=12, think_time=0.0002)
        report = small_runner("bank-transfer", workload=spec,
                              runtime="broadcast", num_shards=2).run()
        facts = report.scenario_facts
        assert facts["transactional"] is True
        assert facts["bank_total"] == 4 * 100
        assert facts["transfers_committed"] + facts["transfers_aborted"] == report.writes
        # Commit counters surface through the summary and the fingerprint.
        transactions = report.rts_summary["transactions"]
        assert transactions["commits"] == facts["transfers_committed"]
        assert report.fingerprint()["transactions"]["commits"] == transactions["commits"]

    def test_bank_transfer_falls_back_on_non_transactional_runtimes(self):
        spec = WorkloadSpec(name="bank", num_keys=4, read_fraction=0.5,
                            ops_per_client=12, think_time=0.0002)
        report = small_runner("bank-transfer", workload=spec,
                              runtime="central").run()
        facts = report.scenario_facts
        assert facts["transactional"] is False
        assert facts["bank_total"] == 4 * 100
        # No transaction ever ran, so the summary carries no block and the
        # fingerprint stays shaped exactly like a pre-transaction report.
        assert "transactions" not in report.rts_summary
        assert "transactions" not in report.fingerprint()

    def test_kv_index_mirror_stays_consistent(self):
        spec = WorkloadSpec(name="kv", num_keys=6, read_fraction=0.4,
                            ops_per_client=12, think_time=0.0002)
        report = small_runner("kv-index", workload=spec,
                              runtime="broadcast", num_shards=2).run()
        facts = report.scenario_facts
        assert facts["transactional"] is True
        assert facts["index_mismatches"] == 0

    def test_queue_move_accounts_for_every_item(self):
        spec = WorkloadSpec(name="qm", num_keys=2, read_fraction=0.25,
                            ops_per_client=16, think_time=0.0002)
        for runtime in ("broadcast", "central"):
            report = small_runner("queue-move", workload=spec,
                                  runtime=runtime, seed=13).run()
            facts = report.scenario_facts
            assert facts["inbox_backlog"] == facts["produced"] - facts["moves"]
            assert facts["outbox_backlog"] == facts["moves"]
