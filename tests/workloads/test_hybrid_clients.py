"""Hybrid clients: per-phase closed/open loop switching (classic runner)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.workloads import PhaseSpec, WorkloadRunner, WorkloadSpec

HYBRID = WorkloadSpec(
    name="hybrid", num_keys=4, read_fraction=0.75, client_model="closed",
    think_time=0.0002, arrival_rate=300.0,
    phases=(PhaseSpec(ops_per_client=8),
            PhaseSpec(ops_per_client=8, client_model="open"),
            PhaseSpec(ops_per_client=8, client_model="closed")))


def run_classic(workload, seed=21):
    return WorkloadRunner("counter-farm", workload=workload,
                          runtime="broadcast", num_nodes=3,
                          clients_per_node=2, seed=seed).run()


class TestSpecResolution:
    def test_phases_inherit_the_workload_model_by_default(self):
        spec = WorkloadSpec(client_model="open", arrival_rate=100.0,
                            phases=(PhaseSpec(ops_per_client=5),
                                    PhaseSpec(ops_per_client=5,
                                              client_model="closed")))
        models = [phase.client_model for phase in spec.resolved_phases()]
        assert models == ["open", "closed"]

    def test_unknown_phase_model_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(phases=(PhaseSpec(ops_per_client=5,
                                           client_model="semi-open"),))

    def test_open_phase_needs_a_positive_rate(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(client_model="closed", arrival_rate=0.0,
                         phases=(PhaseSpec(ops_per_client=5,
                                           client_model="open"),))

    def test_phase_rate_override_satisfies_the_open_check(self):
        spec = WorkloadSpec(client_model="closed", arrival_rate=0.0,
                            phases=(PhaseSpec(ops_per_client=5,
                                              client_model="open",
                                              arrival_rate=50.0),))
        assert spec.resolved_phases()[0].arrival_rate == 50.0


class TestHybridRuns:
    def test_hybrid_run_completes_every_op(self):
        report = run_classic(HYBRID)
        assert report.total_ops == 3 * 2 * 24
        assert report.scenario_facts["counter_total"] == report.writes

    def test_hybrid_run_is_deterministic(self):
        first = json.dumps(run_classic(HYBRID).fingerprint(), sort_keys=True)
        second = json.dumps(run_classic(HYBRID).fingerprint(), sort_keys=True)
        assert first == second

    def test_loop_mode_actually_changes_the_run(self):
        pure_closed = WorkloadSpec(
            name="hybrid", num_keys=4, read_fraction=0.75,
            client_model="closed", think_time=0.0002, arrival_rate=300.0,
            phases=(PhaseSpec(ops_per_client=8),
                    PhaseSpec(ops_per_client=8),
                    PhaseSpec(ops_per_client=8)))
        hybrid_fp = json.dumps(run_classic(HYBRID).fingerprint(),
                               sort_keys=True)
        closed_fp = json.dumps(run_classic(pure_closed).fingerprint(),
                               sort_keys=True)
        assert hybrid_fp != closed_fp

    def test_open_entry_restarts_the_arrival_clock(self):
        # With a think-heavy closed phase first, a *back-filling* open
        # clock would flood phase 1 with a burst of overdue arrivals and
        # inflate measured latency; the restart keeps phase-1 spacing at
        # the configured rate.  Structural proxy: the run completes with
        # every op accounted for and a duration at least as long as the
        # open phase's expected span.
        slow_think = WorkloadSpec(
            name="restart", num_keys=4, read_fraction=0.75,
            client_model="closed", think_time=0.01, arrival_rate=500.0,
            phases=(PhaseSpec(ops_per_client=10),
                    PhaseSpec(ops_per_client=10, client_model="open")))
        report = run_classic(slow_think)
        assert report.total_ops == 3 * 2 * 20
        # Ten closed ops with 10 ms mean think take ~0.1 s before the open
        # phase even starts; a back-filled clock would have ended earlier.
        assert report.elapsed > 0.05
