"""Workload-level tests for the adaptive runtime kind and mixed policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads import RUNTIME_KINDS, WorkloadRunner, WorkloadSpec

MIXED = WorkloadSpec(name="mixed", num_keys=8, read_fraction=0.95,
                     hot_keys=2, hot_read_fraction=0.05,
                     popularity="zipfian", zipf_s=1.2,
                     ops_per_client=70, think_time=0.0003)


def run(scenario="counter-farm", runtime="adaptive", workload=MIXED, **kwargs):
    return WorkloadRunner(scenario, workload=workload, runtime=runtime,
                          num_nodes=4, clients_per_node=1, seed=13,
                          **kwargs).run()


class TestAdaptiveRuntimeKind:
    def test_adaptive_is_a_runtime_kind(self):
        assert "adaptive" in RUNTIME_KINDS

    def test_hot_keys_get_write_hot_traffic(self):
        report = run()
        # With hot_read_fraction=0.05 on the two Zipf-hottest keys, writes
        # dominate the stream even though cold keys are 95% reads.
        assert report.writes > report.reads * 0.3
        assert report.scenario_facts["counter_total"] == report.writes

    def test_write_hot_counters_migrate_cold_ones_stay(self):
        report = run()
        policies = report.final_policies()
        assert policies["counter[0]"] == "primary-invalidate"
        assert policies["counter[1]"] == "primary-invalidate"
        # The cold tail stays broadcast replicated.
        cold = [policies[f"counter[{i}]"] for i in range(2, 8)]
        assert set(cold) == {"broadcast"}
        assert report.rts_summary["migrations"]["to_primary"] >= 2

    def test_adaptive_report_is_deterministic(self):
        first, second = run(), run()
        assert first.fingerprint() == second.fingerprint()
        assert first.request_latency == second.request_latency

    def test_adaptive_composes_with_sharding_and_batching(self):
        report = run(num_shards=2, batching={"max_batch": 4})
        assert report.scenario_facts["counter_total"] == report.writes
        assert report.rts_summary["sharding"]["num_shards"] == 2

    def test_sharding_still_rejected_on_point_to_point(self):
        with pytest.raises(ConfigurationError):
            WorkloadRunner("counter-farm", runtime="p2p", num_shards=2)


class TestPolicyMixScenario:
    @pytest.mark.parametrize("runtime", RUNTIME_KINDS)
    def test_runs_on_every_runtime(self, runtime):
        report = run("policy-mix", runtime=runtime,
                     workload=WorkloadSpec(name="pm", num_keys=8,
                                           read_fraction=0.8,
                                           ops_per_client=15,
                                           think_time=0.0002))
        assert report.scenario_facts["ledger_total"] == report.writes
        assert report.scenario_facts["catalog_size"] == 8

    def test_objects_run_under_different_policies_on_hybrid(self):
        report = run("policy-mix", runtime="broadcast",
                     workload=WorkloadSpec(name="pm", num_keys=8,
                                           read_fraction=0.8,
                                           ops_per_client=15,
                                           think_time=0.0002))
        policies = report.scenario_facts["policies"]
        assert policies == {"catalog": "broadcast",
                            "ledger": "primary-invalidate"}
        rows = report.object_rows()
        assert rows["ledger"]["policy"] == "primary-invalidate"
        assert rows["catalog"]["policy"] == "broadcast"

    def test_per_object_rows_reconcile_with_totals(self):
        report = run("policy-mix", runtime="broadcast",
                     workload=WorkloadSpec(name="pm", num_keys=8,
                                           read_fraction=0.8,
                                           ops_per_client=15,
                                           think_time=0.0002))
        rows = report.object_rows()
        # Measured traffic (setup writes excluded) adds up per object.
        assert rows["ledger"]["writes"] == report.writes
        measured_reads = sum(row["reads"] for row in rows.values())
        # Validation reads run after the window but still count per object;
        # client reads all hit the catalog.
        assert rows["catalog"]["reads"] >= report.reads


class TestHotKeySpecValidation:
    def test_hot_keys_require_hot_read_fraction(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="x", hot_keys=2)

    def test_hot_keys_bounded_by_key_space(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="x", num_keys=4, hot_keys=5,
                         hot_read_fraction=0.1)

    def test_streams_identical_to_seed_when_disabled(self):
        import random
        from repro.workloads.spec import request_stream

        base = WorkloadSpec(name="b", num_keys=8, read_fraction=0.7,
                            ops_per_client=30)
        biased = base.with_overrides(hot_keys=2, hot_read_fraction=0.7)
        first = list(request_stream(base, random.Random(5)))
        second = list(request_stream(biased, random.Random(5)))
        # Same threshold for hot and cold -> identical stream, key draws and
        # mix draws interleave in the same fixed order.
        assert first == second
