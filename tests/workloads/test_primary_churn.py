"""The primary-churn scenario end to end through the workload runner.

Counters under all four management policies take traffic while the nodes
hosting the primary seats crash on a schedule; on recovery-capable runtimes
every write must still land exactly once (the scenario's ``validate``
asserts conservation), and the whole run must be deterministic — takeover
points included — under a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.workloads import WorkloadRunner

NUM_NODES = 6
SEED = 21


def run_churn(runtime, **kwargs):
    return WorkloadRunner("primary-churn", runtime=runtime,
                          num_nodes=NUM_NODES, clients_per_node=1,
                          seed=SEED, **kwargs).run()


class TestChurnOnRecoveryCapableRuntimes:
    @pytest.mark.parametrize("runtime,kwargs", [
        ("broadcast", {}),
        ("adaptive", {}),
        # The p2p runtime kind needs the shared Ethernet to order takeover
        # switches (its natural switched interconnect cannot broadcast).
        ("p2p", {"network_type": "ethernet"}),
    ])
    def test_counters_survive_scheduled_primary_crashes(self, runtime, kwargs):
        report = run_churn(runtime, **kwargs)
        facts = report.scenario_facts
        assert facts["churn_active"] is True
        assert facts["crashed_nodes"], facts
        assert facts["recoveries"] >= 1, facts
        # validate() already asserted conservation; pin the equality here
        # too so a silent validate regression cannot hide it.
        assert facts["counter_total"] == report.writes
        # Clients were kept off the victim nodes.
        assert report.num_clients == (NUM_NODES - 2)
        recovery = report.rts_summary["recovery"]
        assert recovery["primary_recoveries"] == facts["recoveries"]
        assert recovery["max_window"] is not None
        for _name, old_primary, new_primary, _source in recovery["log"]:
            assert old_primary in facts["crashed_nodes"]
            assert new_primary not in facts["crashed_nodes"]

    def test_churn_runs_are_deterministic(self):
        first = run_churn("broadcast")
        second = run_churn("broadcast")
        assert "recovery" in first.fingerprint()
        assert first.fingerprint() == second.fingerprint()

    def test_every_policy_kind_is_exercised(self):
        report = run_churn("broadcast")
        policies = set(report.final_policies().values())
        # Adaptive counters report the fixed policy they currently run
        # under, so "all four kinds" shows up as both mechanisms present
        # plus the adaptive flag on the per-object rows.
        assert "primary-invalidate" in policies
        assert "primary-update" in policies
        assert "broadcast" in policies
        rows = report.object_rows()
        assert any(row.get("adaptive") for row in rows.values())


class TestChurnDegradesWithoutRecovery:
    @pytest.mark.parametrize("runtime", ["p2p", "central", "ivy"])
    def test_runtimes_without_takeover_run_crash_free(self, runtime):
        report = run_churn(runtime)
        facts = report.scenario_facts
        assert facts["churn_active"] is False
        assert facts["counter_total"] == report.writes
        assert "recovery" not in report.rts_summary
