"""Tests for workload specifications: distributions, mixes, phases."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    KeySampler,
    PhaseSpec,
    WorkloadSpec,
    bursty,
    request_stream,
    trace_arrivals,
    traced_request_stream,
)
from repro.workloads.spec import observed_mix


class TestValidation:
    def test_rejects_unknown_popularity(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(popularity="parabolic")

    def test_rejects_unknown_client_model(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(client_model="half-open")

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(read_fraction=1.5)

    def test_rejects_open_loop_without_rate(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(client_model="open", arrival_rate=0.0)

    def test_rejects_non_positive_value_sizes(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(value_sizes=(64, 0))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(value_sizes=(2.5,))


class TestValueSizes:
    def test_default_models_no_payload_sizes(self):
        assert WorkloadSpec().value_size(3) == 0

    def test_sizes_cycle_over_the_key_space(self):
        spec = WorkloadSpec(num_keys=5, value_sizes=(8, 512))
        assert [spec.value_size(k) for k in range(5)] == [8, 512, 8, 512, 8]


class TestKeySampler:
    def test_uniform_covers_key_space(self):
        spec = WorkloadSpec(num_keys=8)
        sampler = KeySampler(spec)
        rng = random.Random(1)
        seen = {sampler.sample(rng) for _ in range(2000)}
        assert seen == set(range(8))

    def test_zipfian_skews_toward_low_ranks(self):
        spec = WorkloadSpec(num_keys=32, popularity="zipfian", zipf_s=1.3)
        sampler = KeySampler(spec)
        rng = random.Random(2)
        counts = [0] * 32
        for _ in range(5000)        :
            counts[sampler.sample(rng)] += 1
        # The hottest key dominates and the head outweighs the tail.
        assert counts[0] == max(counts)
        assert sum(counts[:4]) > sum(counts[16:])

    def test_zipfian_more_skewed_than_uniform(self):
        rng_u, rng_z = random.Random(3), random.Random(3)
        uniform = KeySampler(WorkloadSpec(num_keys=16))
        zipf = KeySampler(WorkloadSpec(num_keys=16, popularity="zipfian", zipf_s=1.2))
        top_u = sum(1 for _ in range(3000) if uniform.sample(rng_u) == 0)
        top_z = sum(1 for _ in range(3000) if zipf.sample(rng_z) == 0)
        assert top_z > 2 * top_u


class TestRequestStream:
    def test_deterministic_for_equal_seeds(self):
        spec = WorkloadSpec(num_keys=8, read_fraction=0.7, ops_per_client=40)
        first = list(request_stream(spec, random.Random(9)))
        second = list(request_stream(spec, random.Random(9)))
        assert first == second

    def test_respects_read_fraction_roughly(self):
        spec = WorkloadSpec(num_keys=4, read_fraction=0.8, ops_per_client=1000)
        requests = list(request_stream(spec, random.Random(4)))
        assert 0.75 < observed_mix(requests) < 0.85

    def test_all_reads_and_all_writes(self):
        all_reads = WorkloadSpec(read_fraction=1.0, ops_per_client=50)
        assert observed_mix(list(request_stream(all_reads, random.Random(1)))) == 1.0
        all_writes = WorkloadSpec(read_fraction=0.0, ops_per_client=50)
        assert observed_mix(list(request_stream(all_writes, random.Random(1)))) == 0.0

    def test_sequence_numbers_are_consecutive(self):
        spec = WorkloadSpec(ops_per_client=25)
        requests = list(request_stream(spec, random.Random(5)))
        assert [request.seq for request in requests] == list(range(25))


class TestPhases:
    def test_single_phase_from_top_level_fields(self):
        spec = WorkloadSpec(ops_per_client=30, read_fraction=0.6, think_time=0.01)
        phases = spec.resolved_phases()
        assert len(phases) == 1
        assert phases[0].ops_per_client == 30
        assert phases[0].read_fraction == 0.6
        assert phases[0].think_time == 0.01

    def test_phase_fields_inherit_from_workload(self):
        spec = WorkloadSpec(read_fraction=0.9, think_time=0.002, phases=(
            PhaseSpec(ops_per_client=10),
            PhaseSpec(ops_per_client=5, read_fraction=0.1),
        ))
        first, second = spec.resolved_phases()
        assert first.read_fraction == 0.9
        assert first.think_time == 0.002
        assert second.read_fraction == 0.1
        assert spec.total_ops_per_client == 15

    def test_requests_tagged_with_their_phase(self):
        spec = WorkloadSpec(phases=(PhaseSpec(ops_per_client=4),
                                    PhaseSpec(ops_per_client=3)))
        requests = list(request_stream(spec, random.Random(6)))
        assert [request.phase for request in requests] == [0] * 4 + [1] * 3

    def test_bursty_builder_alternates_rates(self):
        spec = bursty("b", ops_per_phase=10, base_rate=100.0, burst_rate=900.0,
                      bursts=2)
        rates = [phase.arrival_rate for phase in spec.resolved_phases()]
        assert rates == [100.0, 900.0, 100.0, 900.0]
        assert spec.client_model == "open"

    def test_with_overrides_returns_modified_copy(self):
        spec = WorkloadSpec(num_keys=8)
        other = spec.with_overrides(num_keys=64)
        assert other.num_keys == 64
        assert spec.num_keys == 8


class TestArrivalTrace:
    def make_spec(self, trace=((0.05, 400.0), (0.05, 1200.0))):
        return WorkloadSpec(name="traced", client_model="open",
                            arrival_trace=tuple(trace))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(client_model="closed", arrival_trace=((0.1, 100.0),))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(client_model="open", arrival_trace=((0.1, -5.0),))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(client_model="open", arrival_trace=((0.0, 100.0),))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(client_model="open", arrival_trace=((0.1,),))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(client_model="open", arrival_trace=((0.1, 100.0),),
                         phases=(PhaseSpec(ops_per_client=5),))

    def test_arrivals_are_deterministic_and_ordered(self):
        trace = ((0.05, 400.0), (0.05, 1200.0))
        first = list(trace_arrivals(trace, random.Random(7)))
        second = list(trace_arrivals(trace, random.Random(7)))
        assert first == second and first
        times = [t for t, _ in first]
        assert times == sorted(times)
        assert all(0.0 < t < 0.1 for t in times)

    def test_segment_rates_shape_the_arrival_counts(self):
        trace = ((0.5, 200.0), (0.5, 1000.0))
        arrivals = list(trace_arrivals(trace, random.Random(11)))
        slow = sum(1 for _, seg in arrivals if seg == 0)
        fast = sum(1 for _, seg in arrivals if seg == 1)
        # ~100 vs ~500 expected; demand a clear gap, not exact counts.
        assert fast > 3 * slow
        # Segment tags match the arrival times.
        for t, seg in arrivals:
            assert (t >= 0.5) == (seg == 1)

    def test_traced_request_stream_tags_phase_and_respects_mix(self):
        spec = self.make_spec().with_overrides(read_fraction=0.0)
        stream = list(traced_request_stream(spec, random.Random(3)))
        assert stream
        seqs = [request.seq for request, _ in stream]
        assert seqs == list(range(len(stream)))
        for request, arrival in stream:
            assert request.is_write
            assert request.phase in (0, 1)
            assert (arrival >= 0.05) == (request.phase == 1)

    def test_traced_stream_is_deterministic(self):
        spec = self.make_spec()
        a = list(traced_request_stream(spec, random.Random(9)))
        b = list(traced_request_stream(spec, random.Random(9)))
        assert a == b
