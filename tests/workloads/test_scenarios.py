"""Tests for scenario kinds and the scenario registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rts.object_model import execute_operation
from repro.workloads import PollableQueue, Scenario, ScenarioRegistry, WorkloadSpec
from repro.workloads.scenarios import scenario

BUILTIN_KINDS = ["bank-transfer", "counter-farm", "diurnal-trace",
                 "fifo-queue", "flash-crowd", "hot-spot", "hotspot-shift",
                 "kv-index", "kv-table", "multi-tenant-noisy-neighbour",
                 "policy-mix", "primary-churn", "queue-move",
                 "read-mostly-catalog", "rolling-restart", "scale-in"]


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert ScenarioRegistry.names() == BUILTIN_KINDS

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            ScenarioRegistry.get("teapot")

    def test_create_uses_default_spec(self):
        created = ScenarioRegistry.create("read-mostly-catalog")
        assert created.spec.read_fraction == 0.98
        assert created.spec.popularity == "zipfian"

    def test_create_accepts_custom_spec(self):
        spec = WorkloadSpec(name="custom", num_keys=3)
        created = ScenarioRegistry.create("counter-farm", spec)
        assert created.spec is spec

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):

            @scenario("hot-spot")
            class Duplicate(Scenario):  # pragma: no cover - never instantiated
                def setup(self, rts, proc):
                    pass

                def perform(self, rts, proc, request):
                    pass

    def test_decorator_registers_and_sets_kind(self):
        @scenario("test-only-kind")
        class TestOnly(Scenario):
            def setup(self, rts, proc):
                pass

            def perform(self, rts, proc, request):
                pass

        try:
            assert TestOnly.kind == "test-only-kind"
            assert ScenarioRegistry.get("test-only-kind") is TestOnly
        finally:
            ScenarioRegistry._kinds.pop("test-only-kind")


class TestPollableQueue:
    def ops(self):
        return {name: PollableQueue.operation_def(name)
                for name in ("put", "poll", "size", "totals")}

    def test_fifo_order_and_empty_poll(self):
        queue = PollableQueue.create()
        ops = self.ops()
        execute_operation(queue, ops["put"], (1,))
        execute_operation(queue, ops["put"], (2,))
        assert execute_operation(queue, ops["poll"], ()) == 1
        assert execute_operation(queue, ops["poll"], ()) == 2
        assert execute_operation(queue, ops["poll"], ()) is None
        totals = execute_operation(queue, ops["totals"], ())
        assert totals == {"enqueued": 2, "dequeued": 2, "empty_polls": 1}

    def test_poll_never_blocks(self):
        # No guard: the op runs (and returns None) even on an empty queue.
        assert PollableQueue.operation_def("poll").guard is None

    def test_read_write_classification(self):
        assert PollableQueue.operation_def("put").is_write
        assert PollableQueue.operation_def("poll").is_write
        assert not PollableQueue.operation_def("size").is_write


class TestDefaultSpecs:
    def test_every_kind_has_a_usable_default_spec(self):
        for kind in ScenarioRegistry.names():
            spec = ScenarioRegistry.get(kind).default_spec()
            assert spec.total_ops_per_client > 0
            assert spec.num_keys >= 1

    def test_hot_spot_uses_single_key(self):
        assert ScenarioRegistry.get("hot-spot").default_spec().num_keys == 1

    def test_hotspot_shift_rotates_the_hot_keys_per_phase(self):
        from repro.workloads import Request

        scenario_obj = ScenarioRegistry.create("hotspot-shift")
        spec = scenario_obj.spec
        assert spec.arrival_trace  # trace-driven by default
        stride = scenario_obj.stride
        assert stride % 4 != 0  # the rotation must change the id-hash shard
        key0 = scenario_obj._counter_for(Request(0, 0, True, phase=0))
        key1 = scenario_obj._counter_for(Request(1, 0, True, phase=1))
        key2 = scenario_obj._counter_for(Request(2, 0, True, phase=2))
        assert len({key0, key1, key2}) == 3
        # Consecutive phases put the hottest key on different id-hash shards.
        assert key0 % 4 != key1 % 4


class TestKVTablePayloadSizes:
    class _RecordingRts:
        def __init__(self):
            self.calls = []

        def invoke(self, proc, handle, op, args=(), kwargs=None):
            self.calls.append((op, args))

    def perform_write(self, spec, key):
        from repro.workloads import Request

        scenario_obj = ScenarioRegistry.create("kv-table", spec)
        scenario_obj.handles = [object()]  # skip setup; perform only invokes
        rts = self._RecordingRts()
        scenario_obj.perform(rts, None, Request(seq=7, key=key, is_write=True,
                                                phase=0))
        return rts.calls[0]

    def test_default_writes_the_sequence_number(self):
        op, args = self.perform_write(WorkloadSpec(), key=1)
        assert (op, args) == ("store", ("k1", 7))

    def test_value_sizes_pad_the_stored_payload(self):
        spec = WorkloadSpec(num_keys=4, value_sizes=(8, 512))
        op, args = self.perform_write(spec, key=1)
        assert op == "store"
        assert args[0] == "k1"
        assert args[1].startswith("7:")
        assert len(args[1]) == len("7:") + 512
