"""The rolling-restart and scale-in scenarios through the workload runner.

Rolling restart: every non-client machine is crashed, recovered and caught
back up in sequence under live mixed-policy traffic — conservation is
asserted by the scenario's ``validate``, and the whole run (takeover
points, rejoin windows, reseeded copies) must replay byte-for-byte under a
fixed seed.  Scale-in: the broadcast-group set is merged down mid-run.
Both kinds degrade to plain traffic on runtimes without the elasticity
machinery, so the scenario matrix still sweeps everywhere.
"""

from __future__ import annotations

import pytest

from repro.workloads import WorkloadRunner

NUM_NODES = 5
SEED = 21


def run_restart(runtime, **kwargs):
    return WorkloadRunner("rolling-restart", runtime=runtime,
                          num_nodes=NUM_NODES, clients_per_node=1,
                          seed=SEED, **kwargs).run()


def run_scale_in(runtime, **kwargs):
    return WorkloadRunner("scale-in", runtime=runtime, num_nodes=NUM_NODES,
                          clients_per_node=1, seed=SEED, **kwargs).run()


class TestRollingRestart:
    @pytest.mark.parametrize("runtime", ["broadcast", "adaptive"])
    def test_every_victim_restarts_and_rejoins_under_load(self, runtime):
        report = run_restart(runtime)
        facts = report.scenario_facts
        assert facts["churn_active"] is True
        # Every non-client machine went down and came back, in sequence.
        assert facts["restarted_nodes"] == [2, 3, 4]
        assert facts["rejoins"] == 3
        assert facts["reseeded"] > 0
        assert facts["counter_total"] == report.writes
        # Clients were kept off the victims.
        assert report.num_clients == 2
        elasticity = report.rts_summary["elasticity"]
        assert elasticity["node_rejoins"] == 3
        assert elasticity["max_rejoin_window"] is not None
        assert [entry[0] for entry in elasticity["rejoin_log"]] == [2, 3, 4]

    def test_restart_runs_are_deterministic(self):
        first = run_restart("adaptive")
        second = run_restart("adaptive")
        assert "elasticity" in first.fingerprint()
        assert first.fingerprint() == second.fingerprint()

    @pytest.mark.parametrize("runtime", ["central", "ivy"])
    def test_degrades_without_rejoin_support(self, runtime):
        report = run_restart(runtime)
        facts = report.scenario_facts
        assert facts["churn_active"] is False
        assert facts["counter_total"] == report.writes
        assert "elasticity" not in report.rts_summary


class TestScaleIn:
    def test_groups_merge_under_load(self):
        report = run_scale_in("broadcast", num_shards=4)
        facts = report.scenario_facts
        assert facts["scale_active"] is True
        assert facts["shards_removed"] == 2
        assert facts["active_shards"] == 2
        assert facts["counter_total"] == report.writes
        assert report.rts_summary["elasticity"]["removed_shards"] == [3, 2]

    def test_scale_in_runs_are_deterministic(self):
        first = run_scale_in("broadcast", num_shards=4)
        second = run_scale_in("broadcast", num_shards=4)
        assert "elasticity" in first.fingerprint()
        assert first.fingerprint() == second.fingerprint()

    def test_degrades_with_a_single_group(self):
        report = run_scale_in("broadcast")
        facts = report.scenario_facts
        assert facts["scale_active"] is False
        assert facts["counter_total"] == report.writes
