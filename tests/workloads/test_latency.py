"""Tests for the latency histogram / recorder in repro.metrics.latency."""

from __future__ import annotations

import pytest

from repro.metrics.latency import (
    LatencyHistogram,
    LatencyRecorder,
    format_latency_row,
)


class TestLatencyHistogram:
    def test_empty_histogram_reports_zeros(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(0.99) == 0.0
        summary = histogram.summary()
        assert summary["count"] == 0.0 and summary["p95"] == 0.0

    def test_single_sample(self):
        histogram = LatencyHistogram()
        histogram.record(0.005)
        assert histogram.count == 1
        assert histogram.min == histogram.max == 0.005
        # With one sample every percentile is that sample (within bucket error).
        assert histogram.percentile(0.5) == pytest.approx(0.005, rel=0.05)
        assert histogram.percentile(0.99) == pytest.approx(0.005, rel=0.05)

    def test_percentiles_ordered_and_bounded(self):
        histogram = LatencyHistogram()
        for i in range(1, 1001):
            histogram.record(i * 1e-5)  # 10us .. 10ms
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert p50 <= p95 <= p99 <= histogram.max
        assert p50 == pytest.approx(0.005, rel=0.05)
        assert p99 == pytest.approx(0.0099, rel=0.05)

    def test_negative_samples_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-1.0)
        assert histogram.min == 0.0
        assert histogram.percentile(1.0) == 0.0

    def test_merge_combines_counts_and_extremes(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for value in (0.001, 0.002):
            a.record(value)
        for value in (0.01, 0.0001):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.min == 0.0001
        assert a.max == 0.01
        assert a.mean == pytest.approx((0.001 + 0.002 + 0.01 + 0.0001) / 4)

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(0.0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_deterministic_across_runs(self):
        def build():
            histogram = LatencyHistogram()
            for i in range(500):
                histogram.record((i % 37) * 3.1e-5)
            return histogram.summary()

        assert build() == build()


class TestLatencyRecorder:
    def test_per_kind_histograms(self):
        recorder = LatencyRecorder()
        recorder.record("read", 0.001)
        recorder.record("read", 0.002)
        recorder.record("write", 0.01)
        assert recorder.kinds() == ["read", "write"]
        assert recorder.histogram("read").count == 2
        assert recorder.histogram("write").count == 1
        assert recorder.histogram("missing").count == 0

    def test_merged_folds_all_kinds(self):
        recorder = LatencyRecorder()
        recorder.record("read", 0.001)
        recorder.record("write", 0.01)
        merged = recorder.merged()
        assert merged.count == 2
        assert merged.max == 0.01

    def test_summaries_include_overall(self):
        recorder = LatencyRecorder()
        recorder.record("read", 0.001)
        summaries = recorder.summaries()
        assert set(summaries) == {"read", "overall"}
        assert summaries["overall"]["count"] == 1.0
        for key in ("p50", "p95", "p99", "mean", "min", "max"):
            assert key in summaries["read"]

    def test_format_latency_row_in_milliseconds(self):
        recorder = LatencyRecorder()
        recorder.record("read", 0.002)
        p50, p95, p99, mean = format_latency_row(recorder.summaries()["read"])
        assert float(p50) == pytest.approx(2.0, rel=0.05)
        assert float(mean) == pytest.approx(2.0, rel=0.05)
