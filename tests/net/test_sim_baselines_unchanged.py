"""The transport-seam refactor must not move the simulator by one byte.

The simulated NIC/network layer now implements the extracted
:class:`~repro.amoeba.transport.Transport` interface the real backend plugs
into.  That refactor is only safe if it is *inert*: every committed smoke
baseline (`benchmarks/baselines/*.json`) must be reproduced byte-for-byte
by the seeded smoke suites.  Any drift — an extra message, a reordered
delivery, a changed latency — shows up here as a byte diff.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: smoke-producing benchmark script -> committed baseline it must reproduce.
BASELINES = {
    "bench_workload_scenarios.py": "workloads.json",
    "bench_adaptive_migration.py": "adaptive.json",
    "bench_rebalancing.py": "rebalance.json",
    "bench_primary_recovery.py": "recovery.json",
    "bench_elasticity.py": "elasticity.json",
    # PR 8: the transaction layer is created lazily on the first
    # transact() call, so every *other* smoke above must stay
    # byte-identical to its pre-transaction baseline — while this one
    # pins the transactional paths themselves.
    "bench_transactions.py": "transactions.json",
    # PR 9: the kernel-scaling sweep pins the rebuilt hot path (timer
    # wheel, event pooling, batched broadcast delivery, fast hold) at the
    # 8/16/64-node scales where those optimisations actually engage.
    "bench_kernel_scaling.py": "kernel_scaling.json",
}


@pytest.mark.parametrize("script,baseline", sorted(BASELINES.items()))
def test_smoke_reproduces_committed_baseline(tmp_path, script, baseline):
    out = tmp_path / "smoke.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / script),
         "--smoke", "--out", str(out)],
        check=True, env=env, cwd=str(REPO), timeout=300)
    committed = (REPO / "benchmarks" / "baselines" / baseline).read_bytes()
    assert out.read_bytes() == committed, (
        f"{script} --smoke no longer reproduces baselines/{baseline}; "
        "the simulated backend's behaviour changed")
