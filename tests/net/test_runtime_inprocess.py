"""In-process protocol-engine tests: several RealRuntimes, one event loop.

These run the real protocol engine over real UDP sockets without spawning
node processes, which makes loss injection (the transport's ``drop_tx`` /
``drop_rx`` hooks) and direct state inspection possible.  They are the
real-socket analogues of the simulator's NIC ``drop_filter`` tests: every
recovery mechanism — writer retry with sequencer dedupe, gap requests,
primary retransmit to unacked replicas, heartbeat-driven takeover — must
close the holes that injected loss opens.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.runtime import RealRuntime, RealTimings
from repro.net.udp import UdpTransport
from repro.orca.builtin_objects import IntObject

#: Aggressive timers: these tests inject loss and wait for recovery, so the
#: retry/sync machinery must cycle quickly.
FAST = RealTimings(heartbeat_interval=0.03, dead_after=0.25,
                   retry_interval=0.03, sync_interval=0.03, gap_delay=0.02,
                   submit_deadline=20.0)


def object_table(policy: str, primary: int = 0):
    return [{
        "obj_id": 1,
        "name": "cell",
        "spec": f"{IntObject.__module__}:{IntObject.__name__}",
        "args": [0],
        "kwargs": {},
        "policy": policy,
        "shard": 0,
        "primary": primary,
    }]


class InProcessCluster:
    """N transports + runtimes wired together inside the current loop."""

    def __init__(self, num_nodes: int, table, seats=None,
                 timings: RealTimings = FAST) -> None:
        self.num_nodes = num_nodes
        self.table = table
        self.seats = seats or {0: 0}
        self.timings = timings
        self.transports = {}
        self.runtimes = {}

    async def __aenter__(self) -> "InProcessCluster":
        peers = {}
        for node_id in range(self.num_nodes):
            transport = UdpTransport(node_id)
            peers[node_id] = ("127.0.0.1", await transport.open())
            self.transports[node_id] = transport
        for node_id, transport in self.transports.items():
            transport.set_peers(peers)
            runtime = RealRuntime(node_id, transport, self.timings)
            runtime.set_seats(self.seats)
            runtime.install_objects(self.table)
            await runtime.start()
            self.runtimes[node_id] = runtime
        return self

    async def __aexit__(self, *exc) -> None:
        for runtime in self.runtimes.values():
            await runtime.stop()
        for transport in self.transports.values():
            transport.close()

    async def converged(self, value: int, timeout: float = 10.0) -> None:
        """Wait until every replica of the cell reads ``value``."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            states = [runtime.objects[1].instance.value
                      for runtime in self.runtimes.values()]
            if all(state == value for state in states):
                return
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError(
                    f"replicas never converged to {value}: {states}")
            await asyncio.sleep(0.02)


def drop_first(kinds, count=1):
    """A drop hook that swallows the first ``count`` messages of ``kinds``."""
    remaining = {"n": count}

    def hook(msg, *args):
        if msg.kind in kinds and remaining["n"] > 0:
            remaining["n"] -= 1
            return True
        return False

    return hook


class TestOrderedPath:
    def test_writes_from_every_node_converge(self):
        async def run():
            async with InProcessCluster(3, object_table("broadcast")) as cluster:
                for node_id, runtime in cluster.runtimes.items():
                    await runtime.submit(1, "add", (1,),
                                         client=(node_id, 0), cseq=1)
                await cluster.converged(3)

        asyncio.run(run())

    def test_lost_data_broadcast_recovered_via_gap_request(self):
        async def run():
            async with InProcessCluster(3, object_table("broadcast")) as cluster:
                # Node 2 misses the first final-DATA broadcast; the next
                # in-order delivery (or a sync beacon) reveals the gap and
                # the seat's history refills it.
                cluster.transports[2].drop_rx = drop_first(("net.data",))
                for cseq in (1, 2):
                    await cluster.runtimes[1].submit(1, "add", (1,),
                                                     client=(1, 0), cseq=cseq)
                await cluster.converged(2)
                assert cluster.transports[2].stats.recv_drops == 1

        asyncio.run(run())

    def test_lost_request_retried_and_deduped_at_seat(self):
        async def run():
            async with InProcessCluster(3, object_table("broadcast")) as cluster:
                # The writer's first two ordering requests vanish; the
                # retry loop re-sends and the seat's uid table keeps the
                # operation exactly-once.
                cluster.transports[1].drop_tx = drop_first(("net.req",), 2)
                await cluster.runtimes[1].submit(1, "add", (1,),
                                                 client=(1, 0), cseq=1)
                await cluster.converged(1)

        asyncio.run(run())


class TestPrimaryPath:
    def test_remote_writes_converge(self):
        async def run():
            table = object_table("primary-update", primary=0)
            async with InProcessCluster(3, table) as cluster:
                for node_id, runtime in cluster.runtimes.items():
                    await runtime.submit(1, "add", (1,),
                                         client=(node_id, 0), cseq=1)
                await cluster.converged(3)

        asyncio.run(run())

    def test_lost_update_broadcast_retransmitted(self):
        async def run():
            table = object_table("primary-update", primary=0)
            async with InProcessCluster(3, table) as cluster:
                # Replica 2 misses the first propagated update; the primary
                # keeps retransmitting to unacked replicas until ack-all.
                cluster.transports[2].drop_rx = drop_first(("net.pupd",))
                await cluster.runtimes[1].submit(1, "add", (1,),
                                                 client=(1, 0), cseq=1)
                await cluster.converged(1)

        asyncio.run(run())

    def test_lost_ack_resend_is_exactly_once(self):
        async def run():
            table = object_table("primary-update", primary=0)
            async with InProcessCluster(3, table) as cluster:
                # The result ack back to the writer vanishes; the writer
                # re-sends the write and the primary's wid table answers
                # from memory instead of applying twice.
                cluster.transports[0].drop_tx = drop_first(("net.pack",))
                await cluster.runtimes[1].submit(1, "add", (1,),
                                                 client=(1, 0), cseq=1)
                await cluster.converged(1)
                assert cluster.runtimes[0].objects[1].instance.value == 1

        asyncio.run(run())


class TestTakeover:
    def test_surviving_node_adopts_dead_primary(self):
        async def run():
            table = object_table("primary-update", primary=2)
            async with InProcessCluster(3, table) as cluster:
                await cluster.runtimes[1].submit(1, "add", (1,),
                                                 client=(1, 0), cseq=1)
                await cluster.converged(1)
                # Node 2 (the primary) goes silent: stop its engine and
                # close its socket, as a SIGKILL would.
                await cluster.runtimes[2].stop()
                cluster.transports[2].close()
                dead = cluster.runtimes.pop(2)
                cluster.transports.pop(2)
                # A write through the dead primary must block until the
                # lowest-id survivor takes the object over, then commit.
                result = await asyncio.wait_for(
                    cluster.runtimes[1].submit(1, "add", (1,),
                                               client=(1, 0), cseq=2),
                    timeout=15.0)
                assert result == 2
                await cluster.converged(2)
                for runtime in cluster.runtimes.values():
                    assert runtime.objects[1].primary == 0
                assert dead is not None

        asyncio.run(run())
