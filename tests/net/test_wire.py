"""Tests for the real backend's wire framing."""

from __future__ import annotations

import pytest

from repro.amoeba.message import Message
from repro.errors import NetworkError
from repro.net.wire import (MAX_FRAME, StreamDecoder, decode_message,
                            encode_message, jsonify)


def make_message(**overrides):
    fields = dict(src=1, dst=2, kind="net.data", payload={"seqno": 7},
                  headers={"shard": 0})
    fields.update(overrides)
    return Message(**fields)


class TestJsonify:
    def test_passes_native_values(self):
        value = {"a": [1, 2.5, "x", None, True]}
        assert jsonify(value) == value

    def test_normalises_tuples_to_lists(self):
        assert jsonify({"t": (1, (2, 3))}) == {"t": [1, [2, 3]]}

    def test_rejects_non_json_values(self):
        with pytest.raises(NetworkError):
            jsonify({"bad": object()})

    def test_coerces_keys_to_strings(self):
        assert jsonify({1: "x"}) == {"1": "x"}


class TestCodec:
    def test_round_trip_unicast(self):
        msg = make_message()
        decoded = decode_message(encode_message(msg))
        assert decoded.src == msg.src
        assert decoded.dst == msg.dst
        assert decoded.kind == msg.kind
        assert decoded.payload == msg.payload
        assert decoded.headers == msg.headers
        assert decoded.msg_id == msg.msg_id

    def test_round_trip_broadcast(self):
        msg = make_message(dst=None)
        decoded = decode_message(encode_message(msg))
        assert decoded.is_broadcast

    def test_tuples_survive_as_lists(self):
        msg = make_message(payload={"client": (3, 0), "args": (1,)})
        decoded = decode_message(encode_message(msg))
        assert decoded.payload == {"client": [3, 0], "args": [1]}

    def test_size_preserved_exactly(self):
        msg = make_message()
        assert decode_message(encode_message(msg)).size == msg.size

    def test_length_prefix_matches_body(self):
        frame = encode_message(make_message())
        body_len = int.from_bytes(frame[:4], "big")
        assert len(frame) == 4 + body_len

    def test_truncated_frame_rejected(self):
        frame = encode_message(make_message())
        with pytest.raises(NetworkError):
            decode_message(frame[:-1])

    def test_oversized_payload_rejected(self):
        msg = make_message(payload={"blob": "x" * (MAX_FRAME + 1)})
        with pytest.raises(NetworkError):
            encode_message(msg)

    def test_unencodable_payload_rejected(self):
        with pytest.raises(NetworkError):
            encode_message(make_message(payload={"obj": object()}))


class TestStreamDecoder:
    def test_reassembles_across_arbitrary_chunks(self):
        messages = [make_message(payload={"n": n}) for n in range(5)]
        stream = b"".join(encode_message(msg) for msg in messages)
        decoder = StreamDecoder()
        out = []
        for i in range(0, len(stream), 3):
            out.extend(decoder.feed(stream[i:i + 3]))
        assert [msg.payload["n"] for msg in out] == [0, 1, 2, 3, 4]

    def test_multiple_messages_in_one_chunk(self):
        stream = encode_message(make_message(payload={"n": 1}))
        stream += encode_message(make_message(payload={"n": 2}))
        out = StreamDecoder().feed(stream)
        assert [msg.payload["n"] for msg in out] == [1, 2]
