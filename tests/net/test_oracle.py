"""Tests for the oracle: stream replay determinism and checker rigour.

A convergence checker that cannot fail is worthless, so half of these tests
tamper with a (synthetic) collected state — a lost write, a duplicated
write, reordered client writes, diverged replicas — and require
:func:`check_convergence` to reject each corruption.
"""

from __future__ import annotations

import copy

import pytest

from repro.net.harness import RealClusterConfig
from repro.net.oracle import (check_convergence, churn_victims,
                              expected_issued_writes)


def config(**overrides):
    fields = dict(scenario="counter-farm", num_nodes=3, num_shards=2,
                  clients_per_node=1, seed=13)
    fields.update(overrides)
    return RealClusterConfig(**fields)


def synthetic_result(expected, cfg):
    """Build the collected state of a perfectly converged run."""
    table = cfg.build_object_table()
    objects = {}
    for row in table:
        name = row["name"]
        log = []
        for client, issued in sorted(expected["per_client_writes"].items()):
            for cseq, (obj_name, op) in enumerate(issued, start=1):
                if obj_name == name:
                    log.append([client[0], client[1], cseq, op])
        objects[str(row["obj_id"])] = {
            "name": name,
            "policy": row["policy"],
            "shard": row["shard"],
            "primary": row["primary"],
            "version": len(log),
            "state": expected["final_states"][name],
            "applied_log": log,
        }
    nodes = {node: {"objects": copy.deepcopy(objects), "stats": {}}
             for node in cfg.survivor_nodes}
    return {
        "scenario": cfg.scenario,
        "reads": expected["reads"],
        "writes": expected["writes"],
        "killed": [],
        "nodes": nodes,
    }


class TestStreamReplay:
    def test_replay_is_deterministic(self):
        cfg = config()
        first = expected_issued_writes(cfg)
        second = expected_issued_writes(cfg)
        assert first["per_client_writes"] == second["per_client_writes"]
        assert first["final_states"] == second["final_states"]

    def test_seed_changes_the_streams(self):
        a = expected_issued_writes(config(seed=13))
        b = expected_issued_writes(config(seed=14))
        assert a["per_client_writes"] != b["per_client_writes"]

    def test_counter_totals_add_up(self):
        expected = expected_issued_writes(config())
        total = sum(state["value"]
                    for state in expected["final_states"].values())
        assert total == expected["writes"]

    def test_victims_host_no_clients(self):
        cfg = config(num_nodes=4, victims=(3,), kill_after=(0.2,))
        expected = expected_issued_writes(cfg)
        client_nodes = {client[0]
                        for client in expected["per_client_writes"]}
        assert 3 not in client_nodes

    def test_churn_victims_match_the_sim(self):
        assert churn_victims(4) == (3, 2)
        assert churn_victims(3) == (2,)
        assert churn_victims(2) == ()


class TestChecker:
    def setup_method(self):
        self.cfg = config()
        self.expected = expected_issued_writes(self.cfg)
        self.result = synthetic_result(self.expected, self.cfg)

    def first_written_object(self):
        node = sorted(self.result["nodes"])[0]
        objects = self.result["nodes"][node]["objects"]
        for obj_id in sorted(objects, key=int):
            if objects[obj_id]["applied_log"]:
                return node, obj_id
        raise RuntimeError("no object saw writes")

    def test_accepts_a_converged_run(self):
        facts = check_convergence(self.result, self.expected)
        assert facts["counter_total"] == self.expected["writes"]

    def test_rejects_diverged_replica(self):
        node, obj_id = self.first_written_object()
        state = self.result["nodes"][node]["objects"][obj_id]["state"]
        state["value"] += 1
        with pytest.raises(AssertionError, match="disagree|converged"):
            check_convergence(self.result, self.expected)

    def test_rejects_a_lost_write(self):
        # Drop the same tail write from every replica: agreement still
        # holds, so only the exactly-once/state checks can catch it.
        _, obj_id = self.first_written_object()
        for reply in self.result["nodes"].values():
            row = reply["objects"][obj_id]
            row["applied_log"] = row["applied_log"][:-1]
            row["version"] = max(0, row["version"] - 1)
        with pytest.raises(AssertionError):
            check_convergence(self.result, self.expected)

    def test_rejects_a_duplicated_write(self):
        _, obj_id = self.first_written_object()
        for reply in self.result["nodes"].values():
            row = reply["objects"][obj_id]
            row["applied_log"] = row["applied_log"] + [row["applied_log"][-1]]
        with pytest.raises(AssertionError, match="order|twice"):
            check_convergence(self.result, self.expected)

    def test_rejects_reordered_client_writes(self):
        # Find an object where some client applied two writes; swap them.
        for reply in self.result["nodes"].values():
            for row in reply["objects"].values():
                log = row["applied_log"]
                by_client = {}
                for index, entry in enumerate(log):
                    by_client.setdefault(tuple(entry[:2]), []).append(index)
                pair = next((indices for indices in by_client.values()
                             if len(indices) >= 2), None)
                if pair is not None:
                    i, j = pair[0], pair[1]
                    log[i], log[j] = log[j], log[i]
        with pytest.raises(AssertionError, match="order"):
            check_convergence(self.result, self.expected)

    def test_rejects_missing_requests(self):
        self.result["writes"] -= 1
        with pytest.raises(AssertionError, match="write count"):
            check_convergence(self.result, self.expected)

    def test_rejects_sim_oracle_mismatch(self):
        sim = {
            "writes": self.expected["writes"] + 1,
            "per_object_writes": dict(self.expected["per_object_writes"]),
            "facts": {},
        }
        with pytest.raises(AssertionError, match="oracle mismatch"):
            check_convergence(self.result, self.expected, sim)


class TestSetupWritingScenariosRejected:
    def test_preloaded_catalog_is_rejected(self):
        from repro.errors import ConfigurationError

        cfg = config(scenario="read-mostly-catalog")
        with pytest.raises(ConfigurationError, match="creation arguments"):
            cfg.build_object_table()
