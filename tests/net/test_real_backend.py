"""Multi-process convergence tests: the tentpole's acceptance matrix.

Each test spawns one OS process per node (``repro.net.node_process``), runs
a scenario over real UDP sockets on loopback, waits for quiescence, and
checks the converged state against the deterministic stream replay — and,
where marked, against a full simulator run of the identical workload.  The
kill test SIGKILLs the primary-hosting victims mid-workload and requires
the takeover protocol to finish the run with exactly-once semantics intact.
"""

from __future__ import annotations

import pytest

from repro.net.oracle import churn_victims
from repro.net.runner import run_real_workload
from repro.net.runtime import RealTimings
from repro.workloads.scenarios import ScenarioRegistry

#: CI-friendly timers: fast retry/sync cycles, but a failure detector slow
#: enough that a briefly descheduled child is not declared dead under load.
CI_TIMINGS = RealTimings(heartbeat_interval=0.05, dead_after=0.5,
                         retry_interval=0.05, sync_interval=0.05,
                         gap_delay=0.03, submit_deadline=60.0)


def small_spec(scenario: str, ops: int = 30):
    return ScenarioRegistry.get(scenario).default_spec().with_overrides(
        ops_per_client=ops)


class TestConvergenceMatrix:
    """Three scenario kinds x two seeds, checked against the stream replay
    (itself cross-checked against the simulator in ``test_sim_oracle``)."""

    @pytest.mark.parametrize("scenario,seed", [
        ("counter-farm", 1), ("counter-farm", 2),
        ("fifo-queue", 7), ("fifo-queue", 8),
        ("hotspot-shift", 3), ("hotspot-shift", 4),
    ])
    def test_converges(self, scenario, seed):
        report = run_real_workload(
            scenario=scenario, workload=small_spec(scenario),
            num_nodes=3, num_shards=2, seed=seed, timings=CI_TIMINGS)
        assert report.runtime == "real-sockets"
        if scenario == "hotspot-shift":
            # Trace-driven: the request count falls out of the arrival
            # trace (and run_real_workload already checked it against the
            # stream replay), not out of ops_per_client.
            assert report.total_ops > 0
        else:
            assert report.total_ops == 3 * 30
        assert report.elapsed > 0.0
        assert report.throughput > 0.0

    def test_sim_oracle_cross_check(self):
        # One full sim-vs-real comparison: the simulator runs the identical
        # workload and its per-object write counts and scenario facts must
        # match the real run's converged state.
        report = run_real_workload(
            scenario="counter-farm", workload=small_spec("counter-farm"),
            num_nodes=3, num_shards=2, seed=5, timings=CI_TIMINGS,
            sim_oracle=True)
        assert report.scenario_facts["counter_total"] >= 0

    def test_multiple_clients_per_node(self):
        report = run_real_workload(
            scenario="counter-farm", workload=small_spec("counter-farm", 15),
            num_nodes=3, num_shards=2, clients_per_node=2, seed=9,
            timings=CI_TIMINGS)
        assert report.num_clients == 6
        assert report.total_ops == 6 * 15


class TestPrimaryTakeover:
    def test_kill_mid_workload_converges(self):
        # Kill the (victim-parked) primaries mid-run: writes through the
        # dead primaries must block until takeover and then commit, and the
        # survivors must still agree with the simulator's crash run.
        num_nodes = 4
        victims = churn_victims(num_nodes)
        spec = small_spec("primary-churn", 120)
        report = run_real_workload(
            scenario="primary-churn", workload=spec, num_nodes=num_nodes,
            num_shards=2, seed=11, victims=victims,
            kill_after=tuple(0.15 + 0.15 * i for i in range(len(victims))),
            timings=CI_TIMINGS, sim_oracle=True)
        facts = report.scenario_facts
        assert facts["killed"] == sorted(victims)
        assert facts["takeovers"] > 0
        # Two survivors, 120 writes-or-reads each, none lost or duplicated.
        assert report.total_ops == 2 * 120
        assert facts["counter_total"] == report.writes
