"""Tests for the metrics and harness utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.config import ClusterConfig
from repro.errors import ReproError
from repro.harness.experiment import ScalingExperiment
from repro.harness.figures import render_speedup_figure
from repro.harness.sweeps import ParameterSweep
from repro.metrics.collectors import RunCollection, RunRecord
from repro.metrics.report import ascii_plot, format_table
from repro.metrics.speedup import SpeedupCurve, speedup_from_times
from repro.orca.builtin_objects import IntObject
from repro.orca.program import OrcaProgram


class TestSpeedupCurve:
    def test_basic_speedups(self):
        curve = SpeedupCurve({1: 10.0, 2: 5.0, 4: 2.5}, base_procs=1)
        assert curve.speedup(1) == pytest.approx(1.0)
        assert curve.speedup(2) == pytest.approx(2.0)
        assert curve.speedup(4) == pytest.approx(4.0)
        assert curve.efficiency(4) == pytest.approx(1.0)

    def test_baseline_other_than_one(self):
        curve = SpeedupCurve({2: 8.0, 4: 4.0}, base_procs=2)
        assert curve.speedup(2) == pytest.approx(2.0)
        assert curve.speedup(4) == pytest.approx(4.0)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ReproError):
            SpeedupCurve({2: 1.0}, base_procs=1)

    def test_non_positive_times_rejected(self):
        with pytest.raises(ReproError):
            SpeedupCurve({1: 0.0}, base_procs=1)

    def test_speedup_from_times_defaults_to_smallest(self):
        curve = speedup_from_times({4: 3.0, 2: 5.0})
        assert curve.base_procs == 2

    def test_as_rows(self):
        rows = SpeedupCurve({1: 4.0, 2: 2.0}, base_procs=1).as_rows()
        assert rows[0][0] == "1"
        assert rows[1][2] == "2.00"

    @given(st.dictionaries(st.integers(min_value=1, max_value=64),
                           st.floats(min_value=0.001, max_value=1e3,
                                     allow_nan=False, allow_infinity=False),
                           min_size=1, max_size=10))
    def test_speedup_at_baseline_equals_baseline(self, times):
        curve = speedup_from_times(times)
        assert curve.speedup(curve.base_procs) == pytest.approx(curve.base_procs)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "column"], [["1", "x"], ["22", "yy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "column" in lines[1]
        assert len(lines) == 5

    def test_ascii_plot_contains_markers_and_legend(self):
        text = ascii_plot({"measured": {1: 1.0, 4: 3.0}, "perfect": {1: 1.0, 4: 4.0}},
                          title="demo")
        assert "demo" in text
        assert "*" in text and "o" in text
        assert "measured" in text and "perfect" in text

    def test_ascii_plot_empty(self):
        assert ascii_plot({"s": {}}) == "(no data)"

    def test_render_speedup_figure(self):
        curve = SpeedupCurve({1: 8.0, 2: 4.0, 4: 2.0}, base_procs=1)
        text = render_speedup_figure("Fig X", curve)
        assert "Fig X" in text
        assert "speedup" in text
        assert "CPUs" in text


class TestRunCollection:
    def _records(self):
        return RunCollection([
            RunRecord("a", {"procs": 1, "variant": "x"}, 4.0),
            RunRecord("a", {"procs": 2, "variant": "x"}, 2.0),
            RunRecord("a", {"procs": 2, "variant": "y"}, 3.0),
        ])

    def test_filter(self):
        runs = self._records()
        assert len(runs.filter(variant="x")) == 2
        assert len(runs.filter(variant="x", procs=2)) == 1

    def test_times_by(self):
        runs = self._records().filter(variant="x")
        assert runs.times_by("procs") == {1: 4.0, 2: 2.0}

    def test_column(self):
        runs = self._records()
        assert runs.column("procs") == [1, 2, 2]


class TestScalingExperiment:
    def test_experiment_runs_program_per_processor_count(self):
        def main(proc):
            counter = proc.new_object(IntObject, 0)
            work_per_worker = 24_000 // proc.num_nodes  # fixed total work

            def worker(wproc, obj, worker_id=0):
                wproc.compute(work_per_worker)
                obj.add(1)

            proc.join_all(proc.fork_workers(worker, counter))
            return counter.read()

        def run(procs):
            return OrcaProgram(main, ClusterConfig(num_nodes=procs, seed=3)).run()

        experiment = ScalingExperiment("counter", run, [1, 2, 4])
        outcome = experiment.execute()
        assert outcome.curve.processor_counts == [1, 2, 4]
        assert not outcome.consistent_values()  # value == worker count here
        assert len(outcome.runs) == 3
        assert outcome.curve.speedup(4) > 1.0


class TestParameterSweep:
    def test_cartesian_product_and_rows(self):
        def measure(a, b):
            return {"sum": a + b}

        sweep = ParameterSweep("s", measure, {"a": [1, 2], "b": [10, 20]})
        points = sweep.execute()
        assert len(points) == 4
        rows = ParameterSweep.to_rows(points, ["a", "b"], ["sum"])
        assert ["1", "10", "11"] in rows
