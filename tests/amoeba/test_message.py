"""Tests for message construction and size estimation."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.amoeba.message import Message, estimate_size


def recursive_estimate(value):
    """The original recursive ``estimate_size`` the fast path must match."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (str, bytes, bytearray)):
        return max(1, len(value))
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(recursive_estimate(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(
            recursive_estimate(k) + recursive_estimate(v) for k, v in value.items()
        )
    marshal_size = getattr(value, "marshal_size", None)
    if callable(marshal_size):
        return int(marshal_size())
    return 64


class _Blob:
    def __init__(self, size):
        self._size = size

    def marshal_size(self):
        return self._size


class _Opaque:
    pass


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.binary(max_size=8),
    st.builds(bytearray, st.binary(max_size=6)),
    st.frozensets(st.integers(), max_size=4),
    st.builds(_Blob, st.integers(min_value=0, max_value=500)),
    st.builds(_Opaque),
)

#: Nested payloads mixing every branch: containers of scalars, dicts with
#: string keys (the cached header-shape path), dicts with non-string keys,
#: and custom marshal_size / opaque objects at any depth.
_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
        st.dictionaries(
            st.one_of(st.integers(), st.tuples(st.integers(), st.text(max_size=3))),
            children,
            max_size=3,
        ),
    ),
    max_leaves=25,
)


class TestEstimateSize:
    def test_scalars(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(7) == 8
        assert estimate_size(3.14) == 8

    def test_strings_and_bytes(self):
        assert estimate_size("hello") == 5
        assert estimate_size(b"abc") == 3

    def test_containers_include_framing(self):
        assert estimate_size([1, 2, 3]) == 8 + 24
        assert estimate_size({"a": 1}) == 8 + 1 + 8

    def test_custom_marshal_size(self):
        class Blob:
            def marshal_size(self):
                return 1000

        assert estimate_size(Blob()) == 1000

    def test_unknown_objects_get_default(self):
        class Opaque:
            pass

        assert estimate_size(Opaque()) == 64

    @given(st.recursive(
        st.one_of(st.integers(), st.text(max_size=20), st.booleans(), st.none()),
        lambda children: st.lists(children, max_size=5),
        max_leaves=20,
    ))
    def test_size_is_always_positive(self, value):
        assert estimate_size(value) >= 1

    @given(_payloads)
    def test_fast_path_matches_recursive_reference(self, value):
        assert estimate_size(value) == recursive_estimate(value)

    def test_deeply_nested_payload_does_not_recurse(self):
        value = 7
        for _ in range(5000):  # far past the default recursion limit
            value = [value]
        assert estimate_size(value) == 5000 * 8 + 8

    def test_repeated_dict_shapes_stay_consistent(self):
        # Header-shaped dicts hit the keys-size cache; the answer must not
        # drift between the cold and cached lookups.
        payload = {"seq": 1, "origin": 2, "view": 3}
        first = estimate_size(payload)
        assert estimate_size(dict(payload)) == first
        assert first == recursive_estimate(payload)


class TestMessage:
    def test_size_estimated_when_omitted(self):
        msg = Message(src=0, dst=1, kind="x", payload="hello")
        assert msg.size == 5

    def test_explicit_size_respected(self):
        msg = Message(src=0, dst=1, kind="x", payload="hello", size=4000)
        assert msg.size == 4000

    def test_broadcast_flag(self):
        assert Message(src=0, dst=None, kind="x").is_broadcast
        assert not Message(src=0, dst=3, kind="x").is_broadcast

    def test_unique_ids(self):
        a = Message(src=0, dst=1, kind="x")
        b = Message(src=0, dst=1, kind="x")
        assert a.msg_id != b.msg_id

    def test_reply_to(self):
        request = Message(src=2, dst=5, kind="req", payload="hi")
        reply = request.reply_to("rep", payload="ok")
        assert reply.dst == 2
        assert reply.src == 5
        assert reply.headers["in_reply_to"] == request.msg_id

    def test_reply_echoing_payload_reuses_request_size(self):
        # A caller-supplied size (e.g. a simulated bulk read) must carry over
        # to a reply that echoes the same payload object, instead of being
        # re-estimated from the (much smaller) Python value.
        payload = ["chunk"]
        request = Message(src=2, dst=5, kind="req", payload=payload, size=4096)
        reply = request.reply_to("rep", payload=payload)
        assert reply.size == 4096

    def test_reply_with_new_payload_is_estimated_fresh(self):
        request = Message(src=2, dst=5, kind="req", payload="hi", size=4096)
        assert request.reply_to("rep", payload="okay").size == 4
        # ... and an explicit size always wins.
        assert request.reply_to("rep", payload="okay", size=9).size == 9

    def test_reply_with_none_payload_does_not_inherit_size(self):
        request = Message(src=2, dst=5, kind="req", payload=None, size=4096)
        assert request.reply_to("ack").size == 1
