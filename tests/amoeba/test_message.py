"""Tests for message construction and size estimation."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.amoeba.message import Message, estimate_size


class TestEstimateSize:
    def test_scalars(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(7) == 8
        assert estimate_size(3.14) == 8

    def test_strings_and_bytes(self):
        assert estimate_size("hello") == 5
        assert estimate_size(b"abc") == 3

    def test_containers_include_framing(self):
        assert estimate_size([1, 2, 3]) == 8 + 24
        assert estimate_size({"a": 1}) == 8 + 1 + 8

    def test_custom_marshal_size(self):
        class Blob:
            def marshal_size(self):
                return 1000

        assert estimate_size(Blob()) == 1000

    def test_unknown_objects_get_default(self):
        class Opaque:
            pass

        assert estimate_size(Opaque()) == 64

    @given(st.recursive(
        st.one_of(st.integers(), st.text(max_size=20), st.booleans(), st.none()),
        lambda children: st.lists(children, max_size=5),
        max_leaves=20,
    ))
    def test_size_is_always_positive(self, value):
        assert estimate_size(value) >= 1


class TestMessage:
    def test_size_estimated_when_omitted(self):
        msg = Message(src=0, dst=1, kind="x", payload="hello")
        assert msg.size == 5

    def test_explicit_size_respected(self):
        msg = Message(src=0, dst=1, kind="x", payload="hello", size=4000)
        assert msg.size == 4000

    def test_broadcast_flag(self):
        assert Message(src=0, dst=None, kind="x").is_broadcast
        assert not Message(src=0, dst=3, kind="x").is_broadcast

    def test_unique_ids(self):
        a = Message(src=0, dst=1, kind="x")
        b = Message(src=0, dst=1, kind="x")
        assert a.msg_id != b.msg_id

    def test_reply_to(self):
        request = Message(src=2, dst=5, kind="req", payload="hi")
        reply = request.reply_to("rep", payload="ok")
        assert reply.dst == 2
        assert reply.src == 5
        assert reply.headers["in_reply_to"] == request.msg_id
