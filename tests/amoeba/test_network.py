"""Tests for the simulated interconnects and NICs."""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.amoeba.message import Message
from repro.config import ClusterConfig, CostModel, NetworkParams
from repro.errors import NetworkError, RoutingError


def make_cluster(n=3, network_type="ethernet", **net_overrides):
    cost_model = CostModel().with_overrides(network=net_overrides) if net_overrides else CostModel()
    config = ClusterConfig(num_nodes=n, cost_model=cost_model, seed=5)
    return Cluster(config, network_type=network_type)


class TestEthernetNetwork:
    def test_unicast_delivery(self):
        with make_cluster(3) as cluster:
            received = []
            cluster.node(1).register_handler("test", lambda m: received.append(m.payload))
            cluster.node(0).send(cluster.node(0).make_message(1, "test", payload="hi"))
            cluster.run()
            assert received == ["hi"]

    def test_broadcast_reaches_all_but_sender(self):
        with make_cluster(4) as cluster:
            received = []
            for node in cluster.nodes:
                node.register_handler(
                    "test", lambda m, nid=node.node_id: received.append(nid)
                )
            cluster.node(2).send(cluster.node(2).make_message(None, "test", payload="x"))
            cluster.run()
            assert sorted(received) == [0, 1, 3]

    def test_delivery_takes_latency_plus_transmit_time(self):
        with make_cluster(2) as cluster:
            params = cluster.cost_model.network
            arrival = []
            cluster.node(1).register_handler("t", lambda m: arrival.append(cluster.sim.now))
            msg = cluster.node(0).make_message(1, "t", payload=None, size=1000)
            cluster.node(0).send(msg)
            cluster.run()
            expected = params.transmit_time(1000) + params.latency
            assert arrival[0] == pytest.approx(expected)

    def test_shared_medium_serialises_transmissions(self):
        with make_cluster(3) as cluster:
            params = cluster.cost_model.network
            arrivals = []
            cluster.node(2).register_handler("t", lambda m: arrivals.append(cluster.sim.now))
            cluster.node(0).send(cluster.node(0).make_message(2, "t", size=1000))
            cluster.node(1).send(cluster.node(1).make_message(2, "t", size=1000))
            cluster.run()
            t_packet = params.transmit_time(1000)
            assert arrivals[0] == pytest.approx(t_packet + params.latency)
            assert arrivals[1] == pytest.approx(2 * t_packet + params.latency)

    def test_large_message_fragmented(self):
        with make_cluster(2) as cluster:
            received = []
            cluster.node(1).register_handler("t", lambda m: received.append(m.size))
            cluster.node(0).send(cluster.node(0).make_message(1, "t", size=4000))
            cluster.run()
            assert received == [4000]
            assert cluster.network.stats.packets_sent == 3
            assert cluster.node(1).nic.stats.interrupts == 3
            assert cluster.node(1).nic.stats.messages_received == 1

    def test_unknown_destination_raises(self):
        with make_cluster(2) as cluster:
            with pytest.raises(RoutingError):
                cluster.node(0).send(cluster.node(0).make_message(9, "t"))

    def test_packet_loss_drops_messages(self):
        with make_cluster(2, loss_rate=0.5) as cluster:
            received = []
            cluster.node(1).register_handler("t", lambda m: received.append(1))
            for _ in range(200):
                cluster.node(0).send(cluster.node(0).make_message(1, "t", size=10))
            cluster.run()
            assert 0 < len(received) < 200
            assert cluster.network.stats.packets_dropped > 0

    def test_crashed_node_discards_traffic(self):
        with make_cluster(2) as cluster:
            received = []
            cluster.node(1).register_handler("t", lambda m: received.append(1))
            cluster.node(1).crash()
            cluster.node(0).send(cluster.node(0).make_message(1, "t"))
            cluster.run()
            assert received == []
            assert cluster.node(1).nic.stats.packets_discarded == 1

    def test_utilization_reported(self):
        with make_cluster(2) as cluster:
            cluster.node(1).register_handler("t", lambda m: None)
            cluster.node(0).send(cluster.node(0).make_message(1, "t", size=1000))
            cluster.run()
            assert 0.0 < cluster.network.utilization() <= 1.0

    def test_stats_by_kind(self):
        with make_cluster(2) as cluster:
            cluster.node(1).register_handler("a", lambda m: None)
            cluster.node(1).register_handler("b", lambda m: None)
            cluster.node(0).send(cluster.node(0).make_message(1, "a", size=10))
            cluster.node(0).send(cluster.node(0).make_message(1, "a", size=10))
            cluster.node(0).send(cluster.node(0).make_message(1, "b", size=10))
            cluster.run()
            assert cluster.network.stats.by_kind == {"a": 2, "b": 1}


class TestSwitchedNetwork:
    def test_no_hardware_broadcast(self):
        with make_cluster(3, network_type="switched") as cluster:
            with pytest.raises(NetworkError):
                cluster.node(0).send(cluster.node(0).make_message(None, "t"))

    def test_unicast_works(self):
        with make_cluster(3, network_type="switched") as cluster:
            received = []
            cluster.node(2).register_handler("t", lambda m: received.append(m.payload))
            cluster.node(0).send(cluster.node(0).make_message(2, "t", payload=42))
            cluster.run()
            assert received == [42]

    def test_different_sources_do_not_contend(self):
        with make_cluster(3, network_type="switched") as cluster:
            params = cluster.cost_model.network
            arrivals = []
            cluster.node(2).register_handler("t", lambda m: arrivals.append(cluster.sim.now))
            cluster.node(0).send(cluster.node(0).make_message(2, "t", size=1000))
            cluster.node(1).send(cluster.node(1).make_message(2, "t", size=1000))
            cluster.run()
            expected = params.transmit_time(1000) + params.latency
            assert arrivals == [pytest.approx(expected), pytest.approx(expected)]


class TestNodeOverhead:
    def test_interrupt_cost_charged_to_receiver(self):
        with make_cluster(2) as cluster:
            cpu = cluster.cost_model.cpu
            cluster.node(1).register_handler("t", lambda m: None)
            cluster.node(0).send(cluster.node(0).make_message(1, "t", size=10))
            cluster.run()
            expected = cpu.interrupt_cost + cpu.protocol_cost
            assert cluster.node(1).stats.overhead_time == pytest.approx(expected)
            assert cluster.node(1).pending_overhead == pytest.approx(expected)

    def test_drain_overhead_clears_pending(self):
        with make_cluster(2) as cluster:
            cluster.node(1).register_handler("t", lambda m: None)
            cluster.node(0).send(cluster.node(0).make_message(1, "t", size=10))
            cluster.run()
            drained = cluster.node(1).drain_overhead()
            assert drained > 0
            assert cluster.node(1).pending_overhead == 0.0

    def test_duplicate_handler_registration_rejected(self):
        with make_cluster(2) as cluster:
            cluster.node(0).register_handler("t", lambda m: None)
            with pytest.raises(NetworkError):
                cluster.node(0).register_handler("t", lambda m: None)

    def test_unhandled_kind_raises(self):
        with make_cluster(2) as cluster:
            cluster.node(0).send(cluster.node(0).make_message(1, "nobody"))
            with pytest.raises(NetworkError):
                cluster.run()
