"""Failure injection for the sharded broadcast runtime.

The point of multi-group sharding is fault *containment* as much as
throughput: a sequencer crash in one shard must not stall traffic on other
shards, and each group must run its election independently.  These tests
crash shard sequencers mid-traffic and assert exactly that, plus replica
agreement among the survivors.
"""

from __future__ import annotations

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.rts.broadcast_rts import BroadcastRts
from repro.rts.object_model import ObjectSpec, operation
from repro.rts.sharding import ExplicitPlacement


class Counter(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, delta):
        self.value += delta
        return self.value


def make_sharded_rts(num_nodes, num_shards, seed=13, placement=None,
                     batching=None):
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    rts = BroadcastRts(cluster, num_shards=num_shards, placement=placement,
                       batching=batching)
    return cluster, rts


class TestShardPlacementOfSequencers:
    def test_shard_sequencers_spread_round_robin_over_nodes(self):
        cluster, rts = make_sharded_rts(4, 4)
        with cluster:
            assert rts.router.sequencer_nodes() == [0, 1, 2, 3]

    def test_more_shards_than_nodes_wraps_around(self):
        cluster, rts = make_sharded_rts(3, 5)
        with cluster:
            assert rts.router.sequencer_nodes() == [0, 1, 2, 0, 1]


class TestShardFaultContainment:
    def test_sequencer_crash_in_one_shard_does_not_stall_others(self):
        """Crash shard 1's sequencer: shard-0 traffic flows undisturbed
        (no election, finishes first) while shard 1 recovers by election."""
        placement = ExplicitPlacement(2, {"a": 0, "b": 1})
        cluster, rts = make_sharded_rts(4, 2, placement=placement)
        with cluster:
            handles = {}
            finish = {}

            def setup():
                proc = cluster.sim.current_process
                handles["a"] = rts.create_object(proc, Counter, (0,), name="a")
                handles["b"] = rts.create_object(proc, Counter, (0,), name="b")

            def writer(name, count):
                proc = cluster.sim.current_process
                for _ in range(count):
                    rts.invoke(proc, handles[name], "add", (1,))
                finish[name] = proc.local_time

            def crasher():
                proc = cluster.sim.current_process
                proc.hold(0.01)
                # Shard 1's sequencer seat is node 1.
                assert rts.router.group_for(1).sequencer_node_id == 1
                cluster.node(1).crash()

            cluster.node(0).kernel.spawn_thread(setup)
            cluster.run()
            cluster.node(2).kernel.spawn_thread(writer, "a", 20)
            cluster.node(3).kernel.spawn_thread(writer, "b", 20)
            cluster.node(0).kernel.spawn_thread(crasher)
            cluster.run()

            group_a = rts.router.group_for(0)
            group_b = rts.router.group_for(1)
            # Shard 0 never noticed: no election, no new sequencer.
            assert group_a.stats.elections == 0
            assert group_a.sequencer_node_id == 0
            # Shard 1 recovered through its own election.
            assert group_b.stats.elections >= 1
            assert group_b.sequencer_node_id != 1
            # The healthy shard finished long before the recovering one.
            assert finish["a"] < finish["b"]
            # Survivors agree on both objects, with no lost updates.
            for node in cluster.nodes:
                if not node.alive:
                    continue
                assert rts.manager(node.node_id).get(
                    handles["a"].obj_id).instance.value == 20
                assert rts.manager(node.node_id).get(
                    handles["b"].obj_id).instance.value == 20

    def test_elections_are_independent_per_group(self):
        """Crashing one node triggers elections only in the shards whose
        sequencer seat it held."""
        cluster, rts = make_sharded_rts(4, 4, seed=29)
        with cluster:
            handles = {}

            def setup():
                proc = cluster.sim.current_process
                for shard in range(4):
                    # HashPlacement by id assigns obj_id i+1 to shard i % 4.
                    handles[shard] = rts.create_object(
                        proc, Counter, (0,), name=f"c{shard}")

            def writers(node_id):
                proc = cluster.sim.current_process
                for _ in range(10):
                    for shard in range(4):
                        rts.invoke(proc, handles[shard], "add", (1,))

            def crasher():
                proc = cluster.sim.current_process
                proc.hold(0.01)
                cluster.node(2).crash()

            cluster.node(0).kernel.spawn_thread(setup)
            cluster.run()
            for shard, handle in handles.items():
                assert rts.shard_of(handle) == shard
            for node_id in (0, 1, 3):
                cluster.node(node_id).kernel.spawn_thread(writers, node_id)
            cluster.node(0).kernel.spawn_thread(crasher)
            cluster.run()

            elections = [rts.router.group_for(s).stats.elections
                         for s in range(4)]
            # Only shard 2 (seat: node 2) had to elect.
            assert elections[2] >= 1
            assert elections[0] == elections[1] == elections[3] == 0
            assert rts.router.group_for(2).sequencer_node_id != 2
            for shard, handle in handles.items():
                values = {
                    rts.manager(n.node_id).get(handle.obj_id).instance.value
                    for n in cluster.nodes if n.alive
                }
                assert values == {30}, (shard, values)

    def test_batched_writes_survive_a_shard_sequencer_crash(self):
        """A batch in flight to a crashing sequencer is retried, survives the
        election, and is applied exactly once everywhere."""
        placement = ExplicitPlacement(2, {"hot": 1})
        cluster, rts = make_sharded_rts(4, 2, seed=17, placement=placement,
                                        batching={"max_batch": 4})
        with cluster:
            handles = {}

            def setup():
                proc = cluster.sim.current_process
                handles["hot"] = rts.create_object(proc, Counter, (0,),
                                                   name="hot")

            def writer(node_id, count):
                proc = cluster.sim.current_process
                for _ in range(count):
                    rts.invoke(proc, handles["hot"], "add", (1,))

            def crasher():
                proc = cluster.sim.current_process
                proc.hold(0.005)
                cluster.node(1).crash()

            cluster.node(0).kernel.spawn_thread(setup)
            cluster.run()
            for node_id in (0, 2, 3):
                cluster.node(node_id).kernel.spawn_thread(writer, node_id, 15)
            cluster.node(0).kernel.spawn_thread(crasher)
            cluster.run()

            assert rts.router.group_for(1).stats.elections >= 1
            for node in cluster.nodes:
                if not node.alive:
                    continue
                assert rts.manager(node.node_id).get(
                    handles["hot"].obj_id).instance.value == 45
            stats = rts.router.shard_stats[1]
            assert stats.batches > 0
            assert stats.batched_ops == 45
