"""Tests for the Amoeba RPC layer."""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import RpcError, RpcPeerDeadError, RpcTimeoutError


@pytest.fixture
def cluster():
    with Cluster(ClusterConfig(num_nodes=3, seed=11)) as c:
        yield c


class TestRpcBasics:
    def test_round_trip(self, cluster):
        cluster.rpc_for(1).register_service("echo", lambda req: req.payload * 2)
        results = []

        def client():
            proc = cluster.sim.current_process
            results.append(cluster.rpc_for(0).call(proc, 1, "echo", payload=21))

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert results == [42]

    def test_rpc_takes_nonzero_virtual_time(self, cluster):
        cluster.rpc_for(1).register_service("noop", lambda req: None)
        times = []

        def client():
            proc = cluster.sim.current_process
            cluster.rpc_for(0).call(proc, 1, "noop")
            times.append(cluster.sim.now)

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert times[0] > 0.0

    def test_local_call_skips_network(self, cluster):
        cluster.rpc_for(0).register_service("local", lambda req: req.payload + 1)
        results = []

        def client():
            proc = cluster.sim.current_process
            results.append(cluster.rpc_for(0).call(proc, 0, "local", payload=1))

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert results == [2]
        assert cluster.network.stats.messages_sent == 0

    def test_unknown_service_raises_at_caller(self, cluster):
        errors = []

        def client():
            proc = cluster.sim.current_process
            try:
                cluster.rpc_for(0).call(proc, 1, "missing")
            except RpcError as exc:
                errors.append(str(exc))

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert errors and "missing" in errors[0]

    def test_handler_exception_propagates_to_caller(self, cluster):
        def bad_handler(req):
            raise ValueError("broken service")

        cluster.rpc_for(1).register_service("bad", bad_handler)
        errors = []

        def client():
            proc = cluster.sim.current_process
            try:
                cluster.rpc_for(0).call(proc, 1, "bad")
            except RpcError as exc:
                errors.append(str(exc))

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert errors and "broken service" in errors[0]

    def test_duplicate_service_rejected(self, cluster):
        cluster.rpc_for(1).register_service("dup", lambda req: None)
        with pytest.raises(RpcError):
            cluster.rpc_for(1).register_service("dup", lambda req: None)

    def test_call_to_crashed_server_fails_fast(self, cluster):
        """The failure detector fails a call to a known-dead server
        immediately (no timeout burned waiting on a reply that cannot
        come) — the primitive primary-failure recovery re-routes on."""
        cluster.rpc_for(1).register_service("echo", lambda req: req.payload)
        cluster.node(1).crash()
        errors = []

        def client():
            proc = cluster.sim.current_process
            try:
                cluster.rpc_for(0).call(proc, 1, "echo", payload=1, timeout=0.5)
            except RpcPeerDeadError:
                errors.append("peer-dead")

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert errors == ["peer-dead"]

    def test_pending_call_fails_when_server_crashes_mid_call(self, cluster):
        """A call already in flight when its server dies is woken with
        RpcPeerDeadError by the cluster's crash listener."""
        def black_hole(req):
            proc = cluster.sim.current_process
            proc.hold(10.0)
            return "too late"

        cluster.rpc_for(1).register_service("hole", black_hole,
                                            may_block=True)
        errors = []

        def client():
            proc = cluster.sim.current_process
            try:
                cluster.rpc_for(0).call(proc, 1, "hole", payload=1)
            except RpcPeerDeadError:
                errors.append("peer-dead")

        def crasher():
            proc = cluster.sim.current_process
            proc.hold(0.01)
            cluster.node(1).crash()

        cluster.node(0).kernel.spawn_thread(client)
        cluster.node(2).kernel.spawn_thread(crasher)
        cluster.run()
        assert errors == ["peer-dead"]

    def test_timeout_when_server_is_slow(self, cluster):
        """A live-but-slow server still triggers the classic timeout."""
        def slow(req):
            proc = cluster.sim.current_process
            proc.hold(2.0)
            return "late"

        cluster.rpc_for(1).register_service("slow", slow, may_block=True)
        errors = []

        def client():
            proc = cluster.sim.current_process
            try:
                cluster.rpc_for(0).call(proc, 1, "slow", payload=1,
                                        timeout=0.5)
            except RpcTimeoutError:
                errors.append("timeout")

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert errors == ["timeout"]

    def test_blocking_handler_can_use_primitives(self, cluster):
        def slow_handler(req):
            proc = cluster.sim.current_process
            proc.hold(0.25)
            return "slept"

        cluster.rpc_for(2).register_service("slow", slow_handler, may_block=True)
        results = []

        def client():
            proc = cluster.sim.current_process
            results.append(cluster.rpc_for(0).call(proc, 2, "slow"))
            results.append(cluster.sim.now)

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert results[0] == "slept"
        assert results[1] >= 0.25

    def test_concurrent_clients_all_served(self, cluster):
        cluster.rpc_for(2).register_service("add", lambda req: sum(req.payload))
        results = []

        def client(node_id, a, b):
            proc = cluster.sim.current_process
            results.append(cluster.rpc_for(node_id).call(proc, 2, "add", payload=[a, b]))

        cluster.node(0).kernel.spawn_thread(client, 0, 1, 2)
        cluster.node(1).kernel.spawn_thread(client, 1, 3, 4)
        cluster.run()
        assert sorted(results) == [3, 7]

    def test_call_counters(self, cluster):
        cluster.rpc_for(1).register_service("echo", lambda req: req.payload)

        def client():
            proc = cluster.sim.current_process
            for i in range(3):
                cluster.rpc_for(0).call(proc, 1, "echo", payload=i)

        cluster.node(0).kernel.spawn_thread(client)
        cluster.run()
        assert cluster.rpc_for(0).calls_made == 3
        assert cluster.rpc_for(1).calls_served == 3


class TestKernelFacilities:
    def test_spawn_thread_pins_node(self, cluster):
        seen = []

        def body():
            seen.append(cluster.sim.current_process.node.node_id)

        cluster.node(2).kernel.spawn_thread(body)
        cluster.run()
        assert seen == [2]

    def test_timer_fire_and_cancel(self, cluster):
        fired = []
        kernel = cluster.node(0).kernel
        kernel.set_timer(1.0, lambda: fired.append("a"))
        timer_b = kernel.set_timer(2.0, lambda: fired.append("b"))
        kernel.cancel_timer(timer_b)
        cluster.run()
        assert fired == ["a"]

    def test_timer_suppressed_on_crashed_node(self, cluster):
        fired = []
        kernel = cluster.node(0).kernel
        kernel.set_timer(1.0, lambda: fired.append("a"))
        cluster.node(0).crash()
        cluster.run()
        assert fired == []

    def test_segments_allocation_and_mapping(self, cluster):
        segs = cluster.node(0).kernel.segments
        seg = segs.allocate(1024, owner_thread="t1")
        segs.map(seg)
        seg.write("k", 99)
        assert seg.read("k") == 99
        segs.unmap(seg)
        with pytest.raises(Exception):
            seg.read("k")
        segs.free(seg)
        assert segs.used_bytes == 0

    def test_segment_capacity_enforced(self, cluster):
        from repro.amoeba.segments import SegmentManager

        mgr = SegmentManager(capacity_bytes=100)
        mgr.allocate(60)
        with pytest.raises(Exception):
            mgr.allocate(60)

    def test_double_free_rejected(self, cluster):
        segs = cluster.node(0).kernel.segments
        seg = segs.allocate(10)
        segs.free(seg)
        with pytest.raises(Exception):
            segs.free(seg)


class TestPorts:
    def test_ports_are_unique(self):
        from repro.amoeba.ports import new_port

        a = new_port("svc")
        b = new_port("svc")
        assert a.private != b.private
        assert a.public != b.public

    def test_capability_rights(self):
        from repro.amoeba.ports import Capability, new_port

        cap = Capability(new_port("obj"), obj_number=1)
        read_only = cap.restrict(Capability.RIGHT_READ)
        assert read_only.allows(Capability.RIGHT_READ)
        assert not read_only.allows(Capability.RIGHT_WRITE)
