"""Tests for the PB/BB totally-ordered reliable broadcast protocols."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.amoeba.broadcast.protocol import (
    KIND_BB_DATA,
    KIND_RETRANSMIT,
    MessageId,
    OrderingEngine,
)
from repro.amoeba.cluster import Cluster
from repro.config import BroadcastParams, ClusterConfig, CostModel
from repro.errors import BroadcastError


def make_cluster(n=4, seed=3, method="auto", loss_rate=0.0, network_type="ethernet"):
    cost_model = CostModel().with_overrides(
        network={"loss_rate": loss_rate},
        broadcast={"method": method},
    )
    return Cluster(ClusterConfig(num_nodes=n, cost_model=cost_model, seed=seed),
                   network_type=network_type)


def collect_deliveries(cluster):
    """Install recording delivery handlers; returns {node_id: [(seqno, payload)]}."""
    log = {node.node_id: [] for node in cluster.nodes}
    group = cluster.broadcast_group
    for node in cluster.nodes:
        group.set_delivery_handler(
            node.node_id,
            lambda d, nid=node.node_id: log[nid].append((d.seqno, d.payload)),
        )
    return log


class TestOrderingEngine:
    def test_in_order_delivery(self):
        engine = OrderingEngine()
        engine.offer(1, 0, MessageId(0, 1), "a", 10)
        engine.offer(2, 0, MessageId(0, 2), "b", 10)
        assert [d.payload for d in engine.pop_deliverable()] == ["a", "b"]

    def test_out_of_order_buffered(self):
        engine = OrderingEngine()
        engine.offer(2, 0, MessageId(0, 2), "b", 10)
        assert engine.pop_deliverable() == []
        assert engine.missing_seqnos() == [1]
        engine.offer(1, 0, MessageId(0, 1), "a", 10)
        assert [d.payload for d in engine.pop_deliverable()] == ["a", "b"]

    def test_duplicates_discarded(self):
        engine = OrderingEngine()
        engine.offer(1, 0, MessageId(0, 1), "a", 10)
        engine.pop_deliverable()
        engine.offer(1, 0, MessageId(0, 1), "a", 10)
        assert engine.pop_deliverable() == []
        assert engine.duplicates == 1

    def test_bb_data_then_accept(self):
        engine = OrderingEngine()
        engine.offer_bb_data(3, MessageId(3, 1), "x", 10)
        assert engine.pop_deliverable() == []
        assert engine.offer_accept(1, 3, MessageId(3, 1))
        assert [d.payload for d in engine.pop_deliverable()] == ["x"]

    def test_accept_before_data(self):
        engine = OrderingEngine()
        assert not engine.offer_accept(1, 3, MessageId(3, 1))
        assert engine.missing_seqnos() == [1]
        engine.offer_bb_data(3, MessageId(3, 1), "x", 10)
        assert [d.payload for d in engine.pop_deliverable()] == ["x"]

    @given(st.permutations(list(range(1, 11))))
    @settings(max_examples=50, deadline=None)
    def test_any_arrival_order_delivers_in_sequence(self, order):
        engine = OrderingEngine()
        delivered = []
        for seqno in order:
            engine.offer(seqno, 0, MessageId(0, seqno), f"m{seqno}", 8)
            delivered.extend(d.seqno for d in engine.pop_deliverable())
        assert delivered == list(range(1, 11))


class TestBroadcastGroup:
    def test_total_order_identical_on_all_nodes(self):
        with make_cluster(5) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group
            # Fire several broadcasts from different nodes at the same instant.
            for i, sender in enumerate([0, 1, 2, 3, 4, 1, 2]):
                group.broadcast_from(sender, payload=f"msg{i}", size=100)
            cluster.run()
            sequences = list(log.values())
            assert all(seq == sequences[0] for seq in sequences)
            assert len(sequences[0]) == 7
            assert [s for s, _ in sequences[0]] == list(range(1, 8))

    def test_sender_also_delivers_its_own_message(self):
        with make_cluster(3) as cluster:
            log = collect_deliveries(cluster)
            cluster.broadcast_group.broadcast_from(2, payload="hello", size=50)
            cluster.run()
            assert log[2] == [(1, "hello")]

    def test_on_delivered_callback_receives_seqno(self):
        with make_cluster(3) as cluster:
            collect_deliveries(cluster)
            seqnos = []
            cluster.broadcast_group.broadcast_from(
                1, payload="x", size=10, on_delivered=seqnos.append
            )
            cluster.run()
            assert seqnos == [1]

    def test_short_messages_use_pb_long_use_bb(self):
        with make_cluster(3) as cluster:
            collect_deliveries(cluster)
            group = cluster.broadcast_group
            group.broadcast_from(1, payload="short", size=100)
            group.broadcast_from(1, payload="long", size=5000)
            cluster.run()
            assert group.stats.pb_sends == 1
            assert group.stats.bb_sends == 1

    def test_forced_method_overrides_size_rule(self):
        with make_cluster(3, method="bb") as cluster:
            collect_deliveries(cluster)
            group = cluster.broadcast_group
            group.broadcast_from(1, payload="short", size=10)
            cluster.run()
            assert group.stats.bb_sends == 1
            assert group.stats.pb_sends == 0

    def test_pb_bandwidth_is_roughly_double_bb(self):
        """PB puts the full message on the wire twice; BB only once (plus Accept)."""
        size = 1000

        def wire_bytes(method):
            with make_cluster(4, method=method) as cluster:
                collect_deliveries(cluster)
                for _ in range(10):
                    cluster.broadcast_group.broadcast_from(1, payload="p", size=size)
                cluster.run()
                return cluster.network.stats.wire_bytes

        pb_bytes = wire_bytes("pb")
        bb_bytes = wire_bytes("bb")
        assert pb_bytes > 1.6 * bb_bytes

    def test_bb_interrupts_receivers_twice(self):
        """Each non-sequencer, non-sender machine takes 1 interrupt under PB, 2 under BB."""
        def interrupts_at_node_3(method):
            with make_cluster(4, method=method) as cluster:
                collect_deliveries(cluster)
                for _ in range(10):
                    cluster.broadcast_group.broadcast_from(1, payload="p", size=500)
                cluster.run()
                return cluster.node(3).nic.stats.interrupts

        assert interrupts_at_node_3("pb") == 10
        assert interrupts_at_node_3("bb") == 20

    def test_sequencer_can_broadcast_too(self):
        with make_cluster(3) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group
            assert group.sequencer_node_id == 0
            group.broadcast_from(0, payload="from-seq", size=10)
            cluster.run()
            assert log[1] == [(1, "from-seq")]
            assert log[0] == [(1, "from-seq")]

    def test_requires_broadcast_network(self):
        with make_cluster(3, network_type="switched") as cluster:
            with pytest.raises(BroadcastError):
                _ = cluster.broadcast_group

    def test_many_interleaved_broadcasts_from_processes(self):
        with make_cluster(4) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group

            def sender(node_id, count):
                proc = cluster.sim.current_process
                for i in range(count):
                    group.broadcast_from(node_id, payload=(node_id, i), size=200)
                    proc.hold(0.001)

            for node in cluster.nodes:
                node.kernel.spawn_thread(sender, node.node_id, 5)
            cluster.run()
            sequences = list(log.values())
            assert all(seq == sequences[0] for seq in sequences)
            assert len(sequences[0]) == 20


class TestLossRecovery:
    def test_total_order_survives_packet_loss(self):
        with make_cluster(4, loss_rate=0.15, seed=9) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group
            for i in range(30):
                group.broadcast_from(i % 4, payload=i, size=300)
            cluster.run()
            sequences = list(log.values())
            # Every live node must deliver the same 30 messages in the same order.
            assert all(seq == sequences[0] for seq in sequences)
            assert len(sequences[0]) == 30
            payloads = [p for _, p in sequences[0]]
            assert sorted(payloads) == list(range(30))

    def test_loss_recovery_uses_retransmissions(self):
        with make_cluster(4, loss_rate=0.25, seed=21) as cluster:
            collect_deliveries(cluster)
            group = cluster.broadcast_group
            for i in range(20):
                group.broadcast_from(1, payload=i, size=300)
            cluster.run()
            assert group.stats.retransmit_requests > 0
            assert group.delivered_counts() == {0: 20, 1: 20, 2: 20, 3: 20}


class TestFailureInjection:
    """crash_sequencer() and loss_rate combined: the worst-case recovery path."""

    def test_crash_sequencer_reports_and_kills_the_node(self):
        with make_cluster(4) as cluster:
            collect_deliveries(cluster)
            group = cluster.broadcast_group
            assert group.sequencer_node_id == 0
            crashed = group.crash_sequencer()
            assert crashed == 0
            assert not cluster.node(0).alive

    def test_total_order_survives_crash_under_packet_loss(self):
        """Sequencer crash and packet loss at the same time: survivors still
        deliver an identical, gap-free sequence."""
        with make_cluster(5, loss_rate=0.1, seed=17) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group

            def scenario():
                proc = cluster.sim.current_process
                for i in range(8):
                    group.broadcast_from((i % 4) + 1, payload=("pre", i), size=200)
                proc.hold(0.5)
                group.crash_sequencer()
                for i in range(8):
                    group.broadcast_from((i % 4) + 1, payload=("post", i), size=200)
                proc.hold(4.0)

            cluster.node(1).kernel.spawn_thread(scenario)
            cluster.run()
            assert group.sequencer_node_id != 0
            surviving = [nid for nid in log if nid != 0]
            reference = log[surviving[0]]
            for nid in surviving:
                assert log[nid] == reference
            payloads = [p for _, p in reference]
            assert sorted(p for p in payloads if p[0] == "pre") == \
                [("pre", i) for i in range(8)]
            assert sorted(p for p in payloads if p[0] == "post") == \
                [("post", i) for i in range(8)]
            # The delivered seqnos are gap-free at every survivor.
            seqnos = [s for s, _ in reference]
            assert seqnos == list(range(1, len(seqnos) + 1))

    def test_history_buffer_serves_lost_messages(self):
        """Under loss, lagging members recover older messages point-to-point
        from the sequencer's bounded history buffer.

        Broadcasting from the sequencer's own node removes the sender-retry
        healing path (its copy is delivered by local loop-back), so members
        that lose the data broadcast can only catch up through gap
        retransmit requests answered from the history buffer.
        """
        with make_cluster(4, loss_rate=0.3, seed=29) as cluster:
            collect_deliveries(cluster)
            group = cluster.broadcast_group
            assert group.sequencer_node_id == 0
            for i in range(25):
                group.broadcast_from(0, payload=i, size=400)
            cluster.run()
            assert group.delivered_counts() == {0: 25, 1: 25, 2: 25, 3: 25}
            # Recovery went through the history buffer, not just luck.
            assert group.sequencer.retransmissions > 0
            history = group.sequencer.history_entries()
            assert history, "sequencer retained no history"
            assert max(history) == 25

    def test_new_sequencer_continues_numbering_without_reuse(self):
        """After a crash election, the new sequencer must not hand out
        sequence numbers the old one already assigned."""
        with make_cluster(4) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group

            def scenario():
                proc = cluster.sim.current_process
                for i in range(6):
                    group.broadcast_from(1, payload=("old", i), size=50)
                proc.hold(0.3)
                group.crash_sequencer()
                group.broadcast_from(2, payload=("new", 0), size=50)
                proc.hold(2.0)

            cluster.node(1).kernel.spawn_thread(scenario)
            cluster.run()
            surviving = [nid for nid in log if nid != 0]
            for nid in surviving:
                seqnos = [s for s, _ in log[nid]]
                assert len(seqnos) == len(set(seqnos)), "sequence number reused"
                assert log[nid][-1][1] == ("new", 0)
                assert log[nid][-1][0] > 6


class TestCrossMemberRetransmission:
    """Any member can answer gap requests, not just the sequencer."""

    def test_message_the_election_winner_never_saw_is_recovered(self):
        """Crash + targeted loss: a message only one surviving member holds.

        BB data from node 2 is dropped at nodes 1 and 3, so only the
        sequencer (node 0) and the sender hold it; everyone saw the Accept,
        so everyone knows sequence number 4 exists.  Node 0 then crashes
        before answering any gap request.  The election winner is node 1 —
        best-informed by seqno, yet it never saw the data.  Only node 2 can
        serve it, which requires the broadcast gap-request fallback.
        """
        cost_model = CostModel().with_overrides(broadcast={"method": "bb"})
        cluster = Cluster(ClusterConfig(num_nodes=4, seed=11,
                                        cost_model=cost_model))
        with cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group
            bb_kind = group.wire_kind(KIND_BB_DATA)

            def drop_bb_from_2(packet):
                return packet.message.kind == bb_kind and packet.message.src == 2

            def scenario():
                proc = cluster.sim.current_process
                for i in range(3):
                    group.broadcast_from(3, payload=("pre", i), size=100)
                proc.hold(0.1)
                for nid in (1, 3):
                    cluster.node(nid).nic.drop_filter = drop_bb_from_2
                group.broadcast_from(2, payload=("lost", 4), size=100)
                proc.hold(0.002)  # Accept is out; gap requests still pending
                group.crash_sequencer()
                for nid in (1, 3):
                    cluster.node(nid).nic.drop_filter = None
                # An unsequenceable send forces retries and an election.
                group.broadcast_from(3, payload=("post", 5), size=100)
                proc.hold(3.0)

            cluster.node(3).kernel.spawn_thread(scenario)
            cluster.run()
            # Node 1 won despite never receiving the data for seqno 4.
            assert group.sequencer_node_id == 1
            assert group.stats.peer_retransmissions > 0
            reference = [(1, ("pre", 0)), (2, ("pre", 1)), (3, ("pre", 2)),
                         (4, ("lost", 4)), (5, ("post", 5))]
            for nid in (1, 2, 3):
                assert log[nid] == reference

    def test_survivors_converge_under_crash_and_heavy_loss(self):
        """Randomized stress: sequencer crash plus 20% packet loss still
        yields an identical, gap-free sequence at every survivor."""
        with make_cluster(5, loss_rate=0.2, seed=33) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group

            def scenario():
                proc = cluster.sim.current_process
                for i in range(10):
                    group.broadcast_from((i % 4) + 1, payload=("pre", i), size=250)
                proc.hold(0.4)
                group.crash_sequencer()
                for i in range(10):
                    group.broadcast_from((i % 4) + 1, payload=("post", i), size=250)
                proc.hold(6.0)

            cluster.node(1).kernel.spawn_thread(scenario)
            cluster.run()
            surviving = [nid for nid in log if nid != 0]
            reference = log[surviving[0]]
            for nid in surviving:
                assert log[nid] == reference
            payloads = [p for _, p in reference]
            assert sorted(p for p in payloads if p[0] == "pre") == \
                [("pre", i) for i in range(10)]
            assert sorted(p for p in payloads if p[0] == "post") == \
                [("post", i) for i in range(10)]
            seqnos = [s for s, _ in reference]
            assert seqnos == list(range(1, len(seqnos) + 1))

    def test_gap_requests_fall_back_to_broadcast_after_unicast_fails(self):
        """The first gap request is a unicast to the sequencer; once it goes
        unanswered the member broadcasts, so peers can serve the message."""
        cost_model = CostModel().with_overrides(broadcast={"method": "bb"})
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=5,
                                        cost_model=cost_model))
        with cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group
            bb_kind = group.wire_kind(KIND_BB_DATA)
            retx_kind = group.wire_kind(KIND_RETRANSMIT)

            def drop_bb_from_1(packet):
                return packet.message.kind == bb_kind and packet.message.src == 1

            # Node 0 (the sequencer) refuses to serve retransmissions, as if
            # its history were lost; node 2 must recover through a peer.
            def drop_retx(packet):
                return packet.message.kind == retx_kind and packet.message.src == 0

            def scenario():
                proc = cluster.sim.current_process
                cluster.node(2).nic.drop_filter = drop_bb_from_1
                group.broadcast_from(1, payload="only-via-peer", size=100)
                proc.hold(0.001)
                cluster.node(2).nic.drop_filter = drop_retx
                proc.hold(2.0)

            cluster.node(1).kernel.spawn_thread(scenario)
            cluster.run()
            assert group.stats.peer_retransmissions > 0
            assert log[2] == [(1, "only-via-peer")]


class TestSequencerServiceModel:
    """The opt-in queueing model of the sequencer's ordering capacity."""

    def test_sequencing_cost_paces_ordered_broadcasts(self):
        cost_model = CostModel().with_overrides(cpu={"sequencing_cost": 0.001})
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=4,
                                        cost_model=cost_model))
        with cluster:
            times = []
            group = cluster.broadcast_group
            group.set_delivery_handler(
                2, lambda d: times.append(cluster.sim.now))
            for i in range(5):
                group.broadcast_from(1, payload=i, size=50)
            cluster.run()
            assert len(times) == 5
            gaps = [b - a for a, b in zip(times, times[1:])]
            # One message per service interval, not an instantaneous burst.
            assert all(gap >= 0.0009 for gap in gaps), gaps
            assert group.sequencer.max_queue_depth >= 2

    def test_default_cost_model_keeps_sequencing_instantaneous(self):
        with make_cluster(3, seed=4) as cluster:
            collect_deliveries(cluster)
            group = cluster.broadcast_group
            for i in range(5):
                group.broadcast_from(1, payload=i, size=50)
            cluster.run()
            # No service queue ever forms in the calibrated default regime.
            assert group.sequencer.max_queue_depth == 0
            assert group.delivered_counts()[2] == 5


class TestSequencerElection:
    def test_new_sequencer_elected_after_crash(self):
        with make_cluster(4) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group

            def scenario():
                proc = cluster.sim.current_process
                group.broadcast_from(1, payload="before", size=10)
                proc.hold(0.2)
                group.crash_sequencer()
                # This send has no sequencer to order it; the retry path
                # must elect a new sequencer and then deliver it.
                group.broadcast_from(1, payload="after", size=10)
                proc.hold(2.0)

            cluster.node(1).kernel.spawn_thread(scenario)
            cluster.run()
            assert group.sequencer_node_id != 0
            surviving = [nid for nid in log if nid != 0]
            for nid in surviving:
                payloads = [p for _, p in log[nid]]
                assert payloads == ["before", "after"]

    def test_order_preserved_across_election(self):
        with make_cluster(5) as cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group

            def scenario():
                proc = cluster.sim.current_process
                for i in range(5):
                    group.broadcast_from(2, payload=("pre", i), size=10)
                proc.hold(0.2)
                group.crash_sequencer()
                for i in range(5):
                    group.broadcast_from(3, payload=("post", i), size=10)
                proc.hold(2.0)

            cluster.node(2).kernel.spawn_thread(scenario)
            cluster.run()
            surviving = [nid for nid in log if nid != 0]
            reference = log[surviving[0]]
            for nid in surviving:
                assert log[nid] == reference
            labels = [p[0] for _, p in reference]
            assert labels == ["pre"] * 5 + ["post"] * 5


class TestRejoinedMembersAndGapRecovery:
    """A recovered member's history died with it: until a higher layer
    completes its catch-up it must neither be designated to answer gap
    requests nor answer them — a zombie designee would stall every
    requester for a salvo and could only reply with nothing."""

    def test_wiped_member_is_never_the_designated_gap_responder(self):
        with make_cluster(4, seed=7) as cluster:
            collect_deliveries(cluster)
            group = cluster.broadcast_group
            for i in range(5):
                group.broadcast_from(1, payload=i, size=100)
            cluster.run()
            cluster.node(3).crash()
            cluster.node(3).recover()
            member = group.member(3)
            assert member.synced is False
            assert member.lookup_entry(3) is None  # history wiped
            # Whatever the seqno or retry salvo, the rotation must never
            # land on the zombie — and even if a request reached it, the
            # answer path bows out.
            for seqno in range(1, 8):
                for salvo in range(6):
                    assert not member._gap_responder(seqno, salvo)
            before = group.stats.peer_retransmissions
            member._answer_gap_request(requester=1, seqno=3)
            assert group.stats.peer_retransmissions == before

    def test_loss_recovery_converges_around_a_rejoining_member(self):
        """The end-to-end regression: with a wiped recovered member in the
        group, a peer that lost a message (and gets no help from the
        sequencer) still recovers promptly through a *synced* peer."""
        cost_model = CostModel().with_overrides(broadcast={"method": "bb"})
        cluster = Cluster(ClusterConfig(num_nodes=4, seed=5,
                                        cost_model=cost_model))
        with cluster:
            log = collect_deliveries(cluster)
            group = cluster.broadcast_group
            bb_kind = group.wire_kind(KIND_BB_DATA)
            retx_kind = group.wire_kind(KIND_RETRANSMIT)

            def drop_bb_from_1(packet):
                return (packet.message.kind == bb_kind
                        and packet.message.src == 1)

            # The sequencer (node 0) refuses to serve retransmissions, as
            # if its history were lost; node 2 must recover via a peer —
            # and node 3, freshly recovered with wiped history, must not
            # be the one the rotation waits on.
            def drop_retx(packet):
                return (packet.message.kind == retx_kind
                        and packet.message.src == 0)

            def scenario():
                proc = cluster.sim.current_process
                for i in range(5):
                    group.broadcast_from(1, payload=("pre", i), size=100)
                proc.hold(0.1)
                cluster.node(3).crash()
                cluster.node(3).recover()
                assert group.member(3).synced is False
                cluster.node(2).nic.drop_filter = drop_bb_from_1
                group.broadcast_from(1, payload="only-via-peer", size=100)
                proc.hold(0.001)
                cluster.node(2).nic.drop_filter = drop_retx
                proc.hold(2.0)

            cluster.node(1).kernel.spawn_thread(scenario)
            cluster.run()
            assert group.stats.peer_retransmissions > 0
            assert log[2][-1] == (6, "only-via-peer")
            assert len(log[2]) == 6
            # The zombie stayed out of it: still unsynced, and its wiped
            # engine (expecting seqno 1 again) delivered nothing new.
            assert group.member(3).synced is False
            assert log[3] == log[2][:5]
