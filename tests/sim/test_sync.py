"""Tests for simulation synchronization primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Barrier, SimCondition, SimLock, SimSemaphore


class TestSimLock:
    def test_mutual_exclusion(self, sim):
        lock = SimLock(sim)
        log = []

        def worker(name):
            proc = sim.current_process
            with lock:
                log.append(f"{name}-in")
                proc.hold(1.0)
                log.append(f"{name}-out")

        sim.spawn(worker, "a")
        sim.spawn(worker, "b")
        sim.run()
        assert log == ["a-in", "a-out", "b-in", "b-out"]

    def test_fifo_handoff(self, sim):
        lock = SimLock(sim)
        order = []

        def holder():
            with lock:
                sim.current_process.hold(5.0)

        def waiter(name, arrive):
            proc = sim.current_process
            proc.hold(arrive)
            with lock:
                order.append(name)

        sim.spawn(holder)
        sim.spawn(waiter, "first", 1.0)
        sim.spawn(waiter, "second", 2.0)
        sim.spawn(waiter, "third", 3.0)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_by_non_owner_rejected(self, sim):
        lock = SimLock(sim)

        def bad():
            lock.release()

        sim.spawn(bad)
        with pytest.raises(Exception):
            sim.run()

    def test_reacquire_rejected(self, sim):
        lock = SimLock(sim)

        def bad():
            lock.acquire()
            lock.acquire()

        sim.spawn(bad)
        with pytest.raises(Exception):
            sim.run()

    def test_outside_process_rejected(self, sim):
        lock = SimLock(sim)
        with pytest.raises(SimulationError):
            lock.acquire()


class TestSimCondition:
    def test_wait_notify(self, sim):
        lock = SimLock(sim)
        cond = SimCondition(lock)
        log = []
        state = {"ready": False}

        def consumer():
            with lock:
                cond.wait_for(lambda: state["ready"])
                log.append(("consumed", sim.now))

        def producer():
            proc = sim.current_process
            proc.hold(3.0)
            with lock:
                state["ready"] = True
                cond.notify()

        sim.spawn(consumer)
        sim.spawn(producer)
        sim.run()
        assert log == [("consumed", 3.0)]

    def test_notify_all(self, sim):
        lock = SimLock(sim)
        cond = SimCondition(lock)
        woken = []
        state = {"go": False}

        def waiter(name):
            with lock:
                cond.wait_for(lambda: state["go"])
                woken.append(name)

        def signaler():
            sim.current_process.hold(1.0)
            with lock:
                state["go"] = True
                cond.notify_all()

        for i in range(3):
            sim.spawn(waiter, i)
        sim.spawn(signaler)
        sim.run()
        assert sorted(woken) == [0, 1, 2]

    def test_wait_without_lock_rejected(self, sim):
        lock = SimLock(sim)
        cond = SimCondition(lock)

        def bad():
            cond.wait()

        sim.spawn(bad)
        with pytest.raises(Exception):
            sim.run()


class TestSimSemaphore:
    def test_acquire_release(self, sim):
        sem = SimSemaphore(sim, value=1)
        log = []

        def worker(name):
            sem.acquire()
            log.append((name, sim.now))
            sim.current_process.hold(2.0)
            sem.release()

        sim.spawn(worker, "a")
        sim.spawn(worker, "b")
        sim.run()
        assert log == [("a", 0.0), ("b", 2.0)]

    def test_initial_value_counts(self, sim):
        sem = SimSemaphore(sim, value=3)
        done = []

        def worker(i):
            sem.acquire()
            done.append(i)

        for i in range(3):
            sim.spawn(worker, i)
        sim.run()
        assert len(done) == 3
        assert sem.value == 0

    def test_negative_initial_value_rejected(self, sim):
        with pytest.raises(SimulationError):
            SimSemaphore(sim, value=-1)

    def test_release_before_acquire(self, sim):
        sem = SimSemaphore(sim, value=0)
        log = []

        def producer():
            sem.release(2)

        def consumer():
            sim.current_process.hold(1.0)
            sem.acquire()
            sem.acquire()
            log.append("got-both")

        sim.spawn(producer)
        sim.spawn(consumer)
        sim.run()
        assert log == ["got-both"]


class TestBarrier:
    def test_all_parties_released_together(self, sim):
        barrier = Barrier(sim, parties=3)
        release_times = []

        def worker(delay):
            proc = sim.current_process
            proc.hold(delay)
            barrier.wait()
            release_times.append(sim.now)

        sim.spawn(worker, 1.0)
        sim.spawn(worker, 2.0)
        sim.spawn(worker, 5.0)
        sim.run()
        assert release_times == [5.0, 5.0, 5.0]

    def test_barrier_is_reusable(self, sim):
        barrier = Barrier(sim, parties=2)
        generations = []

        def worker():
            generations.append(barrier.wait())
            generations.append(barrier.wait())

        sim.spawn(worker)
        sim.spawn(worker)
        sim.run()
        assert sorted(generations) == [0, 0, 1, 1]

    def test_invalid_parties(self, sim):
        with pytest.raises(SimulationError):
            Barrier(sim, parties=0)


class TestFifoResource:
    def test_serialises_use(self, sim):
        from repro.sim import FifoResource

        resource = FifoResource(sim, capacity=1)
        completions = []
        resource.use(2.0, lambda: completions.append(sim.now))
        resource.use(3.0, lambda: completions.append(sim.now))
        sim.run()
        assert completions == [2.0, 5.0]

    def test_capacity_two_overlaps(self, sim):
        from repro.sim import FifoResource

        resource = FifoResource(sim, capacity=2)
        completions = []
        resource.use(2.0, lambda: completions.append(sim.now))
        resource.use(3.0, lambda: completions.append(sim.now))
        sim.run()
        assert completions == [2.0, 3.0]

    def test_utilization(self, sim):
        from repro.sim import FifoResource

        resource = FifoResource(sim, capacity=1)
        resource.use(2.0)
        sim.schedule(8.0, lambda: None)  # extend the run to t=8
        sim.run()
        assert resource.utilization() == pytest.approx(0.25)

    def test_release_when_idle_rejected(self, sim):
        from repro.sim import FifoResource

        resource = FifoResource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()
