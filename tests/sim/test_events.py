"""Unit tests for the event queue."""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


def make_event(queue: EventQueue, time: float) -> Event:
    return Event(time, queue.next_seq(), lambda: None)


class ReferenceQueue:
    """The one-stable-heap queue the three-structure design must match."""

    def __init__(self) -> None:
        self._heap = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, event.seq, event))

    def _skip_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)

    def pop_next(self):
        self._skip_cancelled()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def peek_time(self):
        self._skip_cancelled()
        return self._heap[0][0] if self._heap else None


class TestEventQueue:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_pop_from_empty_raises(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.pop()

    def test_pop_returns_earliest(self):
        queue = EventQueue()
        late = make_event(queue, 5.0)
        early = make_event(queue, 1.0)
        queue.push(late)
        queue.push(early)
        assert queue.pop() is early
        assert queue.pop() is late

    def test_fifo_order_for_equal_times(self):
        queue = EventQueue()
        events = [make_event(queue, 1.0) for _ in range(10)]
        for event in events:
            queue.push(event)
        popped = [queue.pop() for _ in range(10)]
        assert popped == events

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        first = make_event(queue, 1.0)
        second = make_event(queue, 2.0)
        queue.push(first)
        queue.push(second)
        first.cancel()
        queue.note_cancelled()
        assert len(queue) == 1
        assert queue.pop() is second

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = make_event(queue, 1.0)
        second = make_event(queue, 2.0)
        queue.push(first)
        queue.push(second)
        first.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 2.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(make_event(queue, 1.0))
        queue.clear()
        assert not queue

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    def test_pop_order_is_sorted_and_stable(self, times):
        queue = EventQueue()
        events = []
        for t in times:
            event = make_event(queue, t)
            events.append(event)
            queue.push(event)
        popped = [queue.pop() for _ in range(len(events))]
        # Times must come out non-decreasing.
        popped_times = [e.time for e in popped]
        assert popped_times == sorted(popped_times)
        # Equal times must preserve insertion order (stability).
        expected = sorted(events, key=lambda e: (e.time, e.seq))
        assert popped == expected


class TestEqualTimeOrderAcrossStructures:
    def test_now_bucket_does_not_jump_older_wheel_entries(self):
        queue = EventQueue()
        t = 1e-4
        first = make_event(queue, t)
        second = make_event(queue, t)
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first  # advances the queue's clock to t
        third = make_event(queue, t)  # lands in the O(1) now bucket
        queue.push(third)
        assert queue.pop() is second  # older seq, buffered elsewhere, wins
        assert queue.pop() is third


class TestCompaction:
    def test_cancel_heavy_load_compacts_buffers(self):
        queue = EventQueue()
        events = []
        for i in range(200):
            event = make_event(queue, 1.0 + i * 1e-3)
            events.append(event)
            queue.push(event)
        assert queue.buffered == 200
        for event in events[:150]:
            event.cancel()
            queue.note_cancelled()
        # Compaction triggers at the 101st cancel (cancelled > live): the
        # structures shrink to the 99 entries still buffered at that point,
        # and the 49 cancels after it stay under the retrigger threshold.
        assert len(queue) == 50
        assert queue.buffered == 99
        assert [queue.pop() for _ in range(50)] == events[150:]
        assert not queue
        assert queue.buffered == 0


#: A time grid mixing near ties (wheel-slot granularity), sub-horizon
#: floats, and far timestamps (heap fallback) so pushes exercise every
#: internal structure and collide on equal timestamps often.
_push_times = st.one_of(
    st.integers(min_value=0, max_value=80).map(lambda i: i * 1.7e-5),
    st.floats(min_value=0, max_value=0.02, allow_nan=False),
    st.integers(min_value=0, max_value=30).map(lambda i: i * 0.31),
)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _push_times),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("peek"), st.just(0)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
    ),
    max_size=200,
)


class TestEventQueueMatchesReference:
    @given(_operations)
    def test_interleaved_ops_match_single_stable_heap(self, operations):
        queue = EventQueue()
        reference = ReferenceQueue()
        in_queue = []  # pushed, not yet popped or cancelled
        for op, arg in operations:
            if op == "push":
                event = Event(float(arg), queue.next_seq(), lambda: None)
                queue.push(event)
                reference.push(event)
                in_queue.append(event)
            elif op == "pop":
                popped = queue.pop_next()
                assert popped is reference.pop_next()
                if popped is not None:
                    in_queue.remove(popped)
            elif op == "peek":
                assert queue.peek_time() == reference.peek_time()
            elif in_queue:  # cancel a still-queued event
                event = in_queue.pop(arg % len(in_queue))
                event.cancel()
                queue.note_cancelled()
        # Drain both: every remaining live event must come out in the same
        # order, regardless of which internal structure buffered it.
        while True:
            mine = queue.pop_next()
            assert mine is reference.pop_next()
            if mine is None:
                break
        assert len(queue) == 0
        assert queue.buffered == 0


class TestEvent:
    def test_fire_invokes_callback(self):
        calls = []
        event = Event(0.0, 0, lambda x: calls.append(x), args=(42,))
        event.fire()
        assert calls == [42]
        assert event.fired

    def test_cancelled_event_does_not_fire(self):
        calls = []
        event = Event(0.0, 0, lambda: calls.append(1))
        event.cancel()
        event.fire()
        assert calls == []
        assert not event.fired

    def test_pending_property(self):
        event = Event(0.0, 0, lambda: None)
        assert event.pending
        event.fire()
        assert not event.pending
