"""Unit tests for the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


def make_event(queue: EventQueue, time: float) -> Event:
    return Event(time, queue.next_seq(), lambda: None)


class TestEventQueue:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_pop_from_empty_raises(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.pop()

    def test_pop_returns_earliest(self):
        queue = EventQueue()
        late = make_event(queue, 5.0)
        early = make_event(queue, 1.0)
        queue.push(late)
        queue.push(early)
        assert queue.pop() is early
        assert queue.pop() is late

    def test_fifo_order_for_equal_times(self):
        queue = EventQueue()
        events = [make_event(queue, 1.0) for _ in range(10)]
        for event in events:
            queue.push(event)
        popped = [queue.pop() for _ in range(10)]
        assert popped == events

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        first = make_event(queue, 1.0)
        second = make_event(queue, 2.0)
        queue.push(first)
        queue.push(second)
        first.cancel()
        queue.note_cancelled()
        assert len(queue) == 1
        assert queue.pop() is second

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = make_event(queue, 1.0)
        second = make_event(queue, 2.0)
        queue.push(first)
        queue.push(second)
        first.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 2.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(make_event(queue, 1.0))
        queue.clear()
        assert not queue

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    def test_pop_order_is_sorted_and_stable(self, times):
        queue = EventQueue()
        events = []
        for t in times:
            event = make_event(queue, t)
            events.append(event)
            queue.push(event)
        popped = [queue.pop() for _ in range(len(events))]
        # Times must come out non-decreasing.
        popped_times = [e.time for e in popped]
        assert popped_times == sorted(popped_times)
        # Equal times must preserve insertion order (stability).
        expected = sorted(events, key=lambda e: (e.time, e.seq))
        assert popped == expected


class TestEvent:
    def test_fire_invokes_callback(self):
        calls = []
        event = Event(0.0, 0, lambda x: calls.append(x), args=(42,))
        event.fire()
        assert calls == [42]
        assert event.fired

    def test_cancelled_event_does_not_fire(self):
        calls = []
        event = Event(0.0, 0, lambda: calls.append(1))
        event.cancel()
        event.fire()
        assert calls == []
        assert not event.fired

    def test_pending_property(self):
        event = Event(0.0, 0, lambda: None)
        assert event.pending
        event.fire()
        assert not event.pending
