"""Unit tests for the simulator run loop and scheduling API."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, ProcessError, SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_equal_time_events_fire_in_schedule_order(self, sim):
        order = []
        for i in range(20):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(20))

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_before_now_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancel_prevents_firing(self, sim):
        calls = []
        event = sim.schedule(1.0, lambda: calls.append(1))
        sim.cancel(event)
        sim.run()
        assert calls == []

    def test_run_until_stops_clock(self, sim):
        calls = []
        sim.schedule(1.0, lambda: calls.append(1))
        sim.schedule(10.0, lambda: calls.append(2))
        sim.run(until=5.0)
        assert calls == [1]
        assert sim.now == 5.0
        sim.run()
        assert calls == [1, 2]

    def test_run_max_events(self, sim):
        calls = []
        for i in range(10):
            sim.schedule(float(i), calls.append, i)
        sim.run(max_events=3)
        assert calls == [0, 1, 2]

    def test_events_scheduled_during_run_are_processed(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestProcesses:
    def test_process_runs_and_returns_result(self, sim):
        def body(proc):
            proc.hold(2.0)
            return "done"

        proc = sim.spawn(lambda: body(proc_holder[0]))
        proc_holder = [proc]
        sim.run()
        assert proc.finished
        assert proc.result == "done"
        assert sim.now == 2.0

    def test_spawn_passes_arguments(self, sim):
        results = []

        def body(a, b, c=0):
            results.append(a + b + c)

        sim.spawn(body, 1, 2, c=3)
        sim.run()
        assert results == [6]

    def test_hold_advances_virtual_time(self, sim):
        times = []

        def body():
            proc = sim.current_process
            proc.hold(1.5)
            times.append(sim.now)
            proc.hold(2.5)
            times.append(sim.now)

        sim.spawn(body)
        sim.run()
        assert times == [1.5, 4.0]

    def test_compute_is_lazy_until_flush(self, sim):
        observed = []

        def body():
            proc = sim.current_process
            proc.compute(100, unit_time=0.01)
            observed.append(sim.now)           # global clock not yet advanced
            observed.append(proc.local_time)   # but local time reflects the work
            proc.flush()
            observed.append(sim.now)

        sim.spawn(body)
        sim.run()
        assert observed[0] == 0.0
        assert observed[1] == pytest.approx(1.0)
        assert observed[2] == pytest.approx(1.0)

    def test_two_processes_interleave_in_virtual_time(self, sim):
        log = []

        def body(name, step):
            proc = sim.current_process
            for _ in range(3):
                proc.hold(step)
                log.append((name, sim.now))

        sim.spawn(body, "fast", 1.0)
        sim.spawn(body, "slow", 2.0)
        sim.run()
        assert log == [
            ("fast", 1.0),
            ("slow", 2.0),
            ("fast", 2.0),
            ("fast", 3.0),
            ("slow", 4.0),
            ("slow", 6.0),
        ]

    def test_process_exception_propagates(self, sim):
        def body():
            raise ValueError("boom")

        sim.spawn(body)
        with pytest.raises(ProcessError, match="boom"):
            sim.run()

    def test_join_returns_result(self, sim):
        results = []

        def child():
            sim.current_process.hold(3.0)
            return 99

        def parent():
            proc = sim.current_process
            child_proc = sim.spawn(child)
            results.append(proc.join(child_proc))
            results.append(sim.now)

        sim.spawn(parent)
        sim.run()
        assert results == [99, 3.0]

    def test_join_already_finished_process(self, sim):
        results = []

        def child():
            return 7

        def parent():
            proc = sim.current_process
            child_proc = sim.spawn(child)
            proc.hold(10.0)
            results.append(proc.join(child_proc))

        sim.spawn(parent)
        sim.run()
        assert results == [7]

    def test_suspend_and_wake(self, sim):
        log = []

        def sleeper():
            proc = sim.current_process
            value = proc.suspend()
            log.append((value, sim.now))

        sleeper_proc = sim.spawn(sleeper)
        sim.schedule(5.0, lambda: sleeper_proc.wake("hello"))
        sim.run()
        assert log == [("hello", 5.0)]

    def test_deadlock_detection(self, sim):
        def stuck():
            sim.current_process.suspend()

        sim.spawn(stuck)
        with pytest.raises(DeadlockError):
            sim.run()

    def test_daemon_processes_do_not_trigger_deadlock(self, sim):
        def stuck():
            sim.current_process.suspend()

        sim.spawn(stuck, daemon=True)
        sim.run()  # should not raise

    def test_shutdown_kills_blocked_processes(self):
        with Simulator() as sim:
            def stuck():
                sim.current_process.suspend()

            proc = sim.spawn(stuck, daemon=True)
            sim.run()
            assert proc.state == "blocked"
        assert proc.state == "killed"

    def test_run_until_complete_raises_for_live_processes(self, sim):
        def stuck():
            sim.current_process.suspend()

        proc = sim.spawn(stuck, daemon=True)
        with pytest.raises(DeadlockError):
            sim.run_until_complete([proc])

    def test_on_completion_callback(self, sim):
        seen = []

        def body():
            sim.current_process.hold(1.0)
            return 5

        proc = sim.spawn(body)
        proc.on_completion(lambda p: seen.append(p.result))
        sim.run()
        assert seen == [5]

    def test_determinism_across_runs(self):
        """The same program produces an identical event interleaving every run."""

        def run_once():
            log = []
            with Simulator(seed=3) as sim:
                def body(name, step, count):
                    proc = sim.current_process
                    for i in range(count):
                        proc.hold(step)
                        log.append((name, round(sim.now, 9), i))

                sim.spawn(body, "a", 0.3, 5)
                sim.spawn(body, "b", 0.5, 4)
                sim.spawn(body, "c", 0.2, 6)
                sim.run()
            return log

        assert run_once() == run_once()


class TestRng:
    def test_streams_are_independent_and_reproducible(self):
        sim1 = Simulator(seed=99)
        sim2 = Simulator(seed=99)
        a1 = [sim1.rng.stream("a").random() for _ in range(5)]
        # Interleave another stream in sim2 before drawing from "a".
        [sim2.rng.stream("b").random() for _ in range(5)]
        a2 = [sim2.rng.stream("a").random() for _ in range(5)]
        assert a1 == a2

    def test_different_seeds_give_different_streams(self):
        sim1 = Simulator(seed=1)
        sim2 = Simulator(seed=2)
        assert sim1.rng.stream("x").random() != sim2.rng.stream("x").random()

    def test_reset_restores_streams(self):
        sim = Simulator(seed=5)
        first = [sim.rng.stream("x").random() for _ in range(3)]
        sim.rng.reset()
        second = [sim.rng.stream("x").random() for _ in range(3)]
        assert first == second
