"""Tests for the comparison baselines (central server, Ivy-style DSM)."""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.baselines.central_server import CentralServerRts
from repro.baselines.ivy_dsm import IvyDsm, IvyObjectRuntime, run_ivy_workload
from repro.errors import ProcessError
from repro.config import ClusterConfig
from repro.orca.builtin_objects import IntObject
from repro.orca.process import OrcaProcess
from repro.orca.program import OrcaProgram


def counter_main(proc, read_fraction=0.9, ops=30):
    shared = proc.new_object(IntObject, 0)

    def worker(wproc, obj, worker_id=0):
        state = worker_id * 31 + 7
        for _ in range(ops):
            wproc.compute(100)
            state = (state * 1103515245 + 12345) % 2**31
            if (state % 100) / 100.0 < read_fraction:
                obj.read()
            else:
                obj.add(1)

    proc.join_all(proc.fork_workers(worker, shared))
    return shared.read()


class TestCentralServer:
    def _run(self, read_fraction):
        program = OrcaProgram(counter_main, ClusterConfig(num_nodes=6, seed=4), rts="p2p")
        program._build_runtime = lambda cluster: CentralServerRts(cluster)  # type: ignore[method-assign]
        return program.run(read_fraction)

    def test_computes_correct_value(self):
        result = self._run(0.0)
        assert result.value == 6 * 30

    def test_never_replicates(self):
        program = OrcaProgram(counter_main, ClusterConfig(num_nodes=6, seed=4), rts="p2p")
        program._build_runtime = lambda cluster: CentralServerRts(cluster)  # type: ignore[method-assign]
        result = program.run(0.9, keep_cluster=True)
        runtime = program.runtime
        try:
            assert result.value >= 0
            assert runtime.stats.replicas_created == 1  # just the primary copy
            # All reads from other machines went remote.
            assert runtime.stats.remote_reads > 0
        finally:
            program.cluster.shutdown()

    def test_slower_than_replication_for_read_mostly(self):
        central = self._run(0.95)
        replicated = OrcaProgram(counter_main, ClusterConfig(num_nodes=6, seed=4),
                                 rts="broadcast").run(0.95)
        assert replicated.elapsed < central.elapsed


class TestIvyDsm:
    def test_read_write_round_trip(self):
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=2))
        try:
            dsm = IvyDsm(cluster)
            observed = []

            def writer():
                proc = cluster.sim.current_process
                dsm.write(proc, 1, "k", 41)
                dsm.write(proc, 1, "k", 42)

            def reader():
                proc = cluster.sim.current_process
                proc.hold(0.1)
                observed.append(dsm.read(proc, 2, "k"))

            cluster.node(1).kernel.spawn_thread(writer)
            cluster.node(2).kernel.spawn_thread(reader)
            cluster.run()
            assert observed == [42]
            assert dsm.write_faults >= 1
            assert dsm.read_faults >= 1
        finally:
            cluster.shutdown()

    def test_writes_invalidate_other_copies(self):
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=2))
        try:
            dsm = IvyDsm(cluster)
            log = []

            def scenario():
                proc = cluster.sim.current_process
                dsm.read(proc, 1, "k")          # node 1 gets a read copy
                dsm.write(proc, 1, "k", 5)      # node 1 becomes the writer
                proc.hold(0.05)
                log.append(dsm.read(proc, 1, "k"))

            def other():
                proc = cluster.sim.current_process
                proc.hold(0.01)
                dsm.read(proc, 2, "k")          # node 2 caches a copy
                proc.hold(0.05)
                dsm.write(proc, 2, "k", 9)      # invalidates node 1's copy

            cluster.node(1).kernel.spawn_thread(scenario)
            cluster.node(2).kernel.spawn_thread(other)
            cluster.run()
            assert dsm.invalidations >= 1
        finally:
            cluster.shutdown()

    def test_workload_wrapper_returns_positive_time(self):
        elapsed = run_ivy_workload(num_nodes=4, ops_per_worker=10, read_fraction=0.8)
        assert elapsed > 0


class TestIvyObjectRuntime:
    def test_remote_reads_counted_on_page_faults(self):
        """A read without a valid local copy is a remote (faulting) access."""
        with Cluster(ClusterConfig(num_nodes=3, seed=4)) as cluster:
            rts = IvyObjectRuntime(cluster)
            observed = []

            def scenario():
                proc = cluster.sim.current_process
                handle = rts.create_object(proc, IntObject, (5,))
                observed.append(rts.invoke(proc, handle, "read"))  # faults
                observed.append(rts.invoke(proc, handle, "read"))  # cached

            cluster.node(1).kernel.spawn_thread(scenario)
            cluster.run()
            assert observed == [5, 5]
            assert rts.stats.remote_reads == 1
            assert rts.stats.local_reads == 1

    def test_failed_write_operation_does_not_wedge_the_page(self):
        """An operation raising mid-write must release the page transfer so
        other nodes can still fault it in afterwards."""
        with Cluster(ClusterConfig(num_nodes=3, seed=4)) as cluster:
            rts = IvyObjectRuntime(cluster)
            handles = {}

            def creator():
                proc = cluster.sim.current_process
                handles["h"] = rts.create_object(proc, IntObject, (0,))

            def bad_writer():
                proc = cluster.sim.current_process
                proc.hold(0.01)
                # Missing required argument -> TypeError inside the operation.
                rts.invoke(proc, handles["h"], "assign")

            def good_writer():
                proc = cluster.sim.current_process
                proc.hold(0.05)
                rts.invoke(proc, handles["h"], "add", (3,))

            cluster.node(0).kernel.spawn_thread(creator)
            cluster.node(1).kernel.spawn_thread(bad_writer)
            cluster.node(2).kernel.spawn_thread(good_writer)
            with pytest.raises(ProcessError):
                cluster.run()
            # The failed writer released the transfer: the good writer's
            # fault went through and its update took effect.
            reader = {}

            def check():
                proc = cluster.sim.current_process
                proc.hold(0.5)  # after the good writer's update
                reader["value"] = rts.invoke(proc, handles["h"], "read")

            cluster.node(0).kernel.spawn_thread(check)
            cluster.run()
            assert reader["value"] == 3
