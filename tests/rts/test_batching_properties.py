"""Property-based tests for write batching (and its interplay with sharding).

The batching layer must be *behaviour-preserving*: for any interleaving of
clients, running the same workload batched and unbatched must produce the
same final object states, apply every client's writes in that client's issue
order (per-node FIFO), and keep every machine's replica identical.  These
properties are checked over randomized workloads driven by seeded rngs, so
every failure reproduces deterministically.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.rts.broadcast_rts import BroadcastRts
from repro.rts.consistency import ConsistencyChecker
from repro.rts.object_model import ObjectSpec, operation

NUM_COUNTERS = 4


class Counter(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, delta):
        self.value += delta
        return self.value


class AppendLog(ObjectSpec):
    """An order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)

    @operation(write=False)
    def snapshot(self):
        return list(self.items)


def run_workload(seed, batching, num_shards, num_nodes=4, clients_per_node=2,
                 ops_per_client=12):
    """Run one randomized multi-writer workload; returns its observable state.

    The per-client request streams depend only on ``seed`` (not on batching
    or sharding), so two runs with different runtime configuration issue
    exactly the same operations.
    """
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    rts = BroadcastRts(cluster, num_shards=num_shards, batching=batching,
                       record_history=True)
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        handles["log"] = rts.create_object(proc, AppendLog, name="log")
        for i in range(NUM_COUNTERS):
            handles[i] = rts.create_object(proc, Counter, (0,), name=f"c{i}")

    def client(node_id, client_id):
        proc = cluster.sim.current_process
        rng = random.Random(f"{seed}/{node_id}/{client_id}")
        for k in range(ops_per_client):
            if rng.random() < 0.5:
                rts.invoke(proc, handles[rng.randrange(NUM_COUNTERS)],
                           "add", (1,))
            else:
                rts.invoke(proc, handles["log"], "append",
                           ((node_id, client_id, k),))
            if rng.random() < 0.3:
                proc.hold(rng.random() * 0.002)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    for node in cluster.nodes:
        for client_id in range(clients_per_node):
            node.kernel.spawn_thread(client, node.node_id, client_id)
    cluster.run()

    counters = {}
    logs = {}
    for node in cluster.nodes:
        manager = rts.manager(node.node_id)
        counters[node.node_id] = tuple(
            manager.get(handles[i].obj_id).instance.value
            for i in range(NUM_COUNTERS))
        logs[node.node_id] = tuple(
            tuple(item) for item in manager.get(handles["log"].obj_id).instance.items)
    shard_stats = {s: stats.summary()
                   for s, stats in rts.router.shard_stats.items()}
    result = {
        "counters": counters,
        "logs": logs,
        "history": rts.history,
        "shard_stats": shard_stats,
    }
    cluster.shutdown()
    return result


def assert_replicas_agree(result):
    counters = list(result["counters"].values())
    logs = list(result["logs"].values())
    assert all(c == counters[0] for c in counters), result["counters"]
    assert all(log == logs[0] for log in logs), result["logs"]


def assert_per_client_fifo(result, ops_per_client):
    """Every client's appends appear in the applied log in issue order."""
    log = next(iter(result["logs"].values()))
    per_client = {}
    for node_id, client_id, k in log:
        per_client.setdefault((node_id, client_id), []).append(k)
    for client, ks in per_client.items():
        assert ks == sorted(ks), (
            f"client {client} writes applied out of issue order: {ks}")
        assert len(ks) == len(set(ks)), f"client {client} write applied twice"


class TestBatchingProperties:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           num_shards=st.sampled_from([1, 2, 3]),
           max_batch=st.sampled_from([2, 4, 8]),
           flush_delay=st.sampled_from([0.0, 0.0005]))
    def test_batched_equals_unbatched(self, seed, num_shards, max_batch,
                                      flush_delay):
        """Random seeds: interleave batched and unbatched runs; the final
        object states and per-client write order must match."""
        batched = run_workload(seed, {"max_batch": max_batch,
                                      "flush_delay": flush_delay}, num_shards)
        unbatched = run_workload(seed, None, num_shards)

        for result in (batched, unbatched):
            assert_replicas_agree(result)
            assert_per_client_fifo(result, ops_per_client=12)
            ConsistencyChecker(result["history"]).check_write_order_agreement()

        # Order-insensitive state is identical; the order-sensitive log holds
        # exactly the same writes (the global interleaving may legitimately
        # differ between the two executions, per-client order may not).
        ref = next(iter(unbatched["counters"].values()))
        assert next(iter(batched["counters"].values())) == ref
        batched_log = next(iter(batched["logs"].values()))
        unbatched_log = next(iter(unbatched["logs"].values()))
        assert sorted(batched_log) == sorted(unbatched_log)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_same_seed_reproduces_identical_state(self, seed):
        """Batched runs are deterministic: same seed, same everything."""
        config = {"max_batch": 4, "flush_delay": 0.0005}
        first = run_workload(seed, config, num_shards=2)
        second = run_workload(seed, config, num_shards=2)
        assert first["counters"] == second["counters"]
        assert first["logs"] == second["logs"]
        assert first["shard_stats"] == second["shard_stats"]
        assert first["history"].writes == second["history"].writes


class TestBatchingMechanics:
    def test_size_threshold_flushes_full_batches(self):
        """With a huge time window, the size threshold alone must flush."""
        cluster = Cluster(ClusterConfig(num_nodes=2, seed=3))
        rts = BroadcastRts(cluster, batching={"max_batch": 3,
                                              "flush_delay": 5.0})
        with cluster:
            handles = {}

            def setup():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Counter, (0,), name="c")

            def writer():
                proc = cluster.sim.current_process
                rts.invoke(proc, handles["c"], "add", (1,))

            cluster.node(0).kernel.spawn_thread(setup)
            cluster.run()
            for _ in range(3):
                cluster.node(1).kernel.spawn_thread(writer)
            elapsed_start = cluster.sim.now
            cluster.run()
            stats = rts.router.shard_stats[0]
            assert stats.max_batch == 3
            assert stats.batched_ops == 3
            # The batch went out on the size threshold, not the 5 s timer.
            assert cluster.sim.now - elapsed_start < 1.0
            value = rts.manager(0).get(handles["c"].obj_id).instance.value
            assert value == 3

    def test_time_threshold_flushes_partial_batches(self):
        """A lone write must not wait for a full batch: the timer flushes it."""
        cluster = Cluster(ClusterConfig(num_nodes=2, seed=3))
        rts = BroadcastRts(cluster, batching={"max_batch": 64,
                                              "flush_delay": 0.01})
        with cluster:
            handles = {}
            times = {}

            def setup():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Counter, (0,), name="c")

            def writer():
                proc = cluster.sim.current_process
                start = proc.local_time
                rts.invoke(proc, handles["c"], "add", (1,))
                times["latency"] = proc.local_time - start

            cluster.node(0).kernel.spawn_thread(setup)
            cluster.run()
            cluster.node(1).kernel.spawn_thread(writer)
            cluster.run()
            assert rts.manager(0).get(handles["c"].obj_id).instance.value == 1
            # The write waited out the flush window, then completed.
            assert times["latency"] >= 0.01

    def test_batching_reduces_ordered_broadcasts(self):
        """Concurrent same-shard writers produce fewer sequenced messages
        when batching is on."""
        def deliveries(batching):
            cluster = Cluster(ClusterConfig(num_nodes=4, seed=9))
            rts = BroadcastRts(cluster, batching=batching)
            with cluster:
                handles = {}

                def setup():
                    proc = cluster.sim.current_process
                    handles["c"] = rts.create_object(proc, Counter, (0,),
                                                     name="c")

                def writer():
                    proc = cluster.sim.current_process
                    for _ in range(10):
                        rts.invoke(proc, handles["c"], "add", (1,))

                cluster.node(0).kernel.spawn_thread(setup)
                cluster.run()
                for node in cluster.nodes:
                    for _ in range(3):
                        node.kernel.spawn_thread(writer)
                cluster.run()
                value = rts.manager(0).get(handles["c"].obj_id).instance.value
                assert value == 120
                return rts.group.stats.deliveries

        batched = deliveries({"max_batch": 8, "flush_delay": 0.0})
        unbatched = deliveries(None)
        assert batched < unbatched


class TestBatchAwareFlowControl:
    """The backpressure knob: senders back off from a drowning sequencer."""

    def run_overload(self, backpressure_depth):
        """A write burst against a drowning sequencer (5 ms service time,
        deep enough that queued messages outlive the senders' retry
        timers); returns observable state plus queue/retry statistics."""
        from repro.config import CostModel

        cost = CostModel().with_overrides(cpu={"sequencing_cost": 5.0e-3})
        cluster = Cluster(ClusterConfig(num_nodes=8, seed=13, cost_model=cost))
        rts = BroadcastRts(cluster, batching={
            "max_batch": 4, "flush_delay": 0.0,
            "backpressure_depth": backpressure_depth,
        })
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            handles["log"] = rts.create_object(proc, AppendLog, name="log")

        def client(node_id, client_id):
            proc = cluster.sim.current_process
            for k in range(15):
                rts.invoke(proc, handles["log"], "append",
                           ((node_id, client_id, k),))

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        for node in cluster.nodes:
            for client_id in range(3):
                node.kernel.spawn_thread(client, node.node_id, client_id)
        cluster.run()
        state = {
            "log": [tuple(item) for item in
                    rts.manager(0).get(handles["log"].obj_id).instance.items],
            "max_queue_depth": rts.group.sequencer.max_queue_depth,
            "holds": rts.stats.flow_control_holds,
            "elections": rts.group.stats.elections,
            "retransmits": rts.group.stats.retransmit_requests,
            "batches": rts.stats.batches_sent,
            "summary": rts.read_write_summary(),
        }
        cluster.shutdown()
        return state

    def test_backpressure_stops_the_retry_spiral(self):
        uncontrolled = self.run_overload(None)
        controlled = self.run_overload(2)
        # Same writes, applied exactly once, in per-client order, each way.
        for state in (uncontrolled, controlled):
            per_client = {}
            for node_id, client_id, k in state["log"]:
                per_client.setdefault((node_id, client_id), []).append(k)
            assert len(state["log"]) == 8 * 3 * 15
            for ks in per_client.values():
                assert ks == list(range(15))
            assert state["elections"] == 0
        # Without the knob, queued batches outlive their senders' retry
        # timers: hundreds of spurious (duplicate-suppressed) retransmits
        # pour extra work onto the already-drowning sequencer.
        assert uncontrolled["retransmits"] > 100
        # With it, senders hold ready batches instead: the queue stays
        # shallow, the retry path stays essentially untriggered, and the
        # same writes ride fewer, larger batches.
        assert controlled["holds"] > 0
        assert controlled["retransmits"] < uncontrolled["retransmits"] / 5
        assert controlled["max_queue_depth"] < uncontrolled["max_queue_depth"] / 2
        assert controlled["batches"] < uncontrolled["batches"]
        assert controlled["summary"]["flow_control_holds"] == controlled["holds"]

    def test_knob_is_inert_without_a_queueing_sequencer(self):
        """With sequencing_cost 0 the queue never forms; the knob no-ops."""
        cluster = Cluster(ClusterConfig(num_nodes=2, seed=13))
        rts = BroadcastRts(cluster, batching={"max_batch": 4,
                                              "backpressure_depth": 2})
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Counter, (0,), name="c")
                for _ in range(20):
                    rts.invoke(proc, handles["c"], "add", (1,))
                assert rts.invoke(proc, handles["c"], "read") == 20

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            assert rts.stats.flow_control_holds == 0
