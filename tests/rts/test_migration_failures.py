"""Migration under failure: policy switches racing sequencer crashes.

The switch message rides the object's shard broadcast, so a migration must
inherit every guarantee of that layer — including exactly-once delivery in
one agreed total order across a sequencer crash, targeted packet loss, and
the resulting election.  These properties are checked the same way the write
batching was: randomized multi-writer workloads (hypothesis-driven seeds)
whose observable state must show **no lost and no doubly-applied write** and
per-client FIFO order, across a broadcast -> primary-copy migration that
happens while the source shard's sequencer crashes mid-transfer.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.amoeba.broadcast.protocol import KIND_DATA
from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.rts.consistency import ConsistencyChecker, HistoryRecorder
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

NUM_NODES = 4
CLIENTS_PER_NODE = 2
OPS_PER_CLIENT = 10
#: The crasher fires at this virtual time; migration start offsets around it
#: are what hypothesis explores.
CRASH_AT = 0.006


class AppendLog(ObjectSpec):
    """An order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)

    @operation(write=False)
    def snapshot(self):
        return list(self.items)


class Counter(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, delta):
        self.value += delta
        return self.value


def run_crash_migration(seed, migrate_offset, crash=True, drop_data_to=None,
                        batching=None):
    """One randomized run: writers on all nodes, a migration to primary-copy
    racing a sequencer crash (plus optional targeted loss); returns the
    observable state."""
    import random

    cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast", batching=batching,
                    record_history=True)
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        handles["log"] = rts.create_object(proc, AppendLog, name="log")
        handles["counter"] = rts.create_object(proc, Counter, (0,),
                                               name="counter")

    def client(node_id, client_id):
        proc = cluster.sim.current_process
        rng = random.Random(f"{seed}/{node_id}/{client_id}")
        for k in range(OPS_PER_CLIENT):
            rts.invoke(proc, handles["log"], "append",
                       ((node_id, client_id, k),))
            if rng.random() < 0.4:
                rts.invoke(proc, handles["counter"], "add", (1,))
            proc.hold(rng.random() * 0.002)

    def crasher():
        proc = cluster.sim.current_process
        proc.hold(CRASH_AT)
        if drop_data_to is not None:
            # Targeted loss first: the victim misses sequenced DATA (which
            # may include the switch itself) and must recover through gap
            # requests / cross-member retransmission.
            data_kind = rts.group.wire_kind(KIND_DATA)

            def drop_data(packet):
                return packet.message.kind == data_kind

            cluster.node(drop_data_to).nic.drop_filter = drop_data

            def lift():
                cluster.node(drop_data_to).nic.drop_filter = None

            cluster.node(drop_data_to).kernel.spawn_thread(
                lambda: (cluster.sim.current_process.hold(0.01), lift()))
        if crash:
            cluster.node(rts.group.sequencer_node_id).crash()

    def migrator():
        proc = cluster.sim.current_process
        proc.hold(CRASH_AT + migrate_offset)
        # The primary is pinned to the migrator's own (surviving) node:
        # primary-copy management has no primary-failure recovery, so the
        # interesting crash is the *sequencer* ordering the switch, not the
        # machine the object lands on.
        rts.migrate(proc, handles["log"], "primary-invalidate", primary=2)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    crashed_node = rts.group.sequencer_node_id if crash else None
    # No clients on the crashing machine: a crashed node's processes simply
    # stop, which the simulator's deadlock check would (rightly) flag.
    for node in cluster.nodes:
        if node.node_id == crashed_node:
            continue
        for client_id in range(CLIENTS_PER_NODE):
            node.kernel.spawn_thread(client, node.node_id, client_id)
    # The migrator runs on a node that is never the initial sequencer, so it
    # survives the crash.
    cluster.node(2).kernel.spawn_thread(migrator)
    cluster.node(1).kernel.spawn_thread(crasher)
    cluster.run()

    primary = rts.directory.primary_of(handles["log"].obj_id)
    assert cluster.node(primary).alive
    log_items = [tuple(item) for item in
                 rts.managers[primary].get(handles["log"].obj_id).instance.items]
    counters = {
        node.node_id: rts.managers[node.node_id].get(
            handles["counter"].obj_id).instance.value
        for node in cluster.nodes if node.alive
    }
    state = {
        "log": log_items,
        "counters": counters,
        "elections": rts.group.stats.elections,
        "policy": rts.policy_of(handles["log"]),
        "migrations": [(m.target, m.primary_node) for m in rts.migrations],
        "history": rts.history,
        "crashed": crashed_node,
    }
    cluster.shutdown()
    return state


def check_write_histories(state):
    """Surviving machines applied identical write sequences per object; the
    crashed machine's (partial) history is a prefix of that agreed order."""
    history = state["history"]
    crashed = state["crashed"]
    survivors = HistoryRecorder(enabled=True)
    survivors.writes = {nid: objects for nid, objects in history.writes.items()
                        if nid != crashed}
    survivors.reads = history.reads
    ConsistencyChecker(survivors).check_write_order_agreement()
    ConsistencyChecker(survivors).check_process_monotonicity()
    if crashed in history.writes:
        reference_node = next(iter(survivors.writes))
        for obj_id, records in history.writes[crashed].items():
            ops = [(r.seqno, r.op_name, r.args) for r in records]
            full = [(r.seqno, r.op_name, r.args)
                    for r in survivors.writes[reference_node].get(obj_id, [])]
            assert ops == full[:len(ops)], (
                f"crashed node's history of object {obj_id} is not a prefix")


def assert_no_lost_or_duplicated_writes(state):
    """Every client's appends applied exactly once, in that client's order."""
    per_client = {}
    for node_id, client_id, k in state["log"]:
        per_client.setdefault((node_id, client_id), []).append(k)
    expected = {(n, c) for n in range(NUM_NODES)
                for c in range(CLIENTS_PER_NODE) if n != state["crashed"]}
    assert set(per_client) == expected
    for client, ks in sorted(per_client.items()):
        assert ks == list(range(OPS_PER_CLIENT)), (
            f"client {client}: appends lost, duplicated or reordered: {ks}")


class TestMigrationDuringSequencerCrash:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           migrate_offset=st.sampled_from([-0.002, -0.0005, 0.0, 0.0005]))
    def test_no_lost_or_double_writes_across_crash(self, seed, migrate_offset):
        """The object migrates broadcast -> primary-copy while the shard's
        sequencer crashes mid-transfer; every write still applies exactly
        once, in per-client issue order."""
        state = run_crash_migration(seed, migrate_offset)
        assert state["policy"] == "primary-invalidate"
        assert state["migrations"] == [("primary-invalidate",
                                        state["migrations"][0][1])]
        assert_no_lost_or_duplicated_writes(state)
        # The counter stayed broadcast-managed: all survivors agree on it,
        # with no lost updates possible to hide (totals checked vs history).
        values = set(state["counters"].values())
        assert len(values) == 1, state["counters"]
        # Writes the machines applied agree in content and order per object
        # (the linearisation checker from the batching property suite).
        check_write_histories(state)

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_migration_with_targeted_data_loss(self, seed):
        """One member additionally loses every sequenced DATA packet for a
        window around the crash (nic.drop_filter), so it must recover the
        switch through retransmission before it can serve the new regime."""
        state = run_crash_migration(seed, migrate_offset=-0.0005,
                                    drop_data_to=3)
        assert state["policy"] == "primary-invalidate"
        assert_no_lost_or_duplicated_writes(state)
        check_write_histories(state)

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_batched_writes_migrate_cleanly_across_crash(self, seed):
        """Write batching composes with migration under failure: entries in
        a batch for the migrated object are dropped-and-reissued as a unit
        decision at every member."""
        state = run_crash_migration(seed, migrate_offset=0.0,
                                    batching={"max_batch": 4})
        assert state["policy"] == "primary-invalidate"
        assert_no_lost_or_duplicated_writes(state)
        check_write_histories(state)

    def test_lost_switch_with_quiet_group_recovers_via_probe(self):
        """Regression (hypothesis-found, seed 38496): the victim loses the
        DATA carrying the migration switch, and — the object having moved
        off the broadcast path — no later broadcast ever reveals the gap.
        The deferred invalidation is out-of-band evidence of the loss; the
        member's lag probe must recover the switch from a peer's retained
        history instead of wedging the new primary's fan-out forever."""
        state = run_crash_migration(38496, migrate_offset=-0.0005,
                                    drop_data_to=3)
        assert state["policy"] == "primary-invalidate"
        assert_no_lost_or_duplicated_writes(state)
        check_write_histories(state)

    def test_migration_without_crash_is_quiet(self):
        """Control run: no crash, no election — the switch alone does not
        disturb the group."""
        state = run_crash_migration(seed=77, migrate_offset=0.0, crash=False)
        assert state["elections"] == 0
        assert state["policy"] == "primary-invalidate"
        assert_no_lost_or_duplicated_writes(state)
