"""Tests for the history recorder and sequential-consistency checker."""

from __future__ import annotations

import pytest

from repro.errors import ConsistencyViolationError
from repro.rts.consistency import ConsistencyChecker, HistoryRecorder
from repro.rts.object_model import ObjectSpec, operation


class Register(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def assign(self, value):
        self.value = value
        return value


def record_write_everywhere(history, nodes, obj_id, seqno, op_name, args):
    for node_id in nodes:
        history.record_write(node_id, obj_id, op_name, args, seqno, seqno)


class TestHistoryRecorder:
    def test_disabled_recorder_collects_nothing(self):
        history = HistoryRecorder(enabled=False)
        history.record_write(0, 1, "assign", (1,), 1, 1)
        history.record_read("p", 0, 1, "read", (), 1, 1)
        assert history.writes == {}
        assert history.reads == []

    def test_checker_requires_enabled_history(self):
        with pytest.raises(ConsistencyViolationError):
            ConsistencyChecker(HistoryRecorder(enabled=False))


class TestWriteOrderAgreement:
    def test_identical_orders_pass(self):
        history = HistoryRecorder(enabled=True)
        for seqno, value in enumerate([5, 9, 2], start=1):
            record_write_everywhere(history, [0, 1, 2], 1, seqno, "assign", (value,))
        ConsistencyChecker(history).check_write_order_agreement()

    def test_diverging_orders_detected(self):
        history = HistoryRecorder(enabled=True)
        history.record_write(0, 1, "assign", (5,), 1, 1)
        history.record_write(0, 1, "assign", (9,), 2, 2)
        history.record_write(1, 1, "assign", (9,), 1, 1)
        history.record_write(1, 1, "assign", (5,), 2, 2)
        with pytest.raises(ConsistencyViolationError):
            ConsistencyChecker(history).check_write_order_agreement()


class TestProcessMonotonicity:
    def test_monotonic_reads_pass(self):
        history = HistoryRecorder(enabled=True)
        history.record_read("p1", 0, 1, "read", (), 0, 0)
        history.record_read("p1", 0, 1, "read", (), 5, 1)
        history.record_read("p1", 0, 1, "read", (), 5, 2)
        ConsistencyChecker(history).check_process_monotonicity()

    def test_backwards_read_detected(self):
        history = HistoryRecorder(enabled=True)
        history.record_read("p1", 0, 1, "read", (), 9, 3)
        history.record_read("p1", 0, 1, "read", (), 5, 1)
        with pytest.raises(ConsistencyViolationError):
            ConsistencyChecker(history).check_process_monotonicity()

    def test_independent_processes_are_not_compared(self):
        history = HistoryRecorder(enabled=True)
        history.record_read("p1", 0, 1, "read", (), 9, 3)
        history.record_read("p2", 1, 1, "read", (), 5, 1)
        ConsistencyChecker(history).check_process_monotonicity()


class TestReplayValidation:
    def test_matching_read_values_pass(self):
        history = HistoryRecorder(enabled=True)
        record_write_everywhere(history, [0, 1], 1, 1, "assign", (10,))
        record_write_everywhere(history, [0, 1], 1, 2, "assign", (20,))
        history.record_read("p", 0, 1, "read", (), 10, 1)
        history.record_read("p", 1, 1, "read", (), 20, 2)
        ConsistencyChecker(history).check_read_values(1, Register, (0,))

    def test_wrong_read_value_detected(self):
        history = HistoryRecorder(enabled=True)
        record_write_everywhere(history, [0, 1], 1, 1, "assign", (10,))
        history.record_read("p", 0, 1, "read", (), 999, 1)
        with pytest.raises(ConsistencyViolationError):
            ConsistencyChecker(history).check_read_values(1, Register, (0,))

    def test_version_beyond_writes_detected(self):
        history = HistoryRecorder(enabled=True)
        record_write_everywhere(history, [0], 1, 1, "assign", (10,))
        history.record_read("p", 0, 1, "read", (), 10, 7)
        with pytest.raises(ConsistencyViolationError):
            ConsistencyChecker(history).check_read_values(1, Register, (0,))
