"""The elasticity loop: rejoin after recovery, planned drain, live scale-in.

PR 5 made the runtime survive crashes; these tests pin the other half of
the loop: a recovered machine catches back up through each group's total
order (seeded copies, re-armed membership, seats handed back), a machine
can leave *gracefully* without a single failure-path event, and the
broadcast-group set can shrink under load — including the autoscaler's
shrink direction and the guards that keep half-rejoined members from
being targeted by moves or relocations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ConfigurationError, RtsError
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

NUM_NODES = 5


class Counter(ObjectSpec):
    def init(self, v=0):
        self.value = v

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, d):
        self.value += d
        return self.value


class AppendLog(ObjectSpec):
    """Order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)

    @operation(write=False)
    def snapshot(self):
        return list(self.items)


def make_rts(num_nodes=NUM_NODES, num_shards=2, seed=11, **kwargs):
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast",
                    num_shards=num_shards, **kwargs)
    return cluster, rts


def await_caught_up(rts, proc, node_id, step=0.001, max_polls=5000):
    """Poll until the runtime reports ``node_id`` fully rejoined."""
    for _ in range(max_polls):
        if rts.is_caught_up(node_id):
            return
        proc.hold(step)
    raise AssertionError(f"node {node_id} never caught up")


class TestRejoin:
    def test_recovered_node_reseeds_copies_and_rejoins_the_order(self):
        cluster, rts = make_rts(seed=7)
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            for i in range(4):
                handles[i] = rts.create_object(proc, Counter, (0,),
                                               name=f"c{i}")

        def writer(nid, lo, hi):
            proc = cluster.sim.current_process
            for k in range(lo, hi):
                rts.invoke(proc, handles[k % 4], "add", (1,))
                proc.hold(0.0004)

        def churner():
            proc = cluster.sim.current_process
            proc.hold(0.002)
            cluster.node(2).crash()
            proc.hold(0.003)
            cluster.node(2).recover()
            await_caught_up(rts, proc, 2)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        cluster.node(0).kernel.spawn_thread(writer, 0, 0, 20)
        cluster.node(1).kernel.spawn_thread(writer, 1, 20, 40)
        cluster.node(3).kernel.spawn_thread(churner)
        cluster.run()

        # The rejoin completed and reseeded every broadcast copy routed
        # through both groups.
        assert rts.stats.node_rejoins == 1
        record = rts.rejoins[0]
        assert record.completed_at is not None and record.window > 0
        assert record.objects_reseeded == 4
        # The recovered member is a full member of every group again...
        for shard in rts.router.active_shards():
            assert rts.router.group_for(shard).member(2).synced
        # ... with working local copies: its replica values match the
        # cluster-wide totals (40 writes spread over 4 counters).
        totals = {}

        def check():
            proc = cluster.sim.current_process
            for i in range(4):
                totals[i] = rts.invoke(proc, handles[i], "read")
            for i in range(4):
                replica = rts.managers[2].get(handles[i].obj_id)
                assert replica is not None
                assert replica.instance.value == totals[i]

        cluster.node(2).kernel.spawn_thread(check)
        cluster.run()
        assert sum(totals.values()) == 40
        summary = rts.read_write_summary()
        assert summary["elasticity"]["node_rejoins"] == 1
        assert summary["elasticity"]["rejoin_log"] == [(2, 4, 0)]
        cluster.shutdown()

    def test_primary_seat_handed_back_to_heaviest_writer(self):
        cluster, rts = make_rts(seed=13)
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            handles["ledger"] = rts.create_object(
                proc, Counter, (0,), name="ledger", policy="primary-update")
            assert rts.relocate_primary(proc, handles["ledger"], target=3)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()

        def heavy_writer():
            proc = cluster.sim.current_process
            for _ in range(30):
                rts.invoke(proc, handles["ledger"], "add", (1,))
                proc.hold(0.0002)

        def light_writer():
            proc = cluster.sim.current_process
            for _ in range(12):
                rts.invoke(proc, handles["ledger"], "add", (1,))
                proc.hold(0.0004)

        # Phase 1: accumulate the write history (node 3 is the heaviest
        # writer by a wide margin) and let the writers drain — simulated
        # threads on a crashed machine are not torn down, only isolated,
        # so the victim must host no live process when it dies.
        cluster.node(3).kernel.spawn_thread(heavy_writer)
        cluster.node(1).kernel.spawn_thread(light_writer)
        cluster.run()

        def churner():
            proc = cluster.sim.current_process
            cluster.node(3).crash()
            proc.hold(0.002)
            cluster.node(3).recover()
            await_caught_up(rts, proc, 3)

        cluster.node(0).kernel.spawn_thread(churner)
        cluster.run()

        # The crash moved the seat off node 3 (takeover); the rejoin,
        # seeing node 3 is still the object's heaviest writer, moved it
        # back.
        assert rts.stats.primary_recoveries == 1
        assert rts.directory.primary_of(handles["ledger"].obj_id) == 3
        assert rts.stats.seats_handed_back == 1
        assert rts.rejoins[0].seats_handed_back == 1
        cluster.shutdown()

    def test_crash_during_catchup_voids_the_rejoin_and_retries(self):
        """A second crash mid-catch-up kills the stale rejoin (generation
        bump); the next recovery starts a fresh one that completes."""
        cluster, rts = make_rts(seed=23)
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            for i in range(3):
                handles[i] = rts.create_object(proc, Counter, (0,),
                                               name=f"c{i}")

        def writer(nid):
            proc = cluster.sim.current_process
            for k in range(25):
                rts.invoke(proc, handles[k % 3], "add", (1,))
                proc.hold(0.0004)

        def churner():
            proc = cluster.sim.current_process
            proc.hold(0.002)
            cluster.node(2).crash()
            proc.hold(0.001)
            cluster.node(2).recover()
            # Kill it again immediately — almost certainly mid-catch-up.
            proc.hold(0.0002)
            cluster.node(2).crash()
            proc.hold(0.002)
            cluster.node(2).recover()
            await_caught_up(rts, proc, 2)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        cluster.node(0).kernel.spawn_thread(writer, 0)
        cluster.node(1).kernel.spawn_thread(writer, 1)
        cluster.node(3).kernel.spawn_thread(churner)
        cluster.run()

        # Only completed rejoins count; the voided one left no zombie.
        assert rts.stats.node_rejoins >= 1
        assert rts.is_caught_up(2)
        assert not rts._catching_up

        def check():
            proc = cluster.sim.current_process
            total = sum(rts.invoke(proc, handles[i], "read")
                        for i in range(3))
            assert total == 50

        cluster.node(0).kernel.spawn_thread(check)
        cluster.run()
        cluster.shutdown()


class TestCatchupGuards:
    """Alive-but-not-caught-up nodes must not be targeted by the movers."""

    def test_relocate_and_move_abort_while_target_catches_up(self):
        cluster, rts = make_rts(seed=17)
        handles = {}
        results = {}

        def setup():
            proc = cluster.sim.current_process
            handles["seat"] = rts.create_object(
                proc, Counter, (0,), name="seat", policy="primary-update")
            handles["shared"] = rts.create_object(proc, Counter, (0,),
                                                  name="shared")
            for _ in range(5):
                rts.invoke(proc, handles["shared"], "add", (1,))

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        origin_shard = rts.shard_of(handles["shared"])

        def scenario():
            proc = cluster.sim.current_process
            cluster.node(2).crash()
            proc.hold(0.001)
            cluster.node(2).recover()
            # The recovery listener marked node 2 as catching up
            # synchronously; both movers must bow out cleanly now.
            assert 2 in rts._catching_up
            results["relocate"] = rts.relocate_primary(
                proc, handles["seat"], target=2)
            results["move"] = rts.move_shard(
                proc, handles["shared"], 1 - origin_shard)
            results["primary_during"] = rts.directory.primary_of(
                handles["seat"].obj_id)
            await_caught_up(rts, proc, 2)
            # Caught up: the same calls go through.
            results["relocate_after"] = rts.relocate_primary(
                proc, handles["seat"], target=2)
            results["move_after"] = rts.move_shard(
                proc, handles["shared"], 1 - origin_shard)

        cluster.node(0).kernel.spawn_thread(scenario)
        cluster.run()
        assert results["relocate"] is False
        assert results["move"] is False
        assert results["primary_during"] != 2
        assert results["relocate_after"] is True
        assert results["move_after"] is True
        assert rts.directory.primary_of(handles["seat"].obj_id) == 2
        assert rts.shard_of(handles["shared"]) == 1 - origin_shard
        cluster.shutdown()


class TestGrowCap:
    def test_autoscaler_growth_stops_at_live_node_count(self):
        """grow_to=8 on a cluster with 3 live machines caps at 3 groups:
        every group needs a sequencer seat on a live node."""
        cluster, rts = make_rts(num_nodes=4, num_shards=1, seed=19,
                                rebalance={"interval": 0.002,
                                           "imbalance": 1.3,
                                           "min_writes": 8,
                                           "grow_to": 8})
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            for i in range(4):
                handles[i] = rts.create_object(proc, Counter, (0,),
                                               name=f"c{i}")

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        cluster.node(3).crash()

        def client(nid):
            proc = cluster.sim.current_process
            for k in range(50):
                rts.invoke(proc, handles[k % 4], "add", (1,))
                proc.hold(0.0003)

        for nid in (0, 1, 2):
            cluster.node(nid).kernel.spawn_thread(client, nid)
        cluster.run()
        assert rts.router.num_active_shards == 3
        assert rts.stats.shards_added == 2
        cluster.shutdown()


class TestAutoshrink:
    def test_controller_merges_idle_groups_away(self):
        """With traffic pinned to two groups, shrink_to=2 merges the two
        idle groups away, one per plan round."""
        cluster, rts = make_rts(num_nodes=4, num_shards=4, seed=29,
                                placement={"hot0": 0, "hot1": 1},
                                rebalance={"interval": 0.002,
                                           "imbalance": 1e9,
                                           "min_writes": 10**9,
                                           "shrink_to": 2,
                                           "shrink_below": 4})
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            for name in ("hot0", "hot1"):
                handles[name] = rts.create_object(proc, Counter, (0,),
                                                  name=name)

        def client(nid):
            proc = cluster.sim.current_process
            for k in range(60):
                name = "hot0" if k % 2 else "hot1"
                rts.invoke(proc, handles[name], "add", (1,))
                proc.hold(0.0003)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        for node in cluster.nodes:
            node.kernel.spawn_thread(client, node.node_id)
        cluster.run()
        assert rts.router.num_active_shards == 2
        assert rts.stats.shards_removed == 2
        assert sorted(rts.removed_shards) == [2, 3]

        def check():
            proc = cluster.sim.current_process
            total = sum(rts.invoke(proc, handles[n], "read")
                        for n in handles)
            assert total == 4 * 60

        cluster.node(0).kernel.spawn_thread(check)
        cluster.run()
        cluster.shutdown()


class TestDrainNode:
    def test_drain_evacuates_every_seat_without_a_single_failure(self):
        """The drain claim: primary and sequencer seats move, the machine
        retires — and the failure path never fires (no takeover, no
        election, no re-issued write)."""
        cluster, rts = make_rts(seed=31)
        handles = {}
        drained = {}

        def setup():
            proc = cluster.sim.current_process
            handles["log"] = rts.create_object(
                proc, AppendLog, name="log", policy="primary-update")
            handles["shared"] = rts.create_object(proc, AppendLog,
                                                  name="shared")
            # Node 0 seats both shard sequencers *and* the primary copy
            # (the creator's node holds a fresh primary seat already).
            if rts.directory.primary_of(handles["log"].obj_id) != 0:
                assert rts.relocate_primary(proc, handles["log"], target=0)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        elections_before = sum(rts.router.group_for(s).stats.elections
                               for s in rts.router.active_shards())

        def writer(nid):
            proc = cluster.sim.current_process
            for k in range(30):
                handle = handles["log"] if k % 2 else handles["shared"]
                rts.invoke(proc, handle, "append", ((nid, k),))
                proc.hold(0.0003)

        def drainer():
            proc = cluster.sim.current_process
            proc.hold(0.004)
            drained["ok"] = rts.drain_node(proc, 0)

        for nid in (1, 2, 3, 4):
            cluster.node(nid).kernel.spawn_thread(writer, nid)
        cluster.node(1).kernel.spawn_thread(drainer)
        cluster.run()

        assert drained["ok"] is True
        assert not cluster.node(0).alive
        assert rts.stats.nodes_drained == 1
        record = rts.drains[0]
        assert record.completed_at is not None
        assert record.primary_seats_moved == 1
        # Node 0 seats shard 0's sequencer (shard 1's sits on node 1).
        assert record.sequencer_seats_moved == 1
        # Zero failure-path events: a drain is not a crash.
        assert rts.stats.primary_recoveries == 0 and not rts.recoveries
        elections_after = sum(rts.router.group_for(s).stats.elections
                              for s in rts.router.active_shards())
        assert elections_after == elections_before
        # Exactly-once, per-writer FIFO on both logs.
        new_primary = rts.directory.primary_of(handles["log"].obj_id)
        assert new_primary != 0
        for key, holder in (("log", new_primary), ("shared", 1)):
            items = rts.managers[holder].get(
                handles[key].obj_id).instance.items
            per_writer = {}
            for nid, k in items:
                per_writer.setdefault(nid, []).append(k)
            assert sorted(per_writer) == [1, 2, 3, 4]
            for ks in per_writer.values():
                assert ks == sorted(ks) and len(ks) == 15
        cluster.shutdown()

    def test_drain_rejects_dead_catching_up_and_last_nodes(self):
        cluster, rts = make_rts(seed=37)
        handles = {}
        caught = {}

        def setup():
            proc = cluster.sim.current_process
            handles["c"] = rts.create_object(proc, Counter, (0,), name="c")
            for _ in range(4):
                rts.invoke(proc, handles["c"], "add", (1,))

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()

        def scenario():
            proc = cluster.sim.current_process
            cluster.node(2).crash()
            with pytest.raises(RtsError, match="crash recovery owns"):
                rts.drain_node(proc, 2)
            cluster.node(2).recover()
            assert 2 in rts._catching_up
            with pytest.raises(RtsError, match="catching up"):
                rts.drain_node(proc, 2)
            await_caught_up(rts, proc, 2)
            # Drain everything but one machine; the survivor must refuse.
            for nid in (0, 1, 2, 3):
                assert rts.drain_node(proc, nid)
            with pytest.raises(RtsError, match="last live machine"):
                rts.drain_node(proc, 4)

        cluster.node(4).kernel.spawn_thread(scenario)
        cluster.run()
        assert rts.stats.nodes_drained == 4
        assert [n.node_id for n in cluster.nodes if n.alive] == [4]
        cluster.shutdown()


class TestRemoveShard:
    def test_remove_merges_groups_under_live_writers(self):
        """Shrink 4 groups to 2 while writers keep appending: every object
        evacuates through its group's total order, exactly once."""
        cluster, rts = make_rts(num_nodes=4, num_shards=4, seed=41)
        handles = {}
        removed = {}

        def setup():
            proc = cluster.sim.current_process
            for i in range(8):
                handles[i] = rts.create_object(proc, AppendLog,
                                               name=f"log{i}")

        def writer(nid):
            proc = cluster.sim.current_process
            for k in range(24):
                rts.invoke(proc, handles[k % 8], "append", ((nid, k),))
                proc.hold(0.0003)

        def shrinker():
            proc = cluster.sim.current_process
            proc.hold(0.003)
            removed["first"] = rts.remove_shard(proc, 3)
            proc.hold(0.002)
            removed["second"] = rts.remove_shard(proc, 2)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        for node in cluster.nodes:
            node.kernel.spawn_thread(writer, node.node_id)
        cluster.node(0).kernel.spawn_thread(shrinker)
        cluster.run()

        assert removed == {"first": True, "second": True}
        assert rts.router.num_active_shards == 2
        assert rts.router.active_shards() == [0, 1]
        assert rts.stats.shards_removed == 2
        # Every object now routes through a surviving group.
        for handle in handles.values():
            assert rts.shard_of(handle) in (0, 1)
        # Exactly-once, per-writer FIFO across the merges.
        def check():
            proc = cluster.sim.current_process
            for i in range(8):
                items = rts.invoke(proc, handles[i], "snapshot")
                per_writer = {}
                for nid, k in items:
                    per_writer.setdefault(nid, []).append(k)
                for ks in per_writer.values():
                    assert ks == sorted(ks) and len(ks) == len(set(ks))
            total = sum(len(rts.invoke(proc, handles[i], "snapshot"))
                        for i in range(8))
            assert total == 4 * 24

        cluster.node(0).kernel.spawn_thread(check)
        cluster.run()
        cluster.shutdown()

    def test_remove_shard_bounds_and_last_group(self):
        cluster, rts = make_rts(num_nodes=4, num_shards=2, seed=43)
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            handles["c"] = rts.create_object(proc, Counter, (0,), name="c")
            rts.invoke(proc, handles["c"], "add", (1,))

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()

        def scenario():
            proc = cluster.sim.current_process
            with pytest.raises(ConfigurationError):
                rts.remove_shard(proc, 9)
            assert rts.remove_shard(proc, 1) is True
            assert rts.remove_shard(proc, 1) is False  # already retired
            with pytest.raises(ConfigurationError, match="last"):
                rts.remove_shard(proc, 0)

        cluster.node(0).kernel.spawn_thread(scenario)
        cluster.run()
        assert rts.router.num_active_shards == 1
        cluster.shutdown()


def run_churn_property(seed, first_crash, dwell, second_gap):
    """Crash -> recover -> crash churn over mixed-policy logs.

    Clients on nodes 0-2 write round-robin over one log per policy; node 4
    (hosting the primary seats) is crashed, recovered and crashed again on
    the given schedule.  Returns per-(object, client) sequences for the
    exactly-once / FIFO assertions.
    """
    cluster = Cluster(ClusterConfig(num_nodes=5, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast", num_shards=2)
    policies = ("primary-update", "primary-invalidate", "broadcast",
                "adaptive")
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        for policy in policies:
            handles[policy] = rts.create_object(
                proc, AppendLog, name=f"log-{policy}", policy=policy)
        for policy in ("primary-update", "primary-invalidate"):
            rts.relocate_primary(proc, handles[policy], target=4)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()

    def client(nid, cid):
        proc = cluster.sim.current_process
        for k in range(16):
            handle = handles[policies[k % len(policies)]]
            rts.invoke(proc, handle, "append", ((nid, cid, k),))
            proc.hold(0.0004)

    def churner():
        proc = cluster.sim.current_process
        proc.hold(first_crash)
        cluster.node(4).crash()
        proc.hold(dwell)
        cluster.node(4).recover()
        proc.hold(second_gap)
        if cluster.node(4).alive:
            cluster.node(4).crash()
            proc.hold(0.003)
            cluster.node(4).recover()
        await_caught_up(rts, proc, 4)

    for nid in (0, 1, 2):
        for cid in range(2):
            cluster.node(nid).kernel.spawn_thread(client, nid, cid)
    cluster.node(3).kernel.spawn_thread(churner)
    cluster.run()

    state = {"per_obj": {}}
    for policy in policies:
        holder = (rts.directory.primary_of(handles[policy].obj_id)
                  if rts._mechanism_of(handles[policy].obj_id) == "primary"
                  else 0)
        items = rts.managers[holder].get(handles[policy].obj_id).instance.items
        state["per_obj"][policy] = list(items)
    state["caught_up"] = rts.is_caught_up(4)
    cluster.shutdown()
    return state


class TestChurnProperties:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           first_crash=st.sampled_from((0.002, 0.004, 0.006)),
           dwell=st.sampled_from((0.001, 0.003)),
           second_gap=st.sampled_from((0.0003, 0.002, 0.006)))
    def test_churned_cluster_keeps_exactly_once_fifo(self, seed, first_crash,
                                                     dwell, second_gap):
        state = run_churn_property(seed, first_crash, dwell, second_gap)
        assert state["caught_up"]
        for policy, items in state["per_obj"].items():
            per_client = {}
            for nid, cid, k in items:
                per_client.setdefault((nid, cid), []).append(k)
            # Exactly once: every client's 4 writes to this object landed,
            # none twice; FIFO: in issue order.
            assert len(per_client) == 6, (policy, per_client)
            for ks in per_client.values():
                assert ks == sorted(ks), (policy, ks)
                assert len(ks) == len(set(ks)) == 4, (policy, ks)
