"""Primary-failure recovery: takeovers racing writes, migrations, moves.

A primary-copy object used to die with its primary (as in the paper); the
unified runtime now elects the surviving secondary with the freshest
coherence version (ties to the lowest node id) — or restores the last
committed record when no valid copy survived, the primary-invalidate worst
case — and re-seats the object through an epoch-stamped ``takeover`` switch
in the object's shard order.  These tests drive randomized multi-writer
workloads (hypothesis seeds) into a primary crash that races, in turn: the
writes themselves, a policy migration, a cross-group shard move, and a
sequencer crash (so the takeover switch itself must survive an election).
The observable state must always show exactly-once, per-client-FIFO writes.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import RtsError
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

NUM_NODES = 5
#: The reserved victim node hosting the doomed primary seat (no clients).
PRIMARY_NODE = 4
CLIENTS_PER_NODE = 2
OPS_PER_CLIENT = 8
CRASH_AT = 0.006


class AppendLog(ObjectSpec):
    """Order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)

    @operation(write=False)
    def snapshot(self):
        return list(self.items)


class Counter(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, delta):
        self.value += delta
        return self.value


def run_primary_crash(seed, policy="primary-invalidate", race=None,
                      race_offset=0.0, crash_sequencer=False, num_shards=1,
                      read_mix=0.3):
    """One randomized run: writers on every surviving node hammer a
    primary-copy log (plus a broadcast counter) while the primary's node
    crashes; optional concurrent races.  Returns the observable state."""
    cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast",
                    num_shards=num_shards)
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        handles["log"] = rts.create_object(proc, AppendLog, name="log",
                                           policy=policy)
        handles["counter"] = rts.create_object(proc, Counter, (0,),
                                               name="counter")
        # Park the doomed seat on the reserved victim node.
        rts.relocate_primary(proc, handles["log"], target=PRIMARY_NODE)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    assert rts.directory.primary_of(handles["log"].obj_id) == PRIMARY_NODE

    # The sequencer of the log's shard must not host clients when we crash
    # it too (its processes would die with it).
    log_sequencer = rts.router.group_for(
        rts.shard_of(handles["log"])).sequencer_node_id
    skip_clients = {PRIMARY_NODE}
    if crash_sequencer:
        skip_clients.add(log_sequencer)

    def client(node_id, client_id):
        proc = cluster.sim.current_process
        rng = random.Random(f"{seed}/{node_id}/{client_id}")
        for k in range(OPS_PER_CLIENT):
            rts.invoke(proc, handles["log"], "append",
                       ((node_id, client_id, k),))
            if rng.random() < read_mix:
                # Reads pull secondary copies onto some machines, so both
                # recovery paths (freshest copy vs. committed record) occur.
                rts.invoke(proc, handles["log"], "snapshot")
            if rng.random() < 0.4:
                rts.invoke(proc, handles["counter"], "add", (1,))
            proc.hold(rng.random() * 0.002)

    def crasher():
        proc = cluster.sim.current_process
        proc.hold(CRASH_AT)
        cluster.node(PRIMARY_NODE).crash()
        if crash_sequencer:
            cluster.node(log_sequencer).crash()

    def racer():
        proc = cluster.sim.current_process
        proc.hold(CRASH_AT + race_offset)
        if race == "migration":
            # Policy migration racing the crash (either may win; the loser
            # must abort cleanly).
            rts.migrate(proc, handles["log"], "broadcast")
        elif race == "shard-move":
            rts.move_shard(proc, handles["log"], 1)

    for node in cluster.nodes:
        if node.node_id in skip_clients:
            continue
        for client_id in range(CLIENTS_PER_NODE):
            node.kernel.spawn_thread(client, node.node_id, client_id)
    cluster.node(1).kernel.spawn_thread(crasher)
    if race is not None:
        cluster.node(2).kernel.spawn_thread(racer)
    cluster.run()

    primary = rts.directory.primary_of(handles["log"].obj_id)
    mechanism_primary = rts.policy_of(handles["log"]) != "broadcast"
    if mechanism_primary:
        assert cluster.node(primary).alive
        log_items = [tuple(item) for item in
                     rts.managers[primary].get(
                         handles["log"].obj_id).instance.items]
    else:
        # The racing migration won: every live replica must agree.
        replicas = [
            [tuple(item) for item in
             rts.managers[n.node_id].get(handles["log"].obj_id).instance.items]
            for n in cluster.nodes
            if n.alive and rts.managers[n.node_id].has_valid_copy(
                handles["log"].obj_id)
        ]
        assert replicas and all(r == replicas[0] for r in replicas)
        log_items = replicas[0]
    counters = {
        node.node_id: rts.managers[node.node_id].get(
            handles["counter"].obj_id).instance.value
        for node in cluster.nodes if node.alive
    }
    state = {
        "log": log_items,
        "counters": counters,
        "policy": rts.policy_of(handles["log"]),
        "primary": primary,
        "recoveries": [(r.name, r.old_primary, r.new_primary,
                        r.from_snapshot, r.window) for r in rts.recoveries],
        "dedup": rts.stats.deduplicated_writes,
        "skip_clients": skip_clients,
    }
    cluster.shutdown()
    return state


def assert_exactly_once_fifo(state):
    """Every surviving client's appends applied exactly once, in order."""
    per_client = {}
    for node_id, client_id, k in state["log"]:
        per_client.setdefault((node_id, client_id), []).append(k)
    expected = {(n, c) for n in range(NUM_NODES)
                for c in range(CLIENTS_PER_NODE)
                if n not in state["skip_clients"]}
    assert set(per_client) == expected, (set(per_client), expected)
    for client, ks in sorted(per_client.items()):
        assert ks == list(range(OPS_PER_CLIENT)), (
            f"client {client}: appends lost, duplicated or reordered: {ks}")
    # The broadcast counter is untouched by the takeover: survivors agree.
    assert len(set(state["counters"].values())) == 1, state["counters"]


class TestPrimaryCrashMidWrite:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           policy=st.sampled_from(["primary-invalidate", "primary-update"]))
    def test_writes_survive_primary_crash(self, seed, policy):
        state = run_primary_crash(seed, policy=policy)
        assert state["policy"] == policy
        assert state["primary"] != PRIMARY_NODE
        assert state["recoveries"], state
        assert state["recoveries"][0][1] == PRIMARY_NODE
        assert_exactly_once_fifo(state)

    def test_invalidate_falls_back_to_committed_record(self):
        """With no reads, no secondary ever holds a valid copy of an
        invalidate-managed object: the takeover must restore the last
        totally-ordered committed state from the record."""
        state = run_primary_crash(seed=1234, policy="primary-invalidate",
                                  read_mix=0.0)
        assert state["recoveries"], state
        assert state["recoveries"][0][3] is True  # from_snapshot
        assert_exactly_once_fifo(state)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_update_promotes_freshest_secondary(self, seed):
        """Update-managed objects keep live secondaries; the takeover must
        promote one (never the record) and keep every write."""
        state = run_primary_crash(seed, policy="primary-update")
        assert state["recoveries"], state
        assert state["recoveries"][0][3] is False  # from a surviving copy
        assert_exactly_once_fifo(state)


class TestPrimaryCrashRacingMigration:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           race_offset=st.sampled_from([-0.002, -0.0005, 0.0, 0.0005]))
    def test_crash_racing_policy_migration(self, seed, race_offset):
        """The primary dies while a primary -> broadcast migration may be
        freezing it.  Whichever wins, no write is lost or doubled."""
        state = run_primary_crash(seed, policy="primary-update",
                                  race="migration", race_offset=race_offset)
        assert state["policy"] in ("primary-update", "broadcast")
        assert_exactly_once_fifo(state)


class TestPrimaryCrashRacingShardMove:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           race_offset=st.sampled_from([-0.002, 0.0, 0.0005]))
    def test_crash_racing_shard_move(self, seed, race_offset):
        """The object's switch order moves to another broadcast group around
        the same instant its primary dies; the takeover must ride whichever
        group currently orders the object."""
        state = run_primary_crash(seed, policy="primary-invalidate",
                                  race="shard-move", race_offset=race_offset,
                                  num_shards=2)
        assert state["recoveries"], state
        assert_exactly_once_fifo(state)


class TestPrimaryCrashRacingElection:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_takeover_survives_sequencer_crash(self, seed):
        """The primary AND the shard's sequencer die together: the takeover
        switch must survive the election and still land exactly once in the
        agreed order."""
        state = run_primary_crash(seed, policy="primary-update",
                                  crash_sequencer=True)
        assert state["recoveries"], state
        assert_exactly_once_fifo(state)


class TestRelocationAborts:
    def _run(self, crash_delay):
        """relocate_primary toward a node that dies around the switch."""
        cluster = Cluster(ClusterConfig(num_nodes=4, seed=5))
        rts = HybridRts(cluster, default_policy="primary-update")
        handles = {}
        outcome = {}

        def setup():
            proc = cluster.sim.current_process
            handles["c"] = rts.create_object(proc, Counter, (0,), name="c")

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()

        def writer(node_id):
            proc = cluster.sim.current_process
            for _ in range(12):
                rts.invoke(proc, handles["c"], "add", (1,))
                proc.hold(0.0008)

        def relocator():
            proc = cluster.sim.current_process
            proc.hold(0.002)
            outcome["relocated"] = rts.relocate_primary(proc, handles["c"],
                                                        target=3)

        def crasher():
            proc = cluster.sim.current_process
            proc.hold(0.002 + crash_delay)
            cluster.node(3).crash()

        for node_id in (0, 1, 2):
            cluster.node(node_id).kernel.spawn_thread(writer, node_id)
        cluster.node(1).kernel.spawn_thread(relocator)
        cluster.node(2).kernel.spawn_thread(crasher)
        cluster.run()

        primary = rts.directory.primary_of(handles["c"].obj_id)
        assert cluster.node(primary).alive
        value = rts.managers[primary].get(handles["c"].obj_id).instance.value
        cluster.shutdown()
        return outcome, primary, value

    def test_relocation_to_node_that_crashes_mid_switch_aborts_cleanly(self):
        """The chosen seat dies while (or right after) the relocation's
        snapshot switch is in flight: the relocation either aborts before
        flipping the seat or the takeover immediately re-seats the object —
        either way every write lands exactly once on a live primary."""
        for crash_delay in (0.0, 0.0002, 0.0006, 0.0015):
            outcome, primary, value = self._run(crash_delay)
            assert primary != 3
            assert value == 36, (crash_delay, outcome, value)

    def test_relocation_away_from_crashed_seat_refuses(self):
        """Relocating an object whose current primary is already dead is
        refused (the crash takeover owns the object)."""
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=9))
        rts = HybridRts(cluster, default_policy="primary-invalidate")
        handles = {}
        outcome = {}

        def body():
            proc = cluster.sim.current_process
            handles["c"] = rts.create_object(proc, Counter, (0,), name="c")
            rts.relocate_primary(proc, handles["c"], target=2)
            proc.hold(0.002)
            cluster.node(2).crash()
            outcome["second"] = rts.relocate_primary(proc, handles["c"],
                                                     target=1)

        cluster.node(0).kernel.spawn_thread(body)
        cluster.run()
        assert outcome["second"] is False
        # ... but the takeover still re-seated it on a live node.
        assert cluster.node(rts.directory.primary_of(
            handles["c"].obj_id)).alive
        cluster.shutdown()


class TestNoRecoveryWithoutBroadcast:
    def test_point_to_point_cluster_reports_lost_object(self):
        """On a switched (no-broadcast) network the paper's semantics hold:
        a primary crash loses the object, and a blocked writer is told so
        instead of hanging forever."""
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=3),
                          network_type="switched")
        rts = HybridRts(cluster, default_policy="primary-update")
        handles = {}
        errors = []

        def setup():
            proc = cluster.sim.current_process
            handles["c"] = rts.create_object(proc, Counter, (0,), name="c")

        def writer():
            proc = cluster.sim.current_process
            try:
                for _ in range(20):
                    rts.invoke(proc, handles["c"], "add", (1,))
                    proc.hold(0.001)
            except RtsError as exc:
                errors.append(str(exc))

        def crasher():
            proc = cluster.sim.current_process
            proc.hold(0.004)
            cluster.node(0).crash()

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        cluster.node(1).kernel.spawn_thread(writer)
        cluster.node(2).kernel.spawn_thread(crasher)
        cluster.run()
        assert errors and "lost" in errors[0]
        assert rts.stats.primary_recoveries == 0
        cluster.shutdown()
