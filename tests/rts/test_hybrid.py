"""Integration tests for the unified runtime: per-object policies, live
migration, the adaptive controller, back-compat shims, and the reconciled
per-object statistics."""

from __future__ import annotations

import warnings

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import RtsError
from repro.orca.builtin_objects import DictObject, IntObject
from repro.orca.program import OrcaProgram
from repro.rts.broadcast_rts import BroadcastRts
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation
from repro.rts.p2p.runtime import PointToPointRts
from repro.rts.policy import AdaptiveParams


class Register(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, delta):
        self.value += delta
        return self.value


class GuardedCell(ObjectSpec):
    """A cell whose consume blocks (via guard retry) until a value appears."""

    def init(self):
        self.value = None

    @operation(write=True)
    def put(self, value):
        self.value = value
        return value

    @operation(write=True, guard=lambda self: self.value is not None)
    def take(self):
        value, self.value = self.value, None
        return value


def run_threads(cluster, bodies):
    """Spawn each (node_id, callable) thread and run to completion."""
    for node_id, body in bodies:
        cluster.node(node_id).kernel.spawn_thread(body)
    cluster.run()


def make_hybrid(n=4, seed=7, **kwargs):
    cluster = Cluster(ClusterConfig(num_nodes=n, seed=seed))
    return cluster, HybridRts(cluster, **kwargs)


class TestPerObjectPolicies:
    def test_mixed_policies_in_one_cluster(self):
        cluster, rts = make_hybrid()
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["b"] = rts.create_object(proc, Register, (0,),
                                                 name="b", policy="broadcast")
                handles["p"] = rts.create_object(proc, Register, (0,), name="p",
                                                 policy="primary-invalidate")

            run_threads(cluster, [(0, main)])
            assert rts.policy_of(handles["b"]) == "broadcast"
            assert rts.policy_of(handles["p"]) == "primary-invalidate"
            # Broadcast object is replicated everywhere; the primary object
            # lives only on its creator.
            for node in cluster.nodes:
                assert rts.managers[node.node_id].has_valid_copy(
                    handles["b"].obj_id)
            assert rts.managers[0].has_valid_copy(handles["p"].obj_id)
            assert not rts.managers[2].has_valid_copy(handles["p"].obj_id)
            assert rts.directory.primary_of(handles["p"].obj_id) == 0

    def test_both_mechanisms_serve_operations(self):
        cluster, rts = make_hybrid()
        with cluster:
            handles = {}
            results = {}

            def main():
                proc = cluster.sim.current_process
                handles["b"] = rts.create_object(proc, Register, (0,),
                                                 name="b", policy="broadcast")
                handles["p"] = rts.create_object(proc, Register, (0,), name="p",
                                                 policy="primary-update")

            def user():
                proc = cluster.sim.current_process
                for _ in range(5):
                    rts.invoke(proc, handles["b"], "add", (1,))
                    rts.invoke(proc, handles["p"], "add", (10,))
                results["b"] = rts.invoke(proc, handles["b"], "read")
                results["p"] = rts.invoke(proc, handles["p"], "read")

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(2, user)])
            assert results == {"b": 5, "p": 50}
            assert rts.stats.broadcast_writes == 5
            assert rts.stats.rpc_writes == 5

    def test_broadcast_policy_needs_broadcast_network(self):
        cluster = Cluster(ClusterConfig(num_nodes=2, seed=1),
                          network_type="switched")
        with cluster:
            rts = HybridRts(cluster, default_policy="primary")
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["p"] = rts.create_object(proc, Register, (0,))
                with pytest.raises(RtsError):
                    rts.create_object(proc, Register, (0,), policy="broadcast")

            run_threads(cluster, [(0, main)])
            assert rts.policy_of(handles["p"]) == "primary-update"


class TestExplicitMigration:
    def test_round_trip_preserves_state_and_counts(self):
        cluster, rts = make_hybrid()
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Register, (0,), name="c")

            def writer(node_id):
                def body():
                    proc = cluster.sim.current_process
                    for _ in range(10):
                        rts.invoke(proc, handles["c"], "add", (1,))
                        proc.hold(0.001)
                return body

            def migrator():
                proc = cluster.sim.current_process
                proc.hold(0.004)
                assert rts.migrate(proc, handles["c"], "primary-invalidate")
                proc.hold(0.01)
                assert rts.migrate(proc, handles["c"], "broadcast")

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(n, writer(n)) for n in range(4)]
                        + [(1, migrator)])
            # Every write applied exactly once, replicas agree everywhere.
            for node in cluster.nodes:
                replica = rts.managers[node.node_id].get(handles["c"].obj_id)
                assert replica.instance.value == 40
            assert rts.stats.migrations == 2
            assert rts.stats.migrations_to_primary == 1
            assert rts.stats.migrations_to_broadcast == 1
            assert [m.target for m in rts.migrations] == [
                "primary-invalidate", "broadcast"]

    def test_migrate_to_same_policy_is_a_noop(self):
        cluster, rts = make_hybrid()
        with cluster:
            handles = {}
            outcomes = []

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Register, (0,))
                outcomes.append(rts.migrate(proc, handles["c"], "broadcast"))

            run_threads(cluster, [(0, main)])
            assert outcomes == [False]
            assert rts.stats.migrations == 0

    def test_primary_lands_on_heaviest_writer(self):
        cluster, rts = make_hybrid()
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Register, (0,))

            def writer(node_id, count):
                def body():
                    proc = cluster.sim.current_process
                    for _ in range(count):
                        rts.invoke(proc, handles["c"], "add", (1,))
                return body

            def migrator():
                proc = cluster.sim.current_process
                proc.hold(0.05)
                rts.migrate(proc, handles["c"], "primary-invalidate")

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(1, writer(1, 3)), (3, writer(3, 12)),
                                  (0, migrator)])
            assert rts.directory.primary_of(handles["c"].obj_id) == 3

    def test_protocol_flip_works_on_switched_network(self):
        """A coherence-protocol flip is pure bookkeeping: it must work on a
        network without hardware broadcast."""
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=47),
                          network_type="switched")
        with cluster:
            rts = HybridRts(cluster, default_policy="primary")
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["p"] = rts.create_object(proc, Register, (1,))
                assert rts.migrate(proc, handles["p"], "primary-invalidate")
                rts.invoke(proc, handles["p"], "add", (1,))

            run_threads(cluster, [(0, main)])
            assert rts.policy_of(handles["p"]) == "primary-invalidate"
            assert rts.managers[0].get(handles["p"].obj_id).instance.value == 2
            assert rts.router is None  # still no broadcast machinery built

    def test_protocol_flip_between_primary_flavours(self):
        cluster, rts = make_hybrid(seed=9)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["p"] = rts.create_object(proc, Register, (0,),
                                                 policy="primary-update")
                rts.invoke(proc, handles["p"], "add", (1,))
                assert rts.migrate(proc, handles["p"], "primary-invalidate")
                rts.invoke(proc, handles["p"], "add", (1,))

            run_threads(cluster, [(0, main)])
            assert rts.policy_of(handles["p"]) == "primary-invalidate"
            assert rts.managers[0].get(handles["p"].obj_id).instance.value == 2
            # Protocol flips stay out of the epoch machinery entirely.
            assert rts._epoch_by_obj.get(handles["p"].obj_id, 0) == 0

    def test_guard_waiters_survive_migration_to_broadcast(self):
        """A consumer blocked on a guarded operation across a migration is
        woken by the post-migration producer."""
        cluster, rts = make_hybrid(seed=11)
        with cluster:
            handles = {}
            taken = []

            def main():
                proc = cluster.sim.current_process
                handles["cell"] = rts.create_object(
                    proc, GuardedCell, name="cell", policy="broadcast")

            def consumer():
                proc = cluster.sim.current_process
                taken.append(rts.invoke(proc, handles["cell"], "take"))

            def producer():
                proc = cluster.sim.current_process
                proc.hold(0.01)
                rts.migrate(proc, handles["cell"], "primary-invalidate")
                proc.hold(0.01)
                rts.migrate(proc, handles["cell"], "broadcast")
                proc.hold(0.01)
                rts.invoke(proc, handles["cell"], "put", (42,))

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(2, consumer), (1, producer)])
            assert taken == [42]

    def test_reads_remain_consistent_across_migration(self):
        """A reader polling through both migrations never sees the register
        go backwards (per-process monotonicity across the switch)."""
        cluster, rts = make_hybrid(seed=13)
        with cluster:
            handles = {}
            observed = []

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Register, (0,))

            def writer():
                proc = cluster.sim.current_process
                for _ in range(30):
                    rts.invoke(proc, handles["c"], "add", (1,))
                    proc.hold(0.001)

            def reader():
                proc = cluster.sim.current_process
                for _ in range(60):
                    observed.append(rts.invoke(proc, handles["c"], "read"))
                    proc.hold(0.0005)

            def migrator():
                proc = cluster.sim.current_process
                proc.hold(0.008)
                rts.migrate(proc, handles["c"], "primary-update")
                proc.hold(0.01)
                rts.migrate(proc, handles["c"], "broadcast")

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(1, writer), (2, reader), (3, migrator)])
            assert observed == sorted(observed), observed
            assert observed[-1] <= 30


class TestMigrationRaces:
    def test_ack_from_a_crashed_node_is_not_double_counted(self):
        """A secondary whose ack is in flight when it crashes must release
        its debt exactly once: the crash listener frees it, and the
        late-delivered ack must then be ignored (not complete the fan-out
        while live secondaries are still applying)."""
        cluster, rts = make_hybrid(n=4, seed=41)
        with cluster:
            txn_id = rts.new_transaction(2, destinations=[1, 2])
            rts._on_node_crash(1)
            assert rts._transactions[txn_id].remaining == 1
            # The crashed node's ack arrives anyway (it left the wire before
            # the crash): no further decrement.
            rts._on_ack(0, {"txn_id": txn_id, "node": 1})
            assert rts._transactions[txn_id].remaining == 1
            # The live secondary's ack completes the transaction.
            rts._on_ack(0, {"txn_id": txn_id, "node": 2})
            assert rts._transactions[txn_id].remaining == 0

    def test_concurrent_migrate_calls_perform_one_migration(self):
        """A second migrate() issued while the first is suspended in its
        freeze/snapshot phase (epoch not yet bumped) must be refused, not
        run a duplicate freeze + switch."""
        cluster, rts = make_hybrid(n=4, seed=43)
        with cluster:
            handles = {}
            outcomes = {}

            def main():
                proc = cluster.sim.current_process
                # Primary lives on node 1, so a migrator on node 0 must
                # freeze it via RPC — a real suspension window.
                handles["p"] = rts.create_object(proc, Register, (5,),
                                                 policy="primary-invalidate")

            def migrator(name, delay):
                def body():
                    proc = cluster.sim.current_process
                    proc.hold(delay)
                    outcomes[name] = rts.migrate(proc, handles["p"],
                                                 "broadcast")
                return body

            run_threads(cluster, [(1, main)])
            run_threads(cluster, [(0, migrator("first", 0.001)),
                                  (2, migrator("second", 0.00101))])
            assert outcomes == {"first": True, "second": False}
            assert rts.stats.migrations == 1
            assert rts._epoch_by_obj[handles["p"].obj_id] == 1
            assert rts.policy_of(handles["p"]) == "broadcast"
            for node in cluster.nodes:
                assert rts.managers[node.node_id].get(
                    handles["p"].obj_id).instance.value == 5


class TestAdaptiveMigration:
    def test_write_hot_object_migrates_read_mostly_stays(self):
        cluster, rts = make_hybrid(seed=2, default_policy="adaptive")
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["hot"] = rts.create_object(proc, Register, (0,),
                                                   name="hot")
                handles["cold"] = rts.create_object(proc, DictObject,
                                                    name="cold")
                rts.invoke(proc, handles["cold"], "store", ("k", 1))

            def client(node_id):
                def body():
                    proc = cluster.sim.current_process
                    for _ in range(40):
                        rts.invoke(proc, handles["hot"], "add", (1,))
                        rts.invoke(proc, handles["cold"], "lookup", ("k",))
                        proc.hold(0.0005)
                return body

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(n, client(n)) for n in range(4)])
            assert rts.policy_of(handles["hot"]) == "primary-invalidate"
            assert rts.policy_of(handles["cold"]) == "broadcast"
            assert rts.is_adaptive(handles["hot"])
            primary = rts.directory.primary_of(handles["hot"].obj_id)
            value = rts.managers[primary].get(handles["hot"].obj_id).instance.value
            assert value == 160
            assert rts.stats.migrations_to_primary == 1

    def test_adaptive_object_migrates_back_when_mix_flips(self):
        params = AdaptiveParams(min_accesses=12, check_interval=4)
        cluster, rts = make_hybrid(seed=5, default_policy="adaptive")
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Register, (0,),
                                                 name="c", policy=params)
                # Phase 1: write-heavy -> should move to the primary copy.
                # (Adaptive migrations run in a spawned thread, so yield a
                # moment for the controller's decision to take effect.)
                for _ in range(40):
                    rts.invoke(proc, handles["c"], "add", (1,))
                    proc.hold(0.0002)
                proc.hold(0.05)
                assert rts.policy_of(handles["c"]) == "primary-invalidate"
                # Phase 2: read-mostly -> should move back to broadcast.
                for _ in range(200):
                    rts.invoke(proc, handles["c"], "read")
                    proc.hold(0.0002)
                proc.hold(0.05)
                assert rts.policy_of(handles["c"]) == "broadcast"

            run_threads(cluster, [(0, main)])
            assert rts.stats.migrations_to_primary == 1
            assert rts.stats.migrations_to_broadcast == 1
            for node in cluster.nodes:
                assert rts.managers[node.node_id].get(
                    handles["c"].obj_id).instance.value == 40

    def test_adaptive_runs_are_deterministic(self):
        def run_once():
            cluster, rts = make_hybrid(seed=21, default_policy="adaptive")
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Register, (0,),
                                                 name="c")

            def client(node_id):
                def body():
                    proc = cluster.sim.current_process
                    for i in range(30):
                        if i % 5 == 0:
                            rts.invoke(proc, handles["c"], "read")
                        else:
                            rts.invoke(proc, handles["c"], "add", (1,))
                        proc.hold(0.001)
                return body

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(n, client(n)) for n in range(4)])
            digest = (
                [(m.target, m.epoch, m.primary_node) for m in rts.migrations],
                rts.policy_of(handles["c"]),
                cluster.sim.now,
            )
            cluster.shutdown()
            return digest

        assert run_once() == run_once()


class TestDeprecatedShims:
    def test_broadcast_shim_warns_once_and_behaves(self):
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=3))
        with cluster:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                rts = BroadcastRts(cluster)
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
            assert "HybridRts" in str(deprecations[0].message)
            assert isinstance(rts, HybridRts)
            assert rts.name == "broadcast-rts"
            assert rts.default_policy.name == "broadcast"

    def test_p2p_shim_warns_once_and_behaves(self):
        cluster = Cluster(ClusterConfig(num_nodes=3, seed=3),
                          network_type="switched")
        with cluster:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                rts = PointToPointRts(cluster, protocol="invalidation")
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
            assert "HybridRts" in str(deprecations[0].message)
            assert rts.name == "p2p-rts"
            assert rts.default_policy.name == "primary-invalidate"
            # The classic attribute names still resolve.
            assert rts.policy is rts.replication
            assert rts.protocol.name == "invalidation"

    def test_subclasses_of_the_shims_do_not_warn(self):
        from repro.baselines.central_server import CentralServerRts

        cluster = Cluster(ClusterConfig(num_nodes=2, seed=3),
                          network_type="switched")
        with cluster:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                CentralServerRts(cluster)
            assert not [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]

    def test_shim_matches_unified_runtime_exactly(self):
        """A fixed-policy HybridRts and the shim produce identical runs."""
        def run_with(factory):
            cluster = Cluster(ClusterConfig(num_nodes=3, seed=17))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                rts = factory(cluster)
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Register, (0,))

            def writer(node_id):
                def body():
                    proc = cluster.sim.current_process
                    for _ in range(8):
                        rts.invoke(proc, handles["c"], "add", (1,))
                return body

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(n, writer(n)) for n in range(3)])
            digest = (cluster.sim.now, cluster.network.stats.messages_sent,
                      rts.read_write_summary())
            cluster.shutdown()
            return digest

        shim = run_with(lambda c: BroadcastRts(c))
        unified = run_with(lambda c: HybridRts(c, default_policy="broadcast"))
        assert shim == unified


class TestReconciledObjectSummary:
    def test_per_object_rows_carry_policy_and_agree_with_shards(self):
        cluster, rts = make_hybrid(n=4, seed=19, num_shards=2)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                for i in range(4):
                    handles[i] = rts.create_object(proc, Register, (0,),
                                                   name=f"r{i}")
                handles["p"] = rts.create_object(proc, Register, (0,), name="p",
                                                 policy="primary-update")

            def client():
                proc = cluster.sim.current_process
                for i in range(4):
                    for _ in range(i + 1):
                        rts.invoke(proc, handles[i], "add", (1,))
                    rts.invoke(proc, handles[i], "read")
                rts.invoke(proc, handles["p"], "add", (1,))

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(2, client)])

            summary = rts.read_write_summary()
            rows = summary["per_object"]
            assert set(rows) == {"r0", "r1", "r2", "r3", "p"}
            for i in range(4):
                assert rows[f"r{i}"]["writes"] == i + 1
                assert rows[f"r{i}"]["reads"] == 1
                assert rows[f"r{i}"]["policy"] == "broadcast"
                assert rows[f"r{i}"]["shard"] == rts.shard_of(handles[i])
            assert rows["p"]["policy"] == "primary-update"
            assert "shard" not in rows["p"]

            # Reconciliation: per-shard write counters are exactly the
            # per-object rows grouped by shard — no independent aggregation.
            per_shard = {shard: stats.writes
                         for shard, stats in rts.router.shard_stats.items()}
            regrouped = {shard: 0 for shard in per_shard}
            for i in range(4):
                regrouped[rows[f"r{i}"]["shard"]] += rows[f"r{i}"]["writes"]
            assert regrouped == per_shard

    def test_guard_retries_do_not_double_count_shard_writes(self):
        """A guarded write that retries is one write invocation in both the
        per-object and the per-shard counters (the seed disagreed here)."""
        cluster, rts = make_hybrid(n=2, seed=23)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["cell"] = rts.create_object(proc, GuardedCell,
                                                    name="cell")

            def consumer():
                proc = cluster.sim.current_process
                rts.invoke(proc, handles["cell"], "take")

            def producer():
                proc = cluster.sim.current_process
                proc.hold(0.01)
                rts.invoke(proc, handles["cell"], "put", (1,))

            run_threads(cluster, [(0, main)])
            run_threads(cluster, [(1, consumer), (0, producer)])
            obj_id = handles["cell"].obj_id
            assert rts.stats.guard_retries >= 1
            assert rts.stats.per_object_writes[obj_id] == 2  # take + put
            assert rts.router.shard_stats[0].writes == 2

    def test_migrations_surface_in_summaries(self):
        cluster, rts = make_hybrid(seed=29)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, Register, (0,), name="c")
                rts.invoke(proc, handles["c"], "add", (1,))
                rts.migrate(proc, handles["c"], "primary-invalidate")

            run_threads(cluster, [(0, main)])
            summary = rts.read_write_summary()
            assert summary["migrations"]["total"] == 1
            assert summary["migrations"]["to_primary"] == 1
            assert summary["migrations"]["log"] == [
                ("c", "primary-invalidate", 0)]
            assert summary["per_object"]["c"]["policy"] == "primary-invalidate"
            assert rts.router.shard_stats[0].migrations == 1


class TestOrcaPolicySurface:
    def test_new_object_policy_and_bound_migrate(self):
        def main(proc):
            ledger = proc.new_object(IntObject, 0, name="ledger",
                                     policy="primary-invalidate")
            cache = proc.new_object(DictObject, name="cache")
            cache.store("k", 1)
            ledger.add(5)
            policies = [ledger.policy, cache.policy]
            moved = ledger.migrate("broadcast")
            policies.append(ledger.policy)
            return policies, moved, ledger.add(2)

        program = OrcaProgram(main, ClusterConfig(num_nodes=3, seed=31),
                              rts="hybrid")
        result = program.run()
        policies, moved, value = result.value
        assert policies == ["primary-invalidate", "broadcast", "broadcast"]
        assert moved is True
        assert value == 7

    def test_adaptive_program_kind(self):
        def main(proc):
            counter = proc.new_object(IntObject, 0)
            for _ in range(40):
                counter.add(1)
            return counter.policy, counter.read()

        result = OrcaProgram(main, ClusterConfig(num_nodes=4, seed=37),
                             rts="adaptive").run()
        policy, value = result.value
        assert policy == "primary-invalidate"
        assert value == 40
        assert result.rts_name == "adaptive-rts"
