"""Unit tests for the management-policy spectrum and its coercion helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rts.policy import (
    FIXED_POLICIES,
    AdaptiveParams,
    AdaptivePolicy,
    BroadcastReplicated,
    PrimaryCopyInvalidate,
    PrimaryCopyUpdate,
    management_policy,
)
from repro.rts.stats import AccessStats


class TestFixedPolicies:
    def test_spectrum_points_and_mechanisms(self):
        assert FIXED_POLICIES["broadcast"].mechanism == "broadcast"
        assert FIXED_POLICIES["primary-invalidate"].mechanism == "primary"
        assert FIXED_POLICIES["primary-update"].mechanism == "primary"
        assert FIXED_POLICIES["primary-invalidate"].protocol == "invalidation"
        assert FIXED_POLICIES["primary-update"].protocol == "update"
        assert FIXED_POLICIES["broadcast"].protocol is None

    def test_coercion_from_names_and_instances(self):
        assert management_policy("broadcast") is FIXED_POLICIES["broadcast"]
        assert management_policy("primary-update") is FIXED_POLICIES["primary-update"]
        concrete = PrimaryCopyInvalidate()
        assert management_policy(concrete) is concrete
        default = BroadcastReplicated()
        assert management_policy(None, default=default) is default

    def test_coercion_of_adaptive_forms(self):
        assert isinstance(management_policy("adaptive"), AdaptivePolicy)
        params = AdaptiveParams(broadcast_ratio=5.0)
        from_params = management_policy(params)
        assert isinstance(from_params, AdaptivePolicy)
        assert from_params.params.broadcast_ratio == 5.0
        from_mapping = management_policy({"primary_ratio": 0.5})
        assert from_mapping.params.primary_ratio == 0.5

    def test_rejects_unknown_spellings(self):
        with pytest.raises(ConfigurationError):
            management_policy("quantum")
        with pytest.raises(ConfigurationError):
            management_policy(3.14)
        with pytest.raises(ConfigurationError):
            management_policy(None)  # no default given


class TestAdaptiveParamsValidation:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            AdaptiveParams(broadcast_ratio=1.0, primary_ratio=2.0)

    def test_primary_policy_must_be_primary(self):
        with pytest.raises(ConfigurationError):
            AdaptiveParams(primary_policy="broadcast")
        with pytest.raises(ConfigurationError):
            AdaptiveParams(primary_policy="bogus")

    def test_counter_bounds(self):
        with pytest.raises(ConfigurationError):
            AdaptiveParams(min_accesses=0)
        with pytest.raises(ConfigurationError):
            AdaptiveParams(decay=1.5)


class TestAdaptiveDecisions:
    def make(self, **kwargs):
        return AdaptivePolicy(AdaptiveParams(min_accesses=10, **kwargs))

    def window(self, reads, writes):
        stats = AccessStats()
        for _ in range(reads):
            stats.note_read()
        for _ in range(writes):
            stats.note_write()
        return stats

    def test_no_decision_before_min_accesses(self):
        controller = self.make()
        assert controller.desired(self.window(5, 1), "broadcast") is None

    def test_write_heavy_object_moves_to_primary(self):
        controller = self.make()
        assert (controller.desired(self.window(2, 20), "broadcast")
                == "primary-invalidate")

    def test_read_mostly_object_moves_to_broadcast(self):
        controller = self.make()
        assert (controller.desired(self.window(30, 2), "primary-invalidate")
                == "broadcast")

    def test_hysteresis_gap_keeps_object_in_place(self):
        controller = self.make(broadcast_ratio=3.0, primary_ratio=1.0)
        between = self.window(20, 10)  # ratio 2.0: inside the gap
        assert controller.desired(between, "broadcast") is None
        assert controller.desired(between, "primary-invalidate") is None

    def test_no_move_to_the_policy_already_running(self):
        controller = self.make()
        assert controller.desired(self.window(30, 1), "broadcast") is None
        assert (controller.desired(self.window(0, 30), "primary-invalidate")
                is None)

    def test_primary_flavour_is_configurable(self):
        controller = self.make(primary_policy="primary-update")
        assert (controller.desired(self.window(0, 30), "broadcast")
                == "primary-update")

    def test_due_follows_check_interval(self):
        controller = AdaptivePolicy(AdaptiveParams(check_interval=4))
        stats = AccessStats()
        due = []
        for i in range(1, 9):
            stats.note_read()
            due.append(controller.due(stats))
        assert due == [False, False, False, True, False, False, False, True]

    def test_migrate_rejects_adaptive_target(self):
        # migrate() moves objects between fixed policies; adaptive control is
        # attached at creation time.
        from repro.amoeba.cluster import Cluster
        from repro.config import ClusterConfig
        from repro.orca.builtin_objects import IntObject
        from repro.rts.hybrid import HybridRts

        with Cluster(ClusterConfig(num_nodes=2, seed=1)) as cluster:
            rts = HybridRts(cluster)
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["c"] = rts.create_object(proc, IntObject, (0,))
                with pytest.raises(ConfigurationError):
                    rts.migrate(proc, handles["c"], "adaptive")

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            assert "c" in handles
