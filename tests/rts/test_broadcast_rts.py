"""Tests for the broadcast runtime system (full replication, ordered updates)."""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig, CostModel
from repro.rts.broadcast_rts import BroadcastRts
from repro.rts.consistency import ConsistencyChecker
from repro.rts.object_model import ObjectSpec, operation


class Register(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def assign(self, value):
        self.value = value
        return value

    @operation(write=True)
    def add(self, delta):
        self.value += delta
        return self.value


class Queue(ObjectSpec):
    def init(self):
        self.items = []
        self.closed = False

    @operation(write=True)
    def put(self, item):
        self.items.append(item)
        return len(self.items)

    @operation(write=True, guard=lambda self: bool(self.items) or self.closed)
    def get(self):
        if self.items:
            return self.items.pop(0)
        return None

    @operation(write=True)
    def close(self):
        self.closed = True

    @operation(write=False)
    def size(self):
        return len(self.items)


def make_rts(n=4, seed=2, record_history=False, loss_rate=0.0):
    cost_model = CostModel().with_overrides(network={"loss_rate": loss_rate})
    cluster = Cluster(ClusterConfig(num_nodes=n, seed=seed, cost_model=cost_model))
    return cluster, BroadcastRts(cluster, record_history=record_history)


class TestBroadcastRtsBasics:
    def test_object_replicated_on_all_nodes(self):
        cluster, rts = make_rts(4)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (5,), name="reg")

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            handle = handles["reg"]
            for node in cluster.nodes:
                assert rts.manager(node.node_id).has_valid_copy(handle.obj_id)
                replica = rts.manager(node.node_id).get(handle.obj_id)
                assert replica.instance.value == 5

    def test_reads_generate_no_network_traffic(self):
        cluster, rts = make_rts(3)
        with cluster:
            results = []

            def main():
                proc = cluster.sim.current_process
                handle = rts.create_object(proc, Register, (7,))
                baseline = cluster.network.stats.messages_sent
                for _ in range(100):
                    results.append(rts.invoke(proc, handle, "read"))
                results.append(cluster.network.stats.messages_sent - baseline)

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            assert results[:100] == [7] * 100
            assert results[100] == 0
            assert rts.stats.local_reads == 100

    def test_write_updates_every_replica(self):
        cluster, rts = make_rts(4)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handle = rts.create_object(proc, Register, (0,))
                handles["reg"] = handle
                rts.invoke(proc, handle, "assign", (42,))

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            for node in cluster.nodes:
                replica = rts.manager(node.node_id).get(handles["reg"].obj_id)
                assert replica.instance.value == 42
                assert replica.version == 1

    def test_write_returns_operation_result(self):
        cluster, rts = make_rts(2)
        with cluster:
            results = []

            def main():
                proc = cluster.sim.current_process
                handle = rts.create_object(proc, Register, (10,))
                results.append(rts.invoke(proc, handle, "add", (5,)))
                results.append(rts.invoke(proc, handle, "add", (3,)))

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            assert results == [15, 18]

    def test_writes_cost_more_time_than_reads(self):
        """From a machine that is not the sequencer, a write (two network hops)
        is far more expensive than a local read."""
        cluster, rts = make_rts(4)
        with cluster:
            durations = {}
            handles = {}

            def creator():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))

            def user():
                proc = cluster.sim.current_process
                while "reg" not in handles:
                    proc.hold(0.001)
                handle = handles["reg"]
                start = proc.local_time
                for _ in range(10):
                    rts.invoke(proc, handle, "read")
                durations["reads"] = proc.local_time - start
                proc.flush()
                start = cluster.sim.now
                for i in range(10):
                    rts.invoke(proc, handle, "assign", (i,))
                durations["writes"] = cluster.sim.now - start

            cluster.node(0).kernel.spawn_thread(creator)
            cluster.node(2).kernel.spawn_thread(user)
            cluster.run()
            assert durations["writes"] > 5 * durations["reads"]

    def test_concurrent_writers_from_different_nodes(self):
        cluster, rts = make_rts(4)
        with cluster:
            handles = {}
            done = []

            def main():
                proc = cluster.sim.current_process
                handle = rts.create_object(proc, Register, (0,))
                handles["reg"] = handle

            def writer(node_id, count):
                proc = cluster.sim.current_process
                handle = handles["reg"]
                for _ in range(count):
                    rts.invoke(proc, handle, "add", (1,))
                done.append(node_id)

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            for node in cluster.nodes:
                node.kernel.spawn_thread(writer, node.node_id, 25)
            cluster.run()
            assert len(done) == 4
            for node in cluster.nodes:
                replica = rts.manager(node.node_id).get(handles["reg"].obj_id)
                assert replica.instance.value == 100
                assert replica.version == 100

    def test_remote_node_sees_created_object(self):
        """A process on another machine can use an object created elsewhere,
        even if it starts before the create broadcast arrives."""
        cluster, rts = make_rts(3)
        with cluster:
            handles = {}
            observed = []

            def creator():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (123,))

            def reader():
                proc = cluster.sim.current_process
                # Busy-wait until the handle exists (the creator runs concurrently).
                while "reg" not in handles:
                    proc.hold(0.0001)
                observed.append(rts.invoke(proc, handles["reg"], "read"))

            cluster.node(0).kernel.spawn_thread(creator)
            cluster.node(2).kernel.spawn_thread(reader)
            cluster.run()
            assert observed == [123]


class TestGuardedOperations:
    def test_guarded_get_blocks_until_put(self):
        cluster, rts = make_rts(3)
        with cluster:
            handles = {}
            log = []

            def main():
                proc = cluster.sim.current_process
                handles["q"] = rts.create_object(proc, Queue)

            def consumer():
                proc = cluster.sim.current_process
                while "q" not in handles:
                    proc.hold(0.0001)
                log.append(("got", rts.invoke(proc, handles["q"], "get"),
                            round(cluster.sim.now, 4)))

            def producer():
                proc = cluster.sim.current_process
                while "q" not in handles:
                    proc.hold(0.0001)
                proc.hold(0.5)
                rts.invoke(proc, handles["q"], "put", ("job",))

            cluster.node(0).kernel.spawn_thread(main)
            cluster.node(1).kernel.spawn_thread(consumer)
            cluster.node(2).kernel.spawn_thread(producer)
            cluster.run()
            assert log[0][1] == "job"
            assert log[0][2] >= 0.5
            assert rts.stats.guard_retries >= 1

    def test_close_releases_blocked_consumers(self):
        cluster, rts = make_rts(3)
        with cluster:
            handles = {}
            got = []

            def main():
                proc = cluster.sim.current_process
                handles["q"] = rts.create_object(proc, Queue)
                proc.hold(0.3)
                rts.invoke(proc, handles["q"], "close")

            def consumer():
                proc = cluster.sim.current_process
                while "q" not in handles:
                    proc.hold(0.0001)
                got.append(rts.invoke(proc, handles["q"], "get"))

            cluster.node(0).kernel.spawn_thread(main)
            cluster.node(1).kernel.spawn_thread(consumer)
            cluster.node(2).kernel.spawn_thread(consumer)
            cluster.run()
            assert got == [None, None]


class TestSequentialConsistency:
    def test_history_checks_pass(self):
        cluster, rts = make_rts(4, record_history=True)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))

            def worker(seedval):
                proc = cluster.sim.current_process
                while "reg" not in handles:
                    proc.hold(0.0001)
                handle = handles["reg"]
                for i in range(10):
                    rts.invoke(proc, handle, "read")
                    rts.invoke(proc, handle, "add", (seedval,))
                    proc.compute(50)
                    rts.invoke(proc, handle, "read")

            cluster.node(0).kernel.spawn_thread(main)
            for node in cluster.nodes:
                node.kernel.spawn_thread(worker, node.node_id + 1)
            cluster.run()
            checker = ConsistencyChecker(rts.history)
            handle = handles["reg"]
            checker.check_all(replay={handle.obj_id: (Register, (0,))})

    def test_write_order_identical_across_nodes_under_loss(self):
        cluster, rts = make_rts(4, record_history=True, loss_rate=0.1)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))

            def writer(value):
                proc = cluster.sim.current_process
                while "reg" not in handles:
                    proc.hold(0.0001)
                for i in range(10):
                    rts.invoke(proc, handles["reg"], "add", (value,))

            cluster.node(0).kernel.spawn_thread(main)
            for node in cluster.nodes:
                node.kernel.spawn_thread(writer, node.node_id + 1)
            cluster.run()
            ConsistencyChecker(rts.history).check_write_order_agreement()
            # Final state identical everywhere.
            values = {
                rts.manager(n.node_id).get(handles["reg"].obj_id).instance.value
                for n in cluster.nodes
            }
            assert len(values) == 1
