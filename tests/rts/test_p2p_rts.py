"""Tests for the point-to-point runtime system (primary copy, inv/update, dynamic replication)."""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig, CostModel, ReplicationParams
from repro.errors import ConfigurationError
from repro.rts.object_model import ObjectSpec, operation
from repro.rts.p2p.runtime import PointToPointRts


class Register(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def assign(self, value):
        self.value = value
        return value

    @operation(write=True)
    def add(self, delta):
        self.value += delta
        return self.value


def make_rts(n=4, seed=3, protocol="update", dynamic=True, everywhere=False,
             network_type="switched", replication_params=None):
    overrides = {}
    if replication_params is not None:
        overrides["replication"] = replication_params
    cost_model = CostModel().with_overrides(**overrides) if overrides else CostModel()
    cluster = Cluster(ClusterConfig(num_nodes=n, seed=seed, cost_model=cost_model),
                      network_type=network_type)
    rts = PointToPointRts(cluster, protocol=protocol, dynamic_replication=dynamic,
                          replicate_everywhere=everywhere)
    return cluster, rts


def run_program(cluster, bodies):
    """Spawn each (node_id, callable) and run the cluster to completion."""
    for node_id, body in bodies:
        cluster.node(node_id).kernel.spawn_thread(body)
    cluster.run()


class TestCreationAndPlacement:
    def test_primary_lives_on_creating_node(self):
        cluster, rts = make_rts(3)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (1,))

            run_program(cluster, [(2, main)])
            obj_id = handles["reg"].obj_id
            assert rts.directory.primary_of(obj_id) == 2
            assert rts.managers[2].has_valid_copy(obj_id)
            assert not rts.managers[0].has_valid_copy(obj_id)

    def test_unknown_protocol_rejected(self):
        cluster, _ = make_rts(2)
        cluster.shutdown()
        cluster2 = Cluster(ClusterConfig(num_nodes=2, seed=1), network_type="switched")
        with cluster2:
            with pytest.raises(ConfigurationError):
                PointToPointRts(cluster2, protocol="bogus")

    def test_replicate_everywhere_installs_all_copies(self):
        cluster, rts = make_rts(4, everywhere=True, dynamic=False)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (9,))

            run_program(cluster, [(0, main)])
            obj_id = handles["reg"].obj_id
            for node in cluster.nodes:
                assert rts.managers[node.node_id].has_valid_copy(obj_id)
            assert rts.directory.copyset_of(obj_id) == {0, 1, 2, 3}


class TestReadsAndWrites:
    def _setup_shared_register(self, cluster, rts, creator_node=0, value=0):
        handles = {}

        def main():
            proc = cluster.sim.current_process
            handles["reg"] = rts.create_object(proc, Register, (value,))

        run_program(cluster, [(creator_node, main)])
        return handles["reg"]

    def test_remote_read_goes_to_primary(self):
        cluster, rts = make_rts(3, dynamic=False)
        with cluster:
            handle = self._setup_shared_register(cluster, rts, creator_node=0, value=11)
            results = []

            def reader():
                proc = cluster.sim.current_process
                results.append(rts.invoke(proc, handle, "read"))

            run_program(cluster, [(2, reader)])
            assert results == [11]
            assert rts.stats.remote_reads == 1
            assert cluster.network.stats.messages_sent >= 2  # request + reply

    def test_local_read_at_primary_is_free_of_traffic(self):
        cluster, rts = make_rts(3, dynamic=False)
        with cluster:
            handle = self._setup_shared_register(cluster, rts, creator_node=1, value=5)
            baseline = cluster.network.stats.messages_sent
            results = []

            def reader():
                proc = cluster.sim.current_process
                for _ in range(50):
                    results.append(rts.invoke(proc, handle, "read"))

            run_program(cluster, [(1, reader)])
            assert results == [5] * 50
            assert cluster.network.stats.messages_sent == baseline

    def test_remote_write_applies_at_primary(self):
        cluster, rts = make_rts(3, dynamic=False)
        with cluster:
            handle = self._setup_shared_register(cluster, rts, creator_node=0)
            results = []

            def writer():
                proc = cluster.sim.current_process
                results.append(rts.invoke(proc, handle, "assign", (77,)))

            run_program(cluster, [(2, writer)])
            assert results == [77]
            assert rts.managers[0].get(handle.obj_id).instance.value == 77
            assert rts.stats.rpc_writes == 1

    def test_interleaved_writes_from_all_nodes_serialise(self):
        cluster, rts = make_rts(4, dynamic=False)
        with cluster:
            handle = self._setup_shared_register(cluster, rts, creator_node=0)

            def writer(_node):
                def body():
                    proc = cluster.sim.current_process
                    for _ in range(10):
                        rts.invoke(proc, handle, "add", (1,))
                return body

            run_program(cluster, [(n, writer(n)) for n in range(4)])
            assert rts.managers[0].get(handle.obj_id).instance.value == 40


class TestUpdateProtocol:
    def test_update_refreshes_secondaries(self):
        cluster, rts = make_rts(4, protocol="update", everywhere=True, dynamic=False)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))
                rts.invoke(proc, handles["reg"], "assign", (31,))

            run_program(cluster, [(0, main)])
            obj_id = handles["reg"].obj_id
            for node in cluster.nodes:
                replica = rts.managers[node.node_id].get(obj_id)
                assert replica.instance.value == 31
                assert not replica.locked
            assert rts.stats.updates_sent == 3

    def test_update_keeps_copies_readable_locally_afterwards(self):
        cluster, rts = make_rts(3, protocol="update", everywhere=True, dynamic=False)
        with cluster:
            handles = {}
            results = []

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))
                rts.invoke(proc, handles["reg"], "assign", (8,))
                proc.hold(0.1)

            def reader():
                proc = cluster.sim.current_process
                while "reg" not in handles:
                    proc.hold(0.001)
                proc.hold(0.05)
                baseline = cluster.network.stats.messages_sent
                results.append(rts.invoke(proc, handles["reg"], "read"))
                results.append(cluster.network.stats.messages_sent - baseline)

            run_program(cluster, [(0, main), (2, reader)])
            assert results[0] == 8
            assert results[1] == 0  # read served from the local secondary copy


class TestInvalidationProtocol:
    def test_invalidation_discards_secondaries(self):
        cluster, rts = make_rts(4, protocol="invalidation", everywhere=True, dynamic=False)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))
                rts.invoke(proc, handles["reg"], "assign", (12,))

            run_program(cluster, [(0, main)])
            obj_id = handles["reg"].obj_id
            assert rts.managers[0].get(obj_id).instance.value == 12
            for node_id in (1, 2, 3):
                assert not rts.managers[node_id].has_valid_copy(obj_id)
            assert rts.directory.copyset_of(obj_id) == {0}
            assert rts.stats.invalidations_sent == 3

    def test_read_after_invalidation_fetches_from_primary(self):
        cluster, rts = make_rts(3, protocol="invalidation", everywhere=True, dynamic=False)
        with cluster:
            handles = {}
            results = []

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))
                rts.invoke(proc, handles["reg"], "assign", (64,))
                proc.hold(0.2)

            def reader():
                proc = cluster.sim.current_process
                while "reg" not in handles:
                    proc.hold(0.001)
                proc.hold(0.1)
                results.append(rts.invoke(proc, handles["reg"], "read"))

            run_program(cluster, [(0, main), (2, reader)])
            assert results == [64]
            assert rts.stats.remote_reads >= 1


class TestDynamicReplication:
    def test_read_heavy_node_acquires_copy(self):
        params = ReplicationParams(replicate_threshold=4.0, drop_threshold=1.0,
                                   min_accesses=6)
        cluster, rts = make_rts(3, dynamic=True, replication_params=params)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (3,))

            def reader():
                proc = cluster.sim.current_process
                while "reg" not in handles:
                    proc.hold(0.001)
                for _ in range(30):
                    rts.invoke(proc, handles["reg"], "read")
                    proc.compute(10)

            run_program(cluster, [(0, main), (2, reader)])
            obj_id = handles["reg"].obj_id
            assert rts.managers[2].has_valid_copy(obj_id)
            assert 2 in rts.directory.copyset_of(obj_id)
            assert rts.policy.stats.copies_fetched >= 1
            # Once the copy exists, later reads are local.
            assert rts.stats.local_reads > 0

    def test_write_heavy_node_drops_its_copy(self):
        params = ReplicationParams(replicate_threshold=4.0, drop_threshold=1.0,
                                   min_accesses=6)
        cluster, rts = make_rts(3, dynamic=True, everywhere=True,
                                replication_params=params)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))

            def writer():
                proc = cluster.sim.current_process
                while "reg" not in handles:
                    proc.hold(0.001)
                for i in range(30):
                    rts.invoke(proc, handles["reg"], "add", (1,))

            run_program(cluster, [(0, main), (2, writer)])
            obj_id = handles["reg"].obj_id
            assert not rts.managers[2].has_valid_copy(obj_id)
            assert 2 not in rts.directory.copyset_of(obj_id)
            assert rts.policy.stats.copies_dropped >= 1

    def test_final_value_correct_despite_replication_churn(self):
        cluster, rts = make_rts(4, dynamic=True)
        with cluster:
            handles = {}

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (0,))

            def mixed(node_id):
                def body():
                    proc = cluster.sim.current_process
                    while "reg" not in handles:
                        proc.hold(0.001)
                    for i in range(20):
                        rts.invoke(proc, handles["reg"], "read")
                        if i % 4 == node_id % 4:
                            rts.invoke(proc, handles["reg"], "add", (1,))
                        proc.compute(20)
                return body

            run_program(cluster, [(0, main)] + [(n, mixed(n)) for n in range(4)])
            obj_id = handles["reg"].obj_id
            assert rts.managers[rts.directory.primary_of(obj_id)].get(obj_id).instance.value == 20


class TestEthernetAlsoWorks:
    def test_p2p_rts_runs_on_broadcast_capable_network(self):
        cluster, rts = make_rts(3, network_type="ethernet", dynamic=False)
        with cluster:
            handles = {}
            results = []

            def main():
                proc = cluster.sim.current_process
                handles["reg"] = rts.create_object(proc, Register, (2,))

            def user():
                proc = cluster.sim.current_process
                while "reg" not in handles:
                    proc.hold(0.001)
                results.append(rts.invoke(proc, handles["reg"], "add", (5,)))

            run_program(cluster, [(0, main), (1, user)])
            assert results == [7]
