"""Shard moves under failure: cross-group switches racing sequencer crashes.

A shard move rides *two* broadcast groups — a drain switch in the source
order and an arrival marker in the destination order — so it must inherit
exactly-once, totally-ordered delivery across a sequencer crash in either
group.  Mirroring ``test_migration_failures.py``: randomized multi-writer
workloads (hypothesis-driven seeds and move offsets) whose observable state
must show **no lost and no doubly-applied write** and per-client FIFO order,
while the source or the destination group's sequencer crashes mid-move.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.rts.consistency import ConsistencyChecker, HistoryRecorder
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

NUM_NODES = 4
CLIENTS_PER_NODE = 2
OPS_PER_CLIENT = 10
#: The crasher fires at this virtual time; move-start offsets around it are
#: what hypothesis explores.
CRASH_AT = 0.006


class AppendLog(ObjectSpec):
    """An order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)

    @operation(write=False)
    def snapshot(self):
        return list(self.items)


class Counter(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, delta):
        self.value += delta
        return self.value


def run_crash_shard_move(seed, move_offset, crash_group=None, batching=None):
    """One randomized run: writers on every surviving node, a cross-group
    move of the hot log racing a sequencer crash in ``crash_group`` (0 =
    source, 1 = destination, None = no crash); returns observable state."""
    import random

    cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast", num_shards=2,
                    placement={"log": 0, "counter": 1}, batching=batching,
                    record_history=True)
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        handles["log"] = rts.create_object(proc, AppendLog, name="log")
        handles["counter"] = rts.create_object(proc, Counter, (0,),
                                               name="counter")

    def client(node_id, client_id):
        proc = cluster.sim.current_process
        rng = random.Random(f"{seed}/{node_id}/{client_id}")
        for k in range(OPS_PER_CLIENT):
            rts.invoke(proc, handles["log"], "append",
                       ((node_id, client_id, k),))
            if rng.random() < 0.4:
                rts.invoke(proc, handles["counter"], "add", (1,))
            proc.hold(rng.random() * 0.002)

    def crasher():
        proc = cluster.sim.current_process
        proc.hold(CRASH_AT)
        if crash_group is not None:
            group = rts.router.group_for(crash_group)
            cluster.node(group.sequencer_node_id).crash()

    def mover():
        proc = cluster.sim.current_process
        proc.hold(CRASH_AT + move_offset)
        rts.move_shard(proc, handles["log"], 1)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    # The initial seats are node 0 (shard 0) and node 1 (shard 1); no crash
    # can happen before CRASH_AT, so the victim is known at spawn time.
    crashed_node = (rts.router.group_for(crash_group).sequencer_node_id
                    if crash_group is not None else None)
    for node in cluster.nodes:
        if node.node_id == crashed_node:
            continue  # a crashed node's processes would just stop
        for client_id in range(CLIENTS_PER_NODE):
            node.kernel.spawn_thread(client, node.node_id, client_id)
    # The mover runs on node 2, which never hosts an initial seat.
    cluster.node(2).kernel.spawn_thread(mover)
    cluster.node(3).kernel.spawn_thread(crasher)
    cluster.run()

    reference = next(n.node_id for n in cluster.nodes if n.alive)
    logs = {
        node.node_id: [tuple(item) for item in rts.managers[node.node_id]
                       .get(handles["log"].obj_id).instance.items]
        for node in cluster.nodes if node.alive
    }
    counters = {
        node.node_id: rts.managers[node.node_id].get(
            handles["counter"].obj_id).instance.value
        for node in cluster.nodes if node.alive
    }
    state = {
        "log": logs[reference],
        "logs": logs,
        "counters": counters,
        "elections": sum(g.stats.elections for g in rts.router.groups),
        "shard": rts.shard_of(handles["log"]),
        "moves": [(m.src, m.dst) for m in rts.shard_moves],
        "epoch": rts._epoch_by_obj.get(handles["log"].obj_id, 0),
        "history": rts.history,
        "crashed": crashed_node,
    }
    cluster.shutdown()
    return state


def check_write_histories(state):
    """Surviving machines applied identical write sequences per object; the
    crashed machine's (partial) history is a prefix of that agreed order."""
    history = state["history"]
    crashed = state["crashed"]
    survivors = HistoryRecorder(enabled=True)
    survivors.writes = {nid: objects for nid, objects in history.writes.items()
                        if nid != crashed}
    survivors.reads = history.reads
    ConsistencyChecker(survivors).check_write_order_agreement()
    ConsistencyChecker(survivors).check_process_monotonicity()
    if crashed in history.writes:
        reference_node = next(iter(survivors.writes))
        for obj_id, records in history.writes[crashed].items():
            ops = [(r.seqno, r.op_name, r.args) for r in records]
            full = [(r.seqno, r.op_name, r.args)
                    for r in survivors.writes[reference_node].get(obj_id, [])]
            assert ops == full[:len(ops)], (
                f"crashed node's history of object {obj_id} is not a prefix")


def assert_no_lost_or_duplicated_writes(state):
    """Every client's appends applied exactly once, in that client's order."""
    per_client = {}
    for node_id, client_id, k in state["log"]:
        per_client.setdefault((node_id, client_id), []).append(k)
    expected = {(n, c) for n in range(NUM_NODES)
                for c in range(CLIENTS_PER_NODE) if n != state["crashed"]}
    assert set(per_client) == expected
    for client, ks in sorted(per_client.items()):
        assert ks == list(range(OPS_PER_CLIENT)), (
            f"client {client}: appends lost, duplicated or reordered: {ks}")
    # Every surviving replica agrees on the whole sequence.
    for node_id, log in state["logs"].items():
        assert log == state["log"], f"node {node_id} diverged"


class TestShardMoveDuringSequencerCrash:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           move_offset=st.sampled_from([-0.002, -0.0005, 0.0, 0.0005]))
    def test_source_sequencer_crash_keeps_exactly_once_fifo(self, seed,
                                                            move_offset):
        """The drain switch (and the pre-move writes it fences) must survive
        the *source* group's sequencer dying mid-move."""
        state = run_crash_shard_move(seed, move_offset, crash_group=0)
        assert state["shard"] == 1
        assert state["moves"] == [(0, 1)]
        assert_no_lost_or_duplicated_writes(state)
        values = set(state["counters"].values())
        assert len(values) == 1, state["counters"]
        check_write_histories(state)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           move_offset=st.sampled_from([-0.002, -0.0005, 0.0, 0.0005]))
    def test_destination_sequencer_crash_keeps_exactly_once_fifo(self, seed,
                                                                 move_offset):
        """Re-issued and fresh writes enter the *destination* order through
        its crash + election without loss or duplication."""
        state = run_crash_shard_move(seed, move_offset, crash_group=1)
        assert state["shard"] == 1
        assert state["moves"] == [(0, 1)]
        assert_no_lost_or_duplicated_writes(state)
        values = set(state["counters"].values())
        assert len(values) == 1, state["counters"]
        check_write_histories(state)

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_batched_writes_move_cleanly_across_crash(self, seed):
        """Write batching composes with the cross-group barrier: stale
        entries inside a batch drop-and-reissue as one decision at every
        member, even across the source sequencer's crash."""
        state = run_crash_shard_move(seed, move_offset=0.0, crash_group=0,
                                     batching={"max_batch": 4})
        assert state["shard"] == 1
        assert_no_lost_or_duplicated_writes(state)
        check_write_histories(state)

    def test_move_without_crash_is_quiet(self):
        """Control run: no crash, no election — the two-group switch alone
        does not disturb either group."""
        state = run_crash_shard_move(seed=77, move_offset=0.0)
        assert state["elections"] == 0
        assert state["shard"] == 1
        assert state["epoch"] == 1
        assert_no_lost_or_duplicated_writes(state)
        check_write_histories(state)
