"""Tests for the shared-object type model."""

from __future__ import annotations

import pytest

from repro.errors import RtsError, UnknownOperationError
from repro.rts.object_model import (
    RETRY,
    ObjectSpec,
    execute_operation,
    operation,
    validate_spec,
)


class Counter(ObjectSpec):
    def init(self, start=0):
        self.value = start
        self.history = []

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def increment(self, by=1):
        self.value += by
        self.history.append(by)
        return self.value


class BoundedCounter(Counter):
    @operation(write=True, guard=lambda self, by=1: self.value + by <= self.limit)
    def bounded_increment(self, by=1):
        self.value += by
        return self.value

    def init(self, start=0, limit=10):
        super().init(start)
        self.limit = limit


class TestOperationRegistry:
    def test_operations_collected(self):
        ops = Counter.operations()
        assert set(ops) == {"read", "increment"}
        assert not ops["read"].is_write
        assert ops["increment"].is_write

    def test_inherited_operations(self):
        ops = BoundedCounter.operations()
        assert set(ops) == {"read", "increment", "bounded_increment"}

    def test_unknown_operation_raises(self):
        with pytest.raises(UnknownOperationError):
            Counter.operation_def("nope")

    def test_validate_spec_rejects_non_spec(self):
        class NotASpec:
            pass

        with pytest.raises(RtsError):
            validate_spec(NotASpec)

    def test_validate_spec_rejects_empty(self):
        class Empty(ObjectSpec):
            pass

        with pytest.raises(RtsError):
            validate_spec(Empty)

    def test_validate_spec_accepts_counter(self):
        validate_spec(Counter)


class TestLifecycle:
    def test_create_runs_init(self):
        counter = Counter.create((5,))
        assert counter.value == 5

    def test_clone_is_independent(self):
        counter = Counter.create((1,))
        counter.increment(2)
        replica = counter.clone()
        assert replica.value == 3
        counter.increment(10)
        assert replica.value == 3
        assert replica.history == [2]

    def test_marshal_unmarshal_round_trip(self):
        counter = Counter.create((7,))
        counter.increment(1)
        state = counter.marshal_state()
        other = Counter.create((0,))
        other.unmarshal_state(state)
        assert other.value == 8
        assert other.history == [1]
        # Mutating the snapshot afterwards must not affect the object.
        state["value"] = 999
        assert other.value == 8

    def test_state_size_positive(self):
        assert Counter.create((3,)).state_size() > 0


class TestExecuteOperation:
    def test_read_and_write(self):
        counter = Counter.create((0,))
        inc = Counter.operation_def("increment")
        read = Counter.operation_def("read")
        assert execute_operation(counter, inc, (4,)) == 4
        assert execute_operation(counter, read, ()) == 4

    def test_guard_blocks_with_retry(self):
        counter = BoundedCounter.create((9, 10))
        op = BoundedCounter.operation_def("bounded_increment")
        assert execute_operation(counter, op, (1,)) == 10
        assert execute_operation(counter, op, (1,)) is RETRY
        assert counter.value == 10  # state untouched by the rejected call

    def test_retry_is_singleton(self):
        from repro.rts.object_model import _RetryType

        assert _RetryType() is RETRY
