"""Tests for the per-machine object manager and access statistics."""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig, ReplicationParams
from repro.errors import RtsError, UnknownObjectError
from repro.rts.manager import ObjectManager
from repro.rts.object_model import RETRY, ObjectSpec, operation
from repro.rts.stats import AccessStats, ReplicationDecider


class Register(ObjectSpec):
    def init(self, value=0):
        self.value = value

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def assign(self, value):
        self.value = value
        return value

    @operation(write=True, guard=lambda self: self.value > 0)
    def consume(self):
        self.value -= 1
        return self.value


@pytest.fixture
def manager():
    cluster = Cluster(ClusterConfig(num_nodes=1, seed=1))
    try:
        yield ObjectManager(cluster.node(0))
    finally:
        cluster.shutdown()


class TestObjectManager:
    def test_install_and_read(self, manager):
        manager.install(1, "reg", Register.create((5,)))
        result = manager.execute_read(1, Register.operation_def("read"), ())
        assert result == 5
        assert manager.stats.local_reads == 1

    def test_duplicate_install_rejected(self, manager):
        manager.install(1, "reg", Register.create())
        with pytest.raises(RtsError):
            manager.install(1, "reg", Register.create())

    def test_unknown_object_raises(self, manager):
        with pytest.raises(UnknownObjectError):
            manager.get(99)

    def test_apply_write_bumps_version(self, manager):
        manager.install(1, "reg", Register.create((0,)))
        manager.apply_write(1, Register.operation_def("assign"), (7,), local_origin=True)
        replica = manager.get(1)
        assert replica.version == 1
        assert replica.instance.value == 7
        assert manager.stats.local_writes_applied == 1

    def test_guard_failure_does_not_bump_version(self, manager):
        manager.install(1, "reg", Register.create((0,)))
        result = manager.apply_write(1, Register.operation_def("consume"), ())
        assert result is RETRY
        assert manager.get(1).version == 0
        assert manager.stats.guard_retries == 1

    def test_change_notification_fires_once(self, manager):
        manager.install(1, "reg", Register.create((0,)))
        calls = []
        manager.get(1).on_next_change(lambda: calls.append(1))
        manager.apply_write(1, Register.operation_def("assign"), (1,))
        manager.apply_write(1, Register.operation_def("assign"), (2,))
        assert calls == [1]

    def test_invalidate_and_discard(self, manager):
        manager.install(1, "reg", Register.create((0,)))
        manager.invalidate(1)
        assert not manager.has_valid_copy(1)
        with pytest.raises(RtsError):
            manager.execute_read(1, Register.operation_def("read"), ())
        manager.discard(1)
        assert len(manager) == 0


class TestAccessStats:
    def test_ratio(self):
        stats = AccessStats()
        for _ in range(8):
            stats.note_read()
        stats.note_write()
        assert stats.ratio == pytest.approx(8.0)

    def test_all_read_ratio_is_infinite(self):
        stats = AccessStats()
        stats.note_read()
        assert stats.ratio == float("inf")

    def test_no_access_ratio_is_zero(self):
        assert AccessStats().ratio == 0.0

    def test_decay(self):
        stats = AccessStats()
        for _ in range(10):
            stats.note_read()
        stats.decay(0.5)
        assert stats.reads == pytest.approx(5.0)
        assert stats.total_reads == 10


class TestReplicationDecider:
    def test_replicates_read_mostly_objects(self):
        decider = ReplicationDecider(ReplicationParams(min_accesses=4))
        for _ in range(10):
            decider.note_read(1, 0)
        decider.note_write(1, 0)
        assert decider.should_replicate(1, 0)

    def test_does_not_replicate_before_min_accesses(self):
        decider = ReplicationDecider(ReplicationParams(min_accesses=20))
        for _ in range(10):
            decider.note_read(1, 0)
        assert not decider.should_replicate(1, 0)

    def test_drops_write_heavy_objects(self):
        decider = ReplicationDecider(ReplicationParams(min_accesses=4))
        for _ in range(10):
            decider.note_write(1, 0)
        decider.note_read(1, 0)
        assert decider.should_drop(1, 0)
        assert not decider.should_replicate(1, 0)

    def test_hysteresis_band_keeps_status_quo(self):
        params = ReplicationParams(replicate_threshold=4.0, drop_threshold=1.0,
                                   min_accesses=4)
        decider = ReplicationDecider(params)
        # Ratio of 2 sits between the thresholds: neither replicate nor drop.
        for _ in range(8):
            decider.note_read(1, 0)
        for _ in range(4):
            decider.note_write(1, 0)
        assert not decider.should_replicate(1, 0)
        assert not decider.should_drop(1, 0)

    def test_per_node_statistics_are_independent(self):
        decider = ReplicationDecider(ReplicationParams(min_accesses=2))
        for _ in range(10):
            decider.note_read(1, 0)
            decider.note_write(1, 1)
        assert decider.should_replicate(1, 0)
        assert decider.should_drop(1, 1)
