"""Runtime-level shard rebalancing: moves, live growth, primary relocation.

These are the deterministic (crash-free) tests of the drain-and-switch
machinery; the failure cases — source or destination sequencer crashing
mid-move — live in ``test_rebalance_failures.py``.
"""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig, CostModel
from repro.errors import ConfigurationError, RtsError
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

NUM_NODES = 4


class Counter(ObjectSpec):
    def init(self, v=0):
        self.value = v

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, d):
        self.value += d
        return self.value


class AppendLog(ObjectSpec):
    """Order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)

    @operation(write=False)
    def snapshot(self):
        return list(self.items)


def make_rts(num_shards=2, seed=11, record_history=False, **kwargs):
    cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast",
                    num_shards=num_shards, record_history=record_history,
                    **kwargs)
    return cluster, rts


class TestMoveShard:
    def test_move_under_concurrent_writers_keeps_exactly_once_fifo(self):
        cluster, rts = make_rts(record_history=True)
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            handles["log"] = rts.create_object(proc, AppendLog, name="log")

        def client(nid, cid):
            proc = cluster.sim.current_process
            for k in range(15):
                rts.invoke(proc, handles["log"], "append", ((nid, cid, k),))
                proc.hold(0.0004)

        def mover():
            proc = cluster.sim.current_process
            proc.hold(0.003)
            assert rts.move_shard(proc, handles["log"], 1)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        for node in cluster.nodes:
            for cid in range(2):
                node.kernel.spawn_thread(client, node.node_id, cid)
        cluster.node(2).kernel.spawn_thread(mover)
        cluster.run()

        assert rts.shard_of(handles["log"]) == 1
        items = rts.managers[0].get(handles["log"].obj_id).instance.items
        per_client = {}
        for nid, cid, k in items:
            per_client.setdefault((nid, cid), []).append(k)
        assert len(items) == NUM_NODES * 2 * 15  # exactly once
        for client_key, ks in per_client.items():
            assert ks == list(range(15)), (client_key, ks)
        for node in cluster.nodes:  # every replica agrees
            assert rts.managers[node.node_id].get(
                handles["log"].obj_id).instance.items == items
        # The destination group really carried the object's later writes.
        assert rts.router.group_for(1).stats.deliveries > 0
        from repro.rts.consistency import ConsistencyChecker
        ConsistencyChecker(rts.history).check_write_order_agreement()
        cluster.shutdown()

    def test_round_trip_move_restores_route_and_bumps_epochs(self):
        cluster, rts = make_rts()
        handles = {}
        facts = {}

        def main():
            proc = cluster.sim.current_process
            handle = rts.create_object(proc, Counter, (0,), name="c")
            handles["c"] = handle
            rts.invoke(proc, handle, "add", (1,))
            assert rts.move_shard(proc, handle, 1)
            rts.invoke(proc, handle, "add", (1,))
            assert rts.move_shard(proc, handle, 0)
            rts.invoke(proc, handle, "add", (1,))
            facts["value"] = rts.invoke(proc, handle, "read")

        cluster.node(0).kernel.spawn_thread(main)
        cluster.run()
        assert facts["value"] == 3
        assert rts.shard_of(handles["c"]) == 0
        assert rts._epoch_by_obj[handles["c"].obj_id] == 2
        assert rts.router.placement_epoch == 2
        assert rts.stats.shard_moves == 2
        assert [(m.src, m.dst) for m in rts.shard_moves] == [(0, 1), (1, 0)]
        cluster.shutdown()

    def test_noop_and_out_of_range_moves(self):
        cluster, rts = make_rts()
        handles = {}

        def main():
            proc = cluster.sim.current_process
            handle = rts.create_object(proc, Counter, (0,), name="c")
            handles["c"] = handle
            assert not rts.move_shard(proc, handle, rts.shard_of(handle))
            with pytest.raises(ConfigurationError):
                rts.move_shard(proc, handle, 7)

        cluster.node(0).kernel.spawn_thread(main)
        cluster.run()
        assert rts.stats.shard_moves == 0
        cluster.shutdown()

    def test_primary_managed_object_moves_without_broadcast(self):
        """A primary-copy object's move is pure routing bookkeeping."""
        cluster, rts = make_rts()
        handles = {}

        def main():
            proc = cluster.sim.current_process
            handle = rts.create_object(proc, Counter, (0,), name="p",
                                       policy="primary-invalidate")
            handles["p"] = handle
            shard = rts.shard_of(handle)
            deliveries_before = sum(g.stats.deliveries
                                    for g in rts.router.groups)
            assert rts.move_shard(proc, handle, 1 - shard)
            assert rts.shard_of(handle) == 1 - shard
            assert sum(g.stats.deliveries
                       for g in rts.router.groups) == deliveries_before
            rts.invoke(proc, handle, "add", (5,))
            assert rts.invoke(proc, handle, "read") == 5

        cluster.node(0).kernel.spawn_thread(main)
        cluster.run()
        assert rts.stats.shard_moves == 1
        cluster.shutdown()

    def test_stats_follow_the_object_after_a_move(self):
        """The bugfix: per-shard counters and the per-object shard column
        track the router's current view, not creation-time placement."""
        cluster, rts = make_rts()
        handles = {}

        def main():
            proc = cluster.sim.current_process
            handle = rts.create_object(proc, Counter, (0,), name="c")
            handles["c"] = handle
            src = rts.shard_of(handle)
            for _ in range(4):
                rts.invoke(proc, handle, "add", (1,))
            assert rts.move_shard(proc, handle, 1 - src)
            for _ in range(6):
                rts.invoke(proc, handle, "add", (1,))

        cluster.node(0).kernel.spawn_thread(main)
        cluster.run()
        src, dst = 0, 1  # object id 1 hashes to shard 0
        assert rts.router.shard_stats[src].writes == 4
        assert rts.router.shard_stats[dst].writes == 6
        rows = rts.read_write_summary()["per_object"]
        assert rows["c"]["writes"] == 10
        assert rows["c"]["shard"] == dst
        # Policy migration on top does not desync the shard column.

        def migrate():
            proc = cluster.sim.current_process
            rts.migrate(proc, handles["c"], "primary-invalidate")

        cluster.node(0).kernel.spawn_thread(migrate)
        cluster.run()
        rows = rts.read_write_summary()["per_object"]
        assert rows["c"]["policy"] == "primary-invalidate"
        assert rows["c"]["shard"] == dst
        cluster.shutdown()

    def test_rebalancing_summary_surfaces_in_reports(self):
        cluster, rts = make_rts()

        def main():
            proc = cluster.sim.current_process
            handle = rts.create_object(proc, Counter, (0,), name="c")
            rts.invoke(proc, handle, "add", (1,))
            rts.move_shard(proc, handle, 1)

        cluster.node(0).kernel.spawn_thread(main)
        cluster.run()
        digest = rts.read_write_summary()["rebalancing"]
        assert digest["moves"] == 1
        assert digest["placement_epoch"] == 1
        assert digest["log"] == [("c", 0, 1)]
        cluster.shutdown()


class TestAddShard:
    def test_add_shard_on_live_cluster_carries_traffic(self):
        cluster, rts = make_rts(num_shards=2)
        handles = {}

        def main():
            proc = cluster.sim.current_process
            handle = rts.create_object(proc, Counter, (0,), name="c")
            handles["c"] = handle
            for _ in range(5):
                rts.invoke(proc, handle, "add", (1,))
            shard = rts.add_shard()
            assert shard == 2
            assert rts.move_shard(proc, handle, shard)
            for _ in range(5):
                rts.invoke(proc, handle, "add", (1,))
            assert rts.invoke(proc, handle, "read") == 10

        cluster.node(1).kernel.spawn_thread(main)
        cluster.run()
        assert rts.router.num_shards == 3
        assert rts.stats.shards_added == 1
        # The fresh group sequenced the post-move writes.
        assert rts.router.group_for(2).stats.deliveries > 0
        # Seat chosen on the live node with the fewest seats (0 and 1 hold
        # the first two groups' seats).
        assert rts.router.sequencer_nodes()[2] == 2
        cluster.shutdown()

    def test_new_objects_hash_over_the_grown_shard_set(self):
        cluster, rts = make_rts(num_shards=2)
        shards = {}

        def main():
            proc = cluster.sim.current_process
            rts.add_shard()
            handles = [rts.create_object(proc, Counter, (0,), name=f"c{i}")
                       for i in range(3)]
            shards.update({h.name: rts.shard_of(h) for h in handles})

        cluster.node(0).kernel.spawn_thread(main)
        cluster.run()
        # Ids 1..3 hash over the grown range 0..2.
        assert sorted(shards.values()) == [0, 1, 2]
        cluster.shutdown()


class TestPrimaryRelocation:
    def test_primary_follows_heaviest_writer(self):
        cluster, rts = make_rts()
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            handles["c"] = rts.create_object(proc, Counter, (0,), name="c",
                                             policy="primary-update")

        def writer(nid, n):
            proc = cluster.sim.current_process
            for _ in range(n):
                rts.invoke(proc, handles["c"], "add", (1,))
                proc.hold(0.0004)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        cluster.node(3).kernel.spawn_thread(writer, 3, 20)
        cluster.node(1).kernel.spawn_thread(writer, 1, 5)
        cluster.run()

        def relocate():
            proc = cluster.sim.current_process
            assert rts.relocate_primary(proc, handles["c"])

        cluster.node(2).kernel.spawn_thread(relocate)
        cluster.run()
        obj_id = handles["c"].obj_id
        assert rts.directory.primary_of(obj_id) == 3
        assert rts.managers[3].get(obj_id).is_primary
        assert rts.stats.primary_relocations == 1
        assert rts.relocations == [(obj_id, 0, 3)]

        # Writes after the relocation land on the new primary, exactly once.
        def writer_after():
            proc = cluster.sim.current_process
            for _ in range(5):
                rts.invoke(proc, handles["c"], "add", (1,))
            assert rts.invoke(proc, handles["c"], "read") == 30

        cluster.node(3).kernel.spawn_thread(writer_after)
        cluster.run()
        cluster.shutdown()

    def test_relocation_during_writes_loses_nothing(self):
        cluster, rts = make_rts()
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            handles["c"] = rts.create_object(
                proc, Counter, (0,), name="c", policy="primary-update")

        def writer(nid, n):
            proc = cluster.sim.current_process
            for _ in range(n):
                rts.invoke(proc, handles["c"], "add", (1,))
                proc.hold(0.0005)

        def relocator():
            proc = cluster.sim.current_process
            proc.hold(0.006)
            rts.relocate_primary(proc, handles["c"], target=2)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        for node in cluster.nodes:
            node.kernel.spawn_thread(writer, node.node_id, 10)
        cluster.node(2).kernel.spawn_thread(relocator)
        cluster.run()

        def check():
            proc = cluster.sim.current_process
            assert rts.invoke(proc, handles["c"], "read") == 40

        cluster.node(1).kernel.spawn_thread(check)
        cluster.run()
        assert rts.directory.primary_of(handles["c"].obj_id) == 2
        cluster.shutdown()

    def test_relocation_rejects_broadcast_objects_and_dead_targets(self):
        cluster, rts = make_rts()
        handles = {}

        def main():
            proc = cluster.sim.current_process
            b = rts.create_object(proc, Counter, (0,), name="b")
            p = rts.create_object(proc, Counter, (0,), name="p",
                                  policy="primary-update")
            handles.update(b=b, p=p)
            with pytest.raises(RtsError):
                rts.relocate_primary(proc, b, target=1)
            cluster.node(3).crash()
            with pytest.raises(RtsError):
                rts.relocate_primary(proc, p, target=3)
            # No writes observed anywhere: nothing suggests a better seat.
            assert not rts.relocate_primary(proc, p)

        cluster.node(0).kernel.spawn_thread(main)
        cluster.run()
        cluster.shutdown()


class TestRebalanceController:
    """The background controller: plan -> move -> reset, driven by load."""

    def run_skewed(self, rebalance):
        cost = CostModel().with_overrides(cpu={"sequencing_cost": 2.0e-4})
        cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=5,
                                        cost_model=cost))
        rts = HybridRts(cluster, default_policy="broadcast", num_shards=2,
                        placement={"hot0": 0, "hot1": 0, "cold": 1},
                        rebalance=rebalance)
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            for name in ("hot0", "hot1", "cold"):
                handles[name] = rts.create_object(proc, Counter, (0,),
                                                  name=name)

        def client(nid):
            proc = cluster.sim.current_process
            for k in range(40):
                name = "cold" if k % 8 == 7 else ("hot0" if k % 2 else "hot1")
                rts.invoke(proc, handles[name], "add", (1,))
                proc.hold(0.0003)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        for node in cluster.nodes:
            node.kernel.spawn_thread(client, node.node_id)
        cluster.run()
        return cluster, rts, handles

    def test_controller_moves_hot_objects_off_the_hot_shard(self):
        cluster, rts, handles = self.run_skewed(
            rebalance={"interval": 0.002, "imbalance": 1.3, "min_writes": 16,
                       "max_moves": 2})
        assert rts.stats.shard_moves >= 1
        # The first move takes a hot object off the overloaded shard 0;
        # later rounds may shuffle any object to keep the loads level.
        first = rts.shard_moves[0]
        assert first.name in ("hot0", "hot1")
        assert (first.src, first.dst) == (0, 1)
        # The two hot objects ended up spread over both groups (possibly
        # with the cold one re-packed next to one of them).
        final = {name: rts.shard_of(handles[name])
                 for name in ("hot0", "hot1")}
        assert set(final.values()) == {0, 1}

        def check():
            proc = cluster.sim.current_process
            total = sum(rts.invoke(proc, handles[n], "read")
                        for n in handles)
            assert total == NUM_NODES * 40

        cluster.node(0).kernel.spawn_thread(check)
        cluster.run()
        cluster.shutdown()

    def test_move_cooldown_damps_repeat_moves(self):
        """Churn damping: with a cooldown spanning the whole run, the
        controller may move each object at most once, however many plan
        rounds fire on near-balanced load."""
        cluster, rts, handles = self.run_skewed(
            rebalance={"interval": 0.002, "imbalance": 1.1, "min_writes": 8,
                       "max_moves": 3, "cooldown": 10.0})
        names = [m.name for m in rts.shard_moves]
        assert rts.stats.shard_moves >= 1
        assert len(names) == len(set(names)), names
        # The predicate itself: a just-moved object reports in-cooldown.
        moved = rts.shard_moves[0]
        assert rts._in_move_cooldown(moved.obj_id)
        cluster.shutdown()

    def test_cooldown_expires_with_virtual_time(self):
        cluster, rts, handles = self.run_skewed(
            rebalance={"interval": 0.002, "imbalance": 1.3, "min_writes": 16,
                       "cooldown": 0.001})
        assert rts.stats.shard_moves >= 1
        moved = rts.shard_moves[0].obj_id
        # All moves are long past by the time the run drained.
        assert not rts._in_move_cooldown(moved)
        cluster.shutdown()

    def test_controller_runs_are_deterministic(self):
        first = self.run_skewed(rebalance={"interval": 0.002,
                                           "imbalance": 1.3,
                                           "min_writes": 16})
        second = self.run_skewed(rebalance={"interval": 0.002,
                                            "imbalance": 1.3,
                                            "min_writes": 16})
        moves_a = [(m.name, m.src, m.dst) for m in first[1].shard_moves]
        moves_b = [(m.name, m.src, m.dst) for m in second[1].shard_moves]
        assert moves_a == moves_b and moves_a
        first[0].shutdown()
        second[0].shutdown()

    def test_controller_grows_the_group_set_live(self):
        cluster, rts, handles = self.run_skewed(
            rebalance={"interval": 0.002, "imbalance": 1.3, "min_writes": 16,
                       "grow_to": 3})
        assert rts.router.num_shards == 3
        assert rts.stats.shards_added == 1
        cluster.shutdown()

    def test_controller_survives_its_host_node_crashing(self):
        """A dead machine cannot broadcast switches: the controller must bow
        out when its host crashes (and re-arm on a live node) instead of
        initiating a move whose drain switch would be silently dropped."""
        cost = CostModel().with_overrides(cpu={"sequencing_cost": 2.0e-4})
        cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=5,
                                        cost_model=cost))
        rts = HybridRts(cluster, default_policy="broadcast", num_shards=2,
                        placement={"hot0": 0, "hot1": 0, "cold": 1},
                        rebalance={"interval": 0.002, "imbalance": 1.3,
                                   "min_writes": 16, "max_moves": 2})
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            for name in ("hot0", "hot1", "cold"):
                handles[name] = rts.create_object(proc, Counter, (0,),
                                                  name=name)

        def client(nid):
            proc = cluster.sim.current_process
            for k in range(40):
                name = "cold" if k % 8 == 7 else ("hot0" if k % 2 else "hot1")
                rts.invoke(proc, handles[name], "add", (1,))
                proc.hold(0.0003)

        def crasher():
            proc = cluster.sim.current_process
            proc.hold(0.001)
            # Node 0 hosts both the controller and shard 0's sequencer.
            cluster.node(0).crash()

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        for node in cluster.nodes:
            if node.node_id == 0:
                continue
            node.kernel.spawn_thread(client, node.node_id)
        cluster.node(1).kernel.spawn_thread(crasher)
        cluster.run()

        # Every surviving client finished (no stranded half-move), and the
        # survivors agree on every counter.
        for name in ("hot0", "hot1", "cold"):
            values = {rts.managers[n.node_id].get(handles[name].obj_id)
                      .instance.value
                      for n in cluster.nodes if n.alive}
            assert len(values) == 1, (name, values)
        total = sum(next(iter({rts.managers[1].get(handles[name].obj_id)
                               .instance.value})) for name in handles)
        assert total == (NUM_NODES - 1) * 40
        cluster.shutdown()


class TestAdaptiveShardRecommendation:
    def test_adaptive_controller_moves_object_off_hot_shard(self):
        cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=9))
        rts = HybridRts(cluster,
                        default_policy={"rebalance_shards": True,
                                        "shard_imbalance": 1.5,
                                        "min_shard_writes": 16,
                                        # Policy thresholds parked out of
                                        # reach: this test isolates the
                                        # shard lever.
                                        "broadcast_ratio": 1e9,
                                        "primary_ratio": -1.0,
                                        "check_interval": 4,
                                        "min_accesses": 8},
                        num_shards=2,
                        placement={"hot": 0, "warm": 0, "cold": 1})
        handles = {}

        def setup():
            proc = cluster.sim.current_process
            for name in ("hot", "warm", "cold"):
                handles[name] = rts.create_object(proc, Counter, (0,),
                                                  name=name)

        def client(nid):
            proc = cluster.sim.current_process
            for k in range(30):
                name = "cold" if k % 10 == 9 else ("hot" if k % 3 else "warm")
                rts.invoke(proc, handles[name], "add", (1,))
                proc.hold(0.0003)

        cluster.node(0).kernel.spawn_thread(setup)
        cluster.run()
        for node in cluster.nodes:
            node.kernel.spawn_thread(client, node.node_id)
        cluster.run()
        assert rts.stats.shard_moves >= 1
        first = rts.shard_moves[0]
        assert first.name in ("hot", "warm") and first.src == 0
        # Policy never changed — the controller pulled the shard lever only.
        assert rts.stats.migrations == 0

        def check():
            proc = cluster.sim.current_process
            total = sum(rts.invoke(proc, handles[n], "read") for n in handles)
            assert total == NUM_NODES * 30

        cluster.node(0).kernel.spawn_thread(check)
        cluster.run()
        cluster.shutdown()
