"""``drain_node`` racing ``relocate_primary`` aimed at the draining node.

A drain evacuates every seat from the leaving machine and then retires
it.  A concurrent ``relocate_primary(..., target=leaving)`` would park a
seat right back on the machine that is about to go away — the runtime
refuses it (returns ``False``) for as long as the drain is in progress,
and these tests pin that refusal under live write traffic: the drain
completes with zero failure-path events, no seat ever lands on the
retired machine, and every write still applies exactly once.
"""

from __future__ import annotations

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import RtsError
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

NUM_NODES = 5
VICTIM = NUM_NODES - 1


class Counter(ObjectSpec):
    def init(self, v=0):
        self.value = v

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def add(self, d):
        self.value += d
        return self.value


def build(seed=23):
    """Three primary seats parked on the victim (so the drain has real
    work to do) plus one primary seat elsewhere for the racer to throw
    at the draining machine."""
    cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast", num_shards=2)
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        for i in range(4):
            handles[i] = rts.create_object(
                proc, Counter, (0,), name=f"ctr{i}",
                policy="primary-invalidate")
        for i in range(3):
            rts.relocate_primary(proc, handles[i], target=VICTIM)
        # handles[3] keeps its seat on node 0: the racer's projectile.

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    assert all(rts.directory.primary_of(handles[i].obj_id) == VICTIM for i in range(3))
    return cluster, rts, handles


class TestDrainRelocateRace:
    def test_relocate_to_draining_node_is_refused(self):
        cluster, rts, handles = build()
        done = {}
        refused = []
        try:
            def drainer():
                proc = cluster.sim.current_process
                done["drain"] = rts.drain_node(proc, VICTIM)

            def racer():
                # Hammer relocate_primary(target=VICTIM) for the whole
                # duration of the drain; every attempt must be refused.
                proc = cluster.sim.current_process
                while "drain" not in done:
                    if VICTIM in rts._draining:
                        try:
                            refused.append(rts.relocate_primary(
                                proc, handles[3], target=VICTIM))
                        except RtsError:
                            # The drain retired the machine between the
                            # membership check and the call: same refusal,
                            # different spelling.
                            break
                    proc.hold(0.0004)

            def writer(node_id):
                proc = cluster.sim.current_process
                for _ in range(8):
                    for handle in handles.values():
                        rts.invoke(proc, handle, "add", (1,))
                    proc.hold(0.0003)

            cluster.node(0).kernel.spawn_thread(drainer)
            cluster.node(1).kernel.spawn_thread(racer)
            for node_id in (1, 2, 3):
                cluster.node(node_id).kernel.spawn_thread(writer, node_id)
            cluster.run()

            assert done["drain"] is True
            assert refused, "the racer never overlapped the drain"
            assert not any(refused), (
                f"a relocation landed on the draining node: {refused}")
            # The drain was planned: no takeover/failure path ran.
            assert rts.stats.nodes_drained == 1
            assert rts.stats.primary_recoveries == 0 and not rts.recoveries
            assert not cluster.node(VICTIM).alive
            for handle in handles.values():
                assert rts.directory.primary_of(handle.obj_id) != VICTIM

            # Exactly-once under the race: 3 writers x 8 rounds x 1 each.
            totals = {}

            def reader():
                proc = cluster.sim.current_process
                for i, handle in handles.items():
                    totals[i] = rts.invoke(proc, handle, "read")

            cluster.node(0).kernel.spawn_thread(reader)
            cluster.run()
            assert totals == {i: 24 for i in range(4)}
        finally:
            cluster.shutdown()

    def test_concurrent_drain_of_the_same_node_reports_false(self):
        cluster, rts, handles = build()
        results = {}
        try:
            def drainer(key):
                proc = cluster.sim.current_process
                results[key] = rts.drain_node(proc, VICTIM)

            cluster.node(0).kernel.spawn_thread(drainer, "first")
            cluster.node(1).kernel.spawn_thread(drainer, "second")
            cluster.run()
            # Exactly one drain ran; the overlapping request was refused
            # rather than double-evacuating the machine.
            assert sorted(results.values()) == [False, True]
            assert rts.stats.nodes_drained == 1
        finally:
            cluster.shutdown()
