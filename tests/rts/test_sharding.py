"""Unit tests for sharding policies, the router, and batching config."""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.rts.broadcast_rts import BroadcastRts
from repro.rts.object_model import ObjectSpec, operation
from repro.rts.sharding import (
    BatchingParams,
    ExplicitPlacement,
    HashPlacement,
    ShardRouter,
    batching_params,
    make_policy,
)


class Reg(ObjectSpec):
    def init(self, v=0):
        self.value = v

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def assign(self, v):
        self.value = v
        return v


class TestPolicies:
    def test_hash_by_id_spreads_sequential_ids_uniformly(self):
        policy = HashPlacement(4)
        shards = [policy.shard_of(obj_id, f"o{obj_id}")
                  for obj_id in range(1, 13)]
        assert shards == [0, 1, 2, 3] * 3

    def test_hash_by_name_is_stable(self):
        policy = HashPlacement(3, by="name")
        first = policy.shard_of(1, "job-queue")
        assert policy.shard_of(99, "job-queue") == first
        assert 0 <= first < 3

    def test_explicit_placement_pins_and_falls_back(self):
        policy = ExplicitPlacement(4, {"hot": 3})
        assert policy.shard_of(17, "hot") == 3
        fallback = HashPlacement(4).shard_of(17, "cold")
        assert policy.shard_of(17, "cold") == fallback

    def test_explicit_placement_rejects_out_of_range_shards(self):
        with pytest.raises(ConfigurationError):
            ExplicitPlacement(2, {"x": 5})

    def test_make_policy_coercions(self):
        assert isinstance(make_policy(2, None), HashPlacement)
        assert isinstance(make_policy(2, "hash"), HashPlacement)
        explicit = make_policy(2, {"a": 1})
        assert isinstance(explicit, ExplicitPlacement)
        assert explicit.shard_of(1, "a") == 1
        with pytest.raises(ConfigurationError):
            make_policy(2, HashPlacement(3))
        with pytest.raises(ConfigurationError):
            make_policy(2, 42)

    def test_num_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HashPlacement(0)


class TestBatchingParams:
    def test_coercions(self):
        assert batching_params(None) is None
        assert batching_params(False) is None
        assert batching_params(True) == BatchingParams()
        params = batching_params({"max_batch": 3, "flush_delay": 0.1})
        assert params.max_batch == 3 and params.flush_delay == 0.1
        assert batching_params(params) is params
        with pytest.raises(ConfigurationError):
            batching_params("yes")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchingParams(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchingParams(flush_delay=-1.0)


class TestShardRouter:
    def test_single_shard_reuses_the_cluster_group(self):
        with Cluster(ClusterConfig(num_nodes=3, seed=1)) as cluster:
            router = ShardRouter(cluster)
            assert router.num_shards == 1
            assert router.group_for(0) is cluster.broadcast_group

    def test_groups_get_distinct_ids_and_seats(self):
        with Cluster(ClusterConfig(num_nodes=4, seed=1)) as cluster:
            router = ShardRouter(cluster, num_shards=3)
            ids = [group.group_id for group in router.groups]
            assert ids == [0, 1, 2]
            assert router.sequencer_nodes() == [0, 1, 2]

    def test_summary_shape(self):
        with Cluster(ClusterConfig(num_nodes=2, seed=1)) as cluster:
            router = ShardRouter(cluster, num_shards=2)
            summary = router.summary()
            assert summary["num_shards"] == 2
            assert set(summary["per_shard"]) == {0, 1}


class TestShardedRtsDispatch:
    def test_objects_route_writes_to_their_shard_group(self):
        with Cluster(ClusterConfig(num_nodes=4, seed=5)) as cluster:
            rts = BroadcastRts(cluster, num_shards=2)
            handles = {}

            def main():
                proc = cluster.sim.current_process
                a = rts.create_object(proc, Reg, (0,), name="a")  # shard 0
                b = rts.create_object(proc, Reg, (0,), name="b")  # shard 1
                handles.update(a=a, b=b)
                for i in range(5):
                    rts.invoke(proc, a, "assign", (i,))
                rts.invoke(proc, b, "assign", (99,))

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            assert rts.shard_of(handles["a"]) == 0
            assert rts.shard_of(handles["b"]) == 1
            assert rts.router.shard_stats[0].writes == 5
            assert rts.router.shard_stats[1].writes == 1
            assert rts.router.shard_stats[0].creates == 1
            assert rts.router.shard_stats[1].creates == 1
            # Both groups actually carried sequenced traffic.
            assert rts.router.group_for(0).stats.deliveries > 0
            assert rts.router.group_for(1).stats.deliveries > 0
            # Replicas are everywhere, regardless of shard.
            for node in cluster.nodes:
                assert rts.manager(node.node_id).get(
                    handles["a"].obj_id).instance.value == 4
                assert rts.manager(node.node_id).get(
                    handles["b"].obj_id).instance.value == 99

    def test_summary_includes_sharding_when_active(self):
        with Cluster(ClusterConfig(num_nodes=2, seed=5)) as cluster:
            rts = BroadcastRts(cluster, num_shards=2, batching=True)
            summary = rts.read_write_summary()
            assert summary["sharding"]["num_shards"] == 2
            assert summary["batching"]["max_batch"] == BatchingParams().max_batch

    def test_summary_stays_classic_when_unsharded(self):
        with Cluster(ClusterConfig(num_nodes=2, seed=5)) as cluster:
            rts = BroadcastRts(cluster)
            assert "sharding" not in rts.read_write_summary()
