"""Unit tests for sharding policies, the router, and batching config."""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.rts.broadcast_rts import BroadcastRts
from repro.rts.object_model import ObjectSpec, operation
from repro.rts.sharding import (
    BatchingParams,
    ExplicitPlacement,
    HashPlacement,
    RebalanceMove,
    RebalanceParams,
    RebalancePlanner,
    ShardRouter,
    batching_params,
    make_policy,
    rebalance_params,
)


class Reg(ObjectSpec):
    def init(self, v=0):
        self.value = v

    @operation(write=False)
    def read(self):
        return self.value

    @operation(write=True)
    def assign(self, v):
        self.value = v
        return v


class TestPolicies:
    def test_hash_by_id_spreads_sequential_ids_uniformly(self):
        policy = HashPlacement(4)
        shards = [policy.shard_of(obj_id, f"o{obj_id}")
                  for obj_id in range(1, 13)]
        assert shards == [0, 1, 2, 3] * 3

    def test_hash_by_name_is_stable(self):
        policy = HashPlacement(3, by="name")
        first = policy.shard_of(1, "job-queue")
        assert policy.shard_of(99, "job-queue") == first
        assert 0 <= first < 3

    def test_explicit_placement_pins_and_falls_back(self):
        policy = ExplicitPlacement(4, {"hot": 3})
        assert policy.shard_of(17, "hot") == 3
        fallback = HashPlacement(4).shard_of(17, "cold")
        assert policy.shard_of(17, "cold") == fallback

    def test_explicit_placement_rejects_out_of_range_shards(self):
        with pytest.raises(ConfigurationError):
            ExplicitPlacement(2, {"x": 5})

    def test_make_policy_coercions(self):
        assert isinstance(make_policy(2, None), HashPlacement)
        assert isinstance(make_policy(2, "hash"), HashPlacement)
        explicit = make_policy(2, {"a": 1})
        assert isinstance(explicit, ExplicitPlacement)
        assert explicit.shard_of(1, "a") == 1
        with pytest.raises(ConfigurationError):
            make_policy(2, HashPlacement(3))
        with pytest.raises(ConfigurationError):
            make_policy(2, 42)

    def test_num_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HashPlacement(0)


class TestBatchingParams:
    def test_coercions(self):
        assert batching_params(None) is None
        assert batching_params(False) is None
        assert batching_params(True) == BatchingParams()
        params = batching_params({"max_batch": 3, "flush_delay": 0.1})
        assert params.max_batch == 3 and params.flush_delay == 0.1
        assert batching_params(params) is params
        with pytest.raises(ConfigurationError):
            batching_params("yes")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchingParams(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchingParams(flush_delay=-1.0)

    def test_backpressure_knob(self):
        params = batching_params({"max_batch": 4, "backpressure_depth": 16})
        assert params.backpressure_depth == 16
        assert BatchingParams().backpressure_depth is None
        with pytest.raises(ConfigurationError):
            BatchingParams(backpressure_depth=0)


class TestRebalanceParams:
    def test_coercions(self):
        assert rebalance_params(None) is None
        assert rebalance_params(False) is None
        assert rebalance_params(True) == RebalanceParams()
        params = rebalance_params({"interval": 0.01, "grow_to": 4})
        assert params.interval == 0.01 and params.grow_to == 4
        assert rebalance_params(params) is params
        with pytest.raises(ConfigurationError):
            rebalance_params("often")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RebalanceParams(interval=0.0)
        with pytest.raises(ConfigurationError):
            RebalanceParams(quiet_rounds=0)
        with pytest.raises(ConfigurationError):
            RebalanceParams(grow_to=0)
        with pytest.raises(ConfigurationError):
            RebalanceParams(byte_weight=-0.5)

    def test_byte_weight_defaults_off(self):
        assert RebalanceParams().byte_weight == 0.0


class TestShardRouter:
    def test_single_shard_reuses_the_cluster_group(self):
        with Cluster(ClusterConfig(num_nodes=3, seed=1)) as cluster:
            router = ShardRouter(cluster)
            assert router.num_shards == 1
            assert router.group_for(0) is cluster.broadcast_group

    def test_groups_get_distinct_ids_and_seats(self):
        with Cluster(ClusterConfig(num_nodes=4, seed=1)) as cluster:
            router = ShardRouter(cluster, num_shards=3)
            ids = [group.group_id for group in router.groups]
            assert ids == [0, 1, 2]
            assert router.sequencer_nodes() == [0, 1, 2]

    def test_summary_shape(self):
        with Cluster(ClusterConfig(num_nodes=2, seed=1)) as cluster:
            router = ShardRouter(cluster, num_shards=2)
            summary = router.summary()
            assert summary["num_shards"] == 2
            assert set(summary["per_shard"]) == {0, 1}
            assert summary["placement_epoch"] == 0
            assert "overrides" not in summary
            assert summary["per_shard"][0]["max_queue_depth"] == 0

    def test_move_records_override_and_bumps_epoch(self):
        with Cluster(ClusterConfig(num_nodes=4, seed=1)) as cluster:
            router = ShardRouter(cluster, num_shards=2)
            assert router.assign(1, "a") == 0
            assert router.move(1, 1) == 0
            assert router.assigned_shard(1) == 1
            assert router.overrides == {1: 1}
            assert router.placement_epoch == 1
            assert router.move(1, 1) == 1  # noop keeps the epoch
            assert router.placement_epoch == 1
            assert router.summary()["overrides"] == {1: 1}
            with pytest.raises(ConfigurationError):
                router.move(1, 5)
            with pytest.raises(ConfigurationError):
                router.move(99, 0)  # never placed

    def test_window_counters_follow_a_moved_object(self):
        with Cluster(ClusterConfig(num_nodes=4, seed=1)) as cluster:
            router = ShardRouter(cluster, num_shards=2)
            for _ in range(6):
                router.note_write(1, "a")  # shard 0
            router.note_write(2, "b")      # shard 1
            assert router.window_loads() == {0: 6, 1: 1}
            router.move(1, 1)
            assert router.window_loads() == {0: 0, 1: 7}
            assert router.window_object_writes(shard=1) == {1: 6, 2: 1}
            router.reset_window()
            assert router.window_loads() == {0: 0, 1: 0}
            # Cumulative per-shard stats are untouched by the reset.
            assert router.shard_stats[0].writes == 6

    def test_byte_window_tracks_and_follows_moves(self):
        with Cluster(ClusterConfig(num_nodes=4, seed=1)) as cluster:
            router = ShardRouter(cluster, num_shards=2)
            for _ in range(3):
                router.note_write(1, "a", nbytes=100)  # shard 0
            router.note_write(2, "b", nbytes=40)       # shard 1
            router.note_write(2, "b")                  # size-less write
            assert router.window_byte_loads() == {0: 300, 1: 40}
            assert router.window_object_bytes() == {1: 300, 2: 40}
            # ... but the count window still sees every write.
            assert router.window_loads() == {0: 3, 1: 2}
            router.move(1, 1)
            assert router.window_byte_loads() == {0: 0, 1: 340}
            assert router.window_object_bytes(shard=1) == {1: 300, 2: 40}
            router.reset_window()
            assert router.window_byte_loads() == {0: 0, 1: 0}
            assert router.window_object_bytes() == {}

    def test_add_shard_prefers_seatless_live_nodes(self):
        with Cluster(ClusterConfig(num_nodes=4, seed=1)) as cluster:
            router = ShardRouter(cluster, num_shards=2)  # seats 0, 1
            cluster.node(2).crash()
            shard = router.add_shard()
            assert shard == 2
            assert router.num_shards == 3
            assert router.sequencer_nodes() == [0, 1, 3]
            assert router.placement_epoch == 1
            # Hash placement grew with the shard set.
            assert router.policy.num_shards == 3

    def test_add_shard_rejects_dead_explicit_seat(self):
        with Cluster(ClusterConfig(num_nodes=2, seed=1)) as cluster:
            cluster.node(1).crash()
            router = ShardRouter(cluster)
            with pytest.raises(ConfigurationError):
                router.add_shard(sequencer_node_id=1)


class TestRebalancePlanner:
    def make_router(self, num_shards=2):
        cluster = Cluster(ClusterConfig(num_nodes=4, seed=1))
        return cluster, ShardRouter(cluster, num_shards=num_shards)

    def test_balanced_or_thin_windows_produce_no_moves(self):
        cluster, router = self.make_router()
        with cluster:
            planner = RebalancePlanner(router, min_writes=8)
            assert planner.plan() == []  # no traffic at all
            for obj, name in ((1, "a"), (2, "b")):
                for _ in range(10):
                    router.note_write(obj, name)
            assert planner.plan() == []  # balanced
            assert planner.suggest(1) is None

    def test_plan_moves_hot_objects_without_overshooting(self):
        cluster, router = self.make_router()
        with cluster:
            # Shard 0 carries a monolith (16) and a medium object (6);
            # shard 1 carries 8.  The deficit is 14, so relocating the
            # monolith would leave the destination hotter than the source
            # was (16 >= 14) — the medium object moves instead.
            for _ in range(16):
                router.note_write(1, "mono")
            for _ in range(6):
                router.note_write(3, "mid")
            for _ in range(8):
                router.note_write(2, "cool")
            planner = RebalancePlanner(router, imbalance=1.5, min_writes=8)
            moves = planner.plan()
            assert moves == [RebalanceMove(obj_id=3, src=0, dst=1)]
            # suggest() agrees per object.
            assert planner.suggest(3) == 1
            assert planner.suggest(1) is None  # monolith would overshoot
            assert planner.suggest(2) is None  # not on the hot shard

    def test_monolith_moves_when_it_improves_the_hot_bin(self):
        cluster, router = self.make_router()
        with cluster:
            for _ in range(16):
                router.note_write(1, "mono")
            for _ in range(2):
                router.note_write(3, "small")
            # deficit 18 > 16: relocating the monolith helps.
            router.note_write(2, "cool")
            router._window_shard_writes[1] = 0
            router._window_obj_writes.pop(2, None)
            planner = RebalancePlanner(router, imbalance=1.5, min_writes=8,
                                       max_moves=1)
            moves = planner.plan()
            assert moves == [RebalanceMove(obj_id=1, src=0, dst=1)]

    def test_planner_validation(self):
        cluster, router = self.make_router()
        with cluster:
            with pytest.raises(ConfigurationError):
                RebalancePlanner(router, imbalance=1.0)
            with pytest.raises(ConfigurationError):
                RebalancePlanner(router, min_writes=0)
            with pytest.raises(ConfigurationError):
                RebalancePlanner(router, queue_weight=-1.0)
            with pytest.raises(ConfigurationError):
                RebalancePlanner(router, byte_weight=-1.0)

    def test_queue_depth_makes_a_backlogged_shard_hot(self):
        """Cost awareness: equal window writes, but one sequencer is deep in
        backlog — the planner drains the shard that is actually melting."""
        cluster, router = self.make_router()
        with cluster:
            for _ in range(10):
                router.note_write(1, "a")  # shard 0
            for _ in range(10):
                router.note_write(2, "b")  # shard 1
            router.queue_depths = lambda: {0: 12, 1: 0}
            # Pure write counts see a balanced placement...
            blind = RebalancePlanner(router, imbalance=1.5, min_writes=8,
                                     queue_weight=0.0)
            assert blind.plan() == []
            # ... queue-weighted scores see shard 0 melting (10+12 vs 10)
            # and move its object off.
            aware = RebalancePlanner(router, imbalance=1.5, min_writes=8,
                                     queue_weight=1.0)
            assert aware.plan() == [RebalanceMove(obj_id=1, src=0, dst=1)]

    def test_byte_traffic_makes_a_shard_hot(self):
        """Payload awareness: equal write counts, but one shard's writes
        carry big values — the byte-weighted planner drains it."""
        cluster, router = self.make_router()
        with cluster:
            for _ in range(5):
                router.note_write(1, "fat", nbytes=600)   # shard 0
            for _ in range(5):
                router.note_write(3, "thin")              # shard 0
            for _ in range(10):
                router.note_write(2, "cool")              # shard 1
            # Count-only scores see a balanced placement (10 vs 10)...
            blind = RebalancePlanner(router, imbalance=1.5, min_writes=8,
                                     queue_weight=0.0)
            assert blind.plan() == []
            # ... byte-weighted scores see shard 0 carrying 3000 B of
            # payload (10 + 30 vs 10).  The fat object itself would
            # overshoot (weight 35 >= deficit 30), so its thin co-resident
            # moves off the byte-hot shard.
            aware = RebalancePlanner(router, imbalance=1.5, min_writes=8,
                                     queue_weight=0.0, byte_weight=0.01)
            assert aware.plan() == [RebalanceMove(obj_id=3, src=0, dst=1)]
            assert aware.suggest(3) == 1
            assert aware.suggest(1) is None  # would overshoot

    def test_byte_heavy_monolith_moves_when_it_improves_the_hot_bin(self):
        cluster, router = self.make_router()
        with cluster:
            for _ in range(16):
                router.note_write(1, "mono", nbytes=125)  # 2000 B on shard 0
            for _ in range(2):
                router.note_write(3, "small")
            router.note_write(2, "cool")  # register, then silence shard 1
            router._window_shard_writes[1] = 0
            router._window_obj_writes.pop(2, None)
            # Weight 16 + 20 = 36 < deficit 38: the monolith moves whole.
            planner = RebalancePlanner(router, imbalance=1.5, min_writes=8,
                                       max_moves=1, queue_weight=0.0,
                                       byte_weight=0.01)
            assert planner.plan() == [RebalanceMove(obj_id=1, src=0, dst=1)]

    def test_exclude_predicate_damps_churn(self):
        """The controller's per-object cooldown plugs in as an exclusion:
        a recently moved object is skipped, the next candidate moves."""
        cluster, router = self.make_router()
        with cluster:
            for _ in range(10):
                router.note_write(1, "hot")   # shard 0
            for _ in range(6):
                router.note_write(3, "warm")  # shard 0
            for _ in range(2):
                router.note_write(2, "cool")  # shard 1
            planner = RebalancePlanner(router, imbalance=1.5, min_writes=8,
                                       max_moves=1,
                                       exclude=lambda obj_id: obj_id == 1)
            assert planner.plan() == [RebalanceMove(obj_id=3, src=0, dst=1)]


class TestShardedRtsDispatch:
    def test_objects_route_writes_to_their_shard_group(self):
        with Cluster(ClusterConfig(num_nodes=4, seed=5)) as cluster:
            rts = BroadcastRts(cluster, num_shards=2)
            handles = {}

            def main():
                proc = cluster.sim.current_process
                a = rts.create_object(proc, Reg, (0,), name="a")  # shard 0
                b = rts.create_object(proc, Reg, (0,), name="b")  # shard 1
                handles.update(a=a, b=b)
                for i in range(5):
                    rts.invoke(proc, a, "assign", (i,))
                rts.invoke(proc, b, "assign", (99,))

            cluster.node(0).kernel.spawn_thread(main)
            cluster.run()
            assert rts.shard_of(handles["a"]) == 0
            assert rts.shard_of(handles["b"]) == 1
            assert rts.router.shard_stats[0].writes == 5
            assert rts.router.shard_stats[1].writes == 1
            assert rts.router.shard_stats[0].creates == 1
            assert rts.router.shard_stats[1].creates == 1
            # Both groups actually carried sequenced traffic.
            assert rts.router.group_for(0).stats.deliveries > 0
            assert rts.router.group_for(1).stats.deliveries > 0
            # Replicas are everywhere, regardless of shard.
            for node in cluster.nodes:
                assert rts.manager(node.node_id).get(
                    handles["a"].obj_id).instance.value == 4
                assert rts.manager(node.node_id).get(
                    handles["b"].obj_id).instance.value == 99

    def test_summary_includes_sharding_when_active(self):
        with Cluster(ClusterConfig(num_nodes=2, seed=5)) as cluster:
            rts = BroadcastRts(cluster, num_shards=2, batching=True)
            summary = rts.read_write_summary()
            assert summary["sharding"]["num_shards"] == 2
            assert summary["batching"]["max_batch"] == BatchingParams().max_batch

    def test_summary_stays_classic_when_unsharded(self):
        with Cluster(ClusterConfig(num_nodes=2, seed=5)) as cluster:
            rts = BroadcastRts(cluster)
            assert "sharding" not in rts.read_write_summary()
