"""Tests for the Orca programming layer: processes, fork, programs, proxies."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig
from repro.errors import OrcaError, UnknownOperationError
from repro.orca import ObjectSpec, OrcaProgram, operation
from repro.orca.builtin_objects import IntObject, JobQueue


class TestOrcaProgramBasics:
    def test_main_return_value(self):
        def main(proc):
            return "hello orca"

        result = OrcaProgram(main, ClusterConfig(num_nodes=2, seed=1)).run()
        assert result.value == "hello orca"
        assert result.num_nodes == 2
        assert result.rts_name == "broadcast-rts"

    def test_main_receives_arguments(self):
        def main(proc, a, b=0):
            return a + b

        result = OrcaProgram(main, ClusterConfig(num_nodes=1, seed=1)).run(4, b=5)
        assert result.value == 9

    def test_compute_advances_virtual_time(self):
        def main(proc):
            proc.compute(10_000)
            return proc.num_nodes

        result = OrcaProgram(main, ClusterConfig(num_nodes=3, seed=1)).run()
        assert result.value == 3
        assert result.elapsed >= 10_000 * 2.0e-5

    def test_unknown_rts_rejected(self):
        with pytest.raises(Exception):
            OrcaProgram(lambda proc: None, rts="quantum")

    def test_run_on_changes_node_count_temporarily(self):
        def main(proc):
            return proc.num_nodes

        program = OrcaProgram(main, ClusterConfig(num_nodes=2, seed=1))
        assert program.run_on(6).value == 6
        assert program.run().value == 2

    def test_result_contains_network_and_rts_summaries(self):
        def main(proc):
            counter = proc.new_object(IntObject, 0)
            counter.add(1)
            return counter.read()

        result = OrcaProgram(main, ClusterConfig(num_nodes=3, seed=1)).run()
        assert result.value == 1
        assert result.network["messages"] > 0
        assert result.rts["broadcast_writes"] >= 1


class TestForkAndJoin:
    def test_fork_on_every_node(self):
        def worker(proc, counter, worker_id):
            counter.add(1)
            return (worker_id, proc.node_id)

        def main(proc):
            counter = proc.new_object(IntObject, 0)
            workers = proc.fork_workers(worker, counter)
            placements = proc.join_all(workers)
            return counter.read(), placements

        result = OrcaProgram(main, ClusterConfig(num_nodes=4, seed=2)).run()
        total, placements = result.value
        assert total == 4
        assert sorted(node for _, node in placements) == [0, 1, 2, 3]

    def test_fork_default_node_is_parent_node(self):
        def child(proc):
            return proc.node_id

        def main(proc):
            return proc.join(proc.fork(child))

        result = OrcaProgram(main, ClusterConfig(num_nodes=4, seed=1)).run()
        assert result.value == 0

    def test_fork_out_of_range_node_rejected(self):
        def child(proc):
            return None

        def main(proc):
            proc.fork(child, on_node=17)

        with pytest.raises(Exception):
            OrcaProgram(main, ClusterConfig(num_nodes=2, seed=1)).run()

    def test_remote_fork_starts_later_than_local(self):
        def child(proc):
            return proc.now

        def main(proc):
            local = proc.fork(child, on_node=0)
            remote = proc.fork(child, on_node=1)
            return proc.join(local), proc.join(remote)

        result = OrcaProgram(main, ClusterConfig(num_nodes=2, seed=1)).run()
        local_start, remote_start = result.value
        assert remote_start > local_start

    def test_objects_are_shared_by_reference(self):
        class Accumulator(ObjectSpec):
            def init(self):
                self.items = []

            @operation(write=True)
            def append(self, item):
                self.items.append(item)
                return len(self.items)

            @operation(write=False)
            def snapshot(self):
                return list(self.items)

        def worker(proc, acc, worker_id):
            acc.append(worker_id)

        def main(proc):
            acc = proc.new_object(Accumulator)
            proc.join_all(proc.fork_workers(worker, acc))
            return sorted(acc.snapshot())

        result = OrcaProgram(main, ClusterConfig(num_nodes=3, seed=5)).run()
        assert result.value == [0, 1, 2]


class TestBoundObjectProxy:
    def test_unknown_operation_raises(self):
        def main(proc):
            counter = proc.new_object(IntObject, 0)
            with pytest.raises(UnknownOperationError):
                counter.frobnicate()
            return True

        assert OrcaProgram(main, ClusterConfig(num_nodes=1, seed=1)).run().value

    def test_operations_listing(self):
        def main(proc):
            counter = proc.new_object(IntObject, 0)
            return counter.operations()

        ops = OrcaProgram(main, ClusterConfig(num_nodes=1, seed=1)).run().value
        assert "read" in ops and "min_update" in ops

    def test_invoke_by_name(self):
        def main(proc):
            counter = proc.new_object(IntObject, 10)
            counter.invoke("add", 5)
            return counter.invoke("read")

        assert OrcaProgram(main, ClusterConfig(num_nodes=2, seed=1)).run().value == 15

    def test_usage_outside_simulation_rejected(self):
        captured = {}

        def main(proc):
            captured["obj"] = proc.new_object(IntObject, 0)
            return None

        OrcaProgram(main, ClusterConfig(num_nodes=1, seed=1)).run(keep_cluster=True)
        with pytest.raises(OrcaError):
            captured["obj"].read()


class TestBuiltinObjects:
    def test_int_object_min_update(self):
        def main(proc):
            bound = proc.new_object(IntObject, 100)
            first = bound.min_update(40)
            second = bound.min_update(70)
            return first, second, bound.read()

        result = OrcaProgram(main, ClusterConfig(num_nodes=2, seed=1)).run()
        assert result.value == (True, False, 40)

    def test_job_queue_workers_drain_all_jobs(self):
        def worker(proc, queue, results, worker_id):
            while True:
                job = queue.get_job()
                if job is None:
                    return
                proc.compute(100)
                results.add(job)

        def main(proc):
            from repro.orca.builtin_objects import SetObject

            queue = proc.new_object(JobQueue)
            results = proc.new_object(SetObject)
            for i in range(20):
                queue.add_job(i)
            workers = proc.fork_workers(worker, queue, results)
            queue.no_more_jobs()
            proc.join_all(workers)
            return results.size(), queue.size()

        result = OrcaProgram(main, ClusterConfig(num_nodes=4, seed=3)).run()
        assert result.value == (20, 0)

    def test_barrier_object(self):
        from repro.orca.builtin_objects import BarrierObject

        def worker(proc, barrier, log, worker_id):
            proc.compute((worker_id + 1) * 1000)
            generation = barrier.arrive()
            barrier.await_generation(generation)
            log.add(worker_id)
            return proc.now

        def main(proc):
            from repro.orca.builtin_objects import SetObject

            barrier = proc.new_object(BarrierObject, 3)
            log = proc.new_object(SetObject)
            workers = proc.fork_workers(worker, barrier, log, count=3)
            times = proc.join_all(workers)
            return log.size(), times

        result = OrcaProgram(main, ClusterConfig(num_nodes=3, seed=4)).run()
        size, times = result.value
        assert size == 3
        # No worker can pass the barrier before the slowest has arrived.
        assert max(times) - min(times) < max(times) * 0.5

    def test_dict_object_capacity(self):
        from repro.orca.builtin_objects import DictObject

        def main(proc):
            table = proc.new_object(DictObject, 2)
            stored = [table.store(k, v) for k, v in (("a", 10), ("b", 20), ("c", 30))]
            return stored, table.lookup("a"), table.lookup("c"), table.size()

        result = OrcaProgram(main, ClusterConfig(num_nodes=1, seed=1)).run()
        stored, a, c, size = result.value
        assert stored == [True, True, False]
        assert a == 10 and c is None and size == 2


class TestP2pProgramIntegration:
    def test_same_program_runs_on_p2p_rts(self):
        def worker(proc, counter, worker_id):
            for _ in range(5):
                counter.add(1)
                proc.compute(50)

        def main(proc):
            counter = proc.new_object(IntObject, 0)
            proc.join_all(proc.fork_workers(worker, counter))
            return counter.read()

        broadcast = OrcaProgram(main, ClusterConfig(num_nodes=4, seed=6),
                                rts="broadcast").run()
        p2p_update = OrcaProgram(main, ClusterConfig(num_nodes=4, seed=6),
                                 rts="p2p", rts_options={"protocol": "update"}).run()
        p2p_inval = OrcaProgram(main, ClusterConfig(num_nodes=4, seed=6),
                                rts="p2p", rts_options={"protocol": "invalidation"}).run()
        assert broadcast.value == p2p_update.value == p2p_inval.value == 20
