"""Basic semantics of ``rts.transact``: atomicity on every commit path.

Four commit shapes are pinned here — same-shard (one ordered record),
cross-shard order/order (2PC through two broadcast orders), seat/seat
(2PC over primary-copy seats), and the mixed order/seat case — plus the
all-or-nothing abort semantics of guards and the Orca-level surface.
Crash interleavings live in ``test_txn_crash_churn.py``.
"""

from __future__ import annotations

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ConfigurationError, TransactionAborted
from repro.orca.program import OrcaProgram
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation


class Account(ObjectSpec):
    def init(self, balance=0):
        self.balance = balance

    @operation(write=False)
    def read(self):
        return self.balance

    @operation(write=True, guard=lambda self, amount: self.balance >= amount)
    def withdraw(self, amount):
        self.balance -= amount
        return self.balance

    @operation(write=True)
    def deposit(self, amount):
        self.balance += amount
        return self.balance


def build(num_shards, policies, num_accounts=2, seed=7, num_nodes=3):
    """A cluster with ``num_accounts`` funded accounts under ``policies``."""
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast",
                    num_shards=num_shards)
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        for i in range(num_accounts):
            handles[i] = rts.create_object(
                proc, Account, (100,), name=f"acct{i}",
                policy=policies[i % len(policies)])

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    return cluster, rts, handles


def run_movers(cluster, rts, handles, rounds=5):
    """Two concurrent clients exchanging money in opposite directions."""

    def mover(src, dst):
        proc = cluster.sim.current_process
        for _ in range(rounds):
            rts.transact(proc, [(handles[src], "withdraw", (10,)),
                                (handles[dst], "deposit", (10,))])

    cluster.node(1).kernel.spawn_thread(mover, 0, 1)
    cluster.node(2).kernel.spawn_thread(mover, 1, 0)
    cluster.run()


def read_balances(cluster, rts, handles):
    out = {}

    def reader():
        proc = cluster.sim.current_process
        for i, handle in handles.items():
            out[i] = rts.invoke(proc, handle, "read")

    cluster.node(0).kernel.spawn_thread(reader)
    cluster.run()
    return out


class TestCommitPaths:
    def test_same_shard_group_commits_as_one_record(self):
        cluster, rts, handles = build(num_shards=1, policies=("broadcast",))
        try:
            run_movers(cluster, rts, handles)
            balances = read_balances(cluster, rts, handles)
            assert sum(balances.values()) == 200
            assert rts.stats.txn_commits == 10
            assert rts.stats.txn_same_shard_commits == 10
            assert rts.stats.txn_cross_shard_commits == 0
        finally:
            cluster.shutdown()

    def test_cross_shard_two_phase_over_broadcast_orders(self):
        cluster, rts, handles = build(num_shards=2, policies=("broadcast",))
        try:
            assert rts.shard_of(handles[0]) != rts.shard_of(handles[1])
            run_movers(cluster, rts, handles)
            balances = read_balances(cluster, rts, handles)
            assert sum(balances.values()) == 200
            assert rts.stats.txn_commits == 10
            assert rts.stats.txn_cross_shard_commits == 10
        finally:
            cluster.shutdown()

    def test_seat_locked_two_phase_over_primary_copies(self):
        cluster, rts, handles = build(
            num_shards=2, policies=("primary-invalidate", "primary-update"))
        try:
            run_movers(cluster, rts, handles)
            balances = read_balances(cluster, rts, handles)
            assert sum(balances.values()) == 200
            assert rts.stats.txn_commits == 10
            assert rts.stats.txn_cross_shard_commits == 10
        finally:
            cluster.shutdown()

    def test_mixed_order_and_seat_participants(self):
        cluster, rts, handles = build(
            num_shards=2, policies=("broadcast", "primary-invalidate"))
        try:
            run_movers(cluster, rts, handles)
            balances = read_balances(cluster, rts, handles)
            assert sum(balances.values()) == 200
            assert rts.stats.txn_commits == 10
        finally:
            cluster.shutdown()

    def test_results_come_back_in_op_order(self):
        cluster, rts, handles = build(num_shards=2, policies=("broadcast",))
        try:
            results = {}

            def client():
                proc = cluster.sim.current_process
                results["r"] = rts.transact(
                    proc, [(handles[0], "withdraw", (30,)),
                           (handles[1], "deposit", (30,)),
                           (handles[0], "read")])

            cluster.node(1).kernel.spawn_thread(client)
            cluster.run()
            assert results["r"] == [70, 130, 70]
        finally:
            cluster.shutdown()


class TestAborts:
    def test_guard_failure_aborts_the_whole_group(self):
        cluster, rts, handles = build(num_shards=2, policies=("broadcast",))
        try:
            outcome = {}

            def client():
                proc = cluster.sim.current_process
                try:
                    rts.transact(proc, [(handles[0], "withdraw", (500,)),
                                        (handles[1], "deposit", (500,))],
                                 on_guard="abort")
                except TransactionAborted as exc:
                    outcome["error"] = exc

            cluster.node(1).kernel.spawn_thread(client)
            cluster.run()
            assert "error" in outcome
            balances = read_balances(cluster, rts, handles)
            # All-or-nothing: the deposit never applied either.
            assert balances == {0: 100, 1: 100}
            assert rts.stats.txn_commits == 0
            assert rts.stats.txn_aborts == 1
        finally:
            cluster.shutdown()

    def test_bad_on_guard_and_bad_ops_are_rejected_eagerly(self):
        cluster, rts, handles = build(num_shards=1, policies=("broadcast",))
        try:
            caught = {}

            def client():
                proc = cluster.sim.current_process
                try:
                    rts.transact(proc, [(handles[0], "withdraw", (1,))],
                                 on_guard="explode")
                except ConfigurationError as exc:
                    caught["on_guard"] = exc
                try:
                    rts.transact(proc, [(handles[0], "no_such_op")])
                except Exception as exc:
                    caught["bad_op"] = exc
                try:
                    rts.transact(proc, [])
                except ConfigurationError as exc:
                    caught["empty"] = exc

            cluster.node(1).kernel.spawn_thread(client)
            cluster.run()
            assert set(caught) == {"on_guard", "bad_op", "empty"}
            # Nothing was applied by any rejected call.
            assert read_balances(cluster, rts, handles)[0] == 100
        finally:
            cluster.shutdown()


class TestOrcaSurface:
    def test_orca_process_transact_delegates_to_the_runtime(self):
        def main(proc):
            a = proc.new_object(Account, 100, name="a")
            b = proc.new_object(Account, 100, name="b")
            results = proc.transact([(a, "withdraw", (25,)),
                                     (b, "deposit", (25,))])
            return results, (a.read(), b.read())

        program = OrcaProgram(main, ClusterConfig(num_nodes=3, seed=7),
                              rts_options={"num_shards": 2})
        result = program.run()
        assert result.value == ([75, 125], (75, 125))

    def test_runtimes_without_transactions_are_detectable(self):
        # transact() sequences its records through the broadcast groups, so
        # the workload scenarios gate their transactional mode on the method
        # *and* a broadcast-capable interconnect.  The baselines run on the
        # switched network and must be detected as non-transactional.
        from repro.workloads.scenarios import supports_transactions
        from repro.workloads.runner import build_runtime, network_type_for

        for kind, expected in (("broadcast", True), ("central", False),
                               ("ivy", False)):
            cluster = Cluster(ClusterConfig(num_nodes=2, seed=3),
                              network_type=network_type_for(kind))
            try:
                rts = build_runtime(cluster, kind)
                assert supports_transactions(rts) is expected, kind
            finally:
                cluster.shutdown()
