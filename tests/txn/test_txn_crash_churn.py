"""Crash-churn properties of the transaction layer.

Hypothesis drives seeds through four adversarial schedules — the
coordinator's node dying mid-protocol, a participant's primary seat dying
mid-protocol, ``move_shard`` racing live transactions, and a policy
migration racing them — and asserts the bank invariant each time: the
balances always sum to the initial endowment (all-or-nothing held), and
wherever every client survived, each account lands on the *exact* balance
its committed transfers predict (exactly-once held, per account).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import RtsError, TransactionAborted
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

NUM_NODES = 5
VICTIM = NUM_NODES - 1
NUM_ACCOUNTS = 6
INITIAL = 100
ROUNDS = 6


class Account(ObjectSpec):
    def init(self, balance=0):
        self.balance = balance

    @operation(write=False)
    def read(self):
        return self.balance

    @operation(write=True, guard=lambda self, amount: self.balance >= amount)
    def withdraw(self, amount):
        self.balance -= amount
        return self.balance

    @operation(write=True)
    def deposit(self, amount):
        self.balance += amount
        return self.balance


def build(seed, policies=("broadcast",), num_shards=2):
    cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast",
                    num_shards=num_shards)
    handles = []

    def setup():
        proc = cluster.sim.current_process
        for i in range(NUM_ACCOUNTS):
            handles.append(rts.create_object(
                proc, Account, (INITIAL,), name=f"acct{i}",
                policy=policies[i % len(policies)]))

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    return cluster, rts, handles


def mover(cluster, rts, handles, node_id, client_id, seed, ledger):
    """One client moving money around; commits are logged into ``ledger``."""
    proc = cluster.sim.current_process
    rng = random.Random(f"{seed}/{node_id}/{client_id}")
    for _ in range(ROUNDS):
        src = rng.randrange(NUM_ACCOUNTS)
        dst = (src + 1 + rng.randrange(NUM_ACCOUNTS - 1)) % NUM_ACCOUNTS
        amount = rng.randrange(1, 6)
        try:
            rts.transact(proc, [(handles[src], "withdraw", (amount,)),
                                (handles[dst], "deposit", (amount,))],
                         on_guard="abort")
        except TransactionAborted:
            continue
        ledger.append((src, dst, amount))
        proc.hold(0.0002)


def settle_and_check(cluster, rts, handles, ledger=None):
    """Read every balance at a quiescent point; assert the bank invariant."""
    balances = {}

    def reader():
        proc = cluster.sim.current_process
        for i, handle in enumerate(handles):
            balances[i] = rts.invoke(proc, handle, "read")

    host = next(n.node_id for n in cluster.nodes if n.alive)
    cluster.node(host).kernel.spawn_thread(reader)
    cluster.run()
    total = sum(balances.values())
    assert total == NUM_ACCOUNTS * INITIAL, (
        f"conservation broken: {total} != {NUM_ACCOUNTS * INITIAL} "
        f"(balances {balances})")
    if ledger is not None:
        # Every client survived, so every transfer's outcome is known and
        # the per-account balance is fully determined: exactly-once.
        expected = {i: INITIAL for i in range(NUM_ACCOUNTS)}
        for src, dst, amount in ledger:
            expected[src] -= amount
            expected[dst] += amount
        assert balances == expected, (
            f"committed transfers applied wrong: {balances} != {expected}")
    return balances


def assert_all_settled(rts):
    layer = rts._txn_layer
    if layer is None:
        return
    open_txns = [d for d in layer.descs.values() if not d.done]
    assert not open_txns, f"unsettled transactions: {open_txns}"
    assert not layer._pinned, f"leaked pins: {layer._pinned}"


class TestCoordinatorCrash:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_conservation_survives_coordinator_death(self, seed):
        cluster, rts, handles = build(seed)
        try:
            # Clients everywhere, including the victim: whatever protocol
            # step node 4 dies in, its orphaned transactions must resolve.
            for node in cluster.nodes:
                for client_id in range(2):
                    node.kernel.spawn_thread(
                        mover, cluster, rts, handles, node.node_id,
                        client_id, seed, [])

            def crasher():
                # Relative to the run's start: the setup run already
                # consumed virtual time, so an absolute target would land
                # in the past and fire before any transfer is in flight.
                proc = cluster.sim.current_process
                proc.hold(0.004)
                cluster.node(VICTIM).crash()

            cluster.node(0).kernel.spawn_thread(crasher)
            cluster.run()
            settle_and_check(cluster, rts, handles)
            assert_all_settled(rts)
        finally:
            cluster.shutdown()


class TestParticipantPrimaryCrash:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_exactly_once_survives_primary_death(self, seed):
        # Half the accounts are primary-copy with their seats parked on the
        # victim, so live 2PC seat acquisitions race the takeover.
        cluster, rts, handles = build(
            seed, policies=("broadcast", "primary-invalidate",
                            "broadcast", "primary-update"))
        ledger = []
        try:
            def park_seats():
                proc = cluster.sim.current_process
                for handle in handles:
                    if rts.policy_of(handle) in ("primary-invalidate",
                                                 "primary-update"):
                        rts.relocate_primary(proc, handle, target=VICTIM)

            cluster.node(0).kernel.spawn_thread(park_seats)
            cluster.run()

            # Clients only on surviving nodes: every outcome is observed,
            # so the final balances are exactly determined by the ledger.
            for node in cluster.nodes[:VICTIM]:
                node.kernel.spawn_thread(
                    mover, cluster, rts, handles, node.node_id, 0, seed,
                    ledger)

            def crasher():
                proc = cluster.sim.current_process
                proc.hold(0.003)
                cluster.node(VICTIM).crash()

            cluster.node(0).kernel.spawn_thread(crasher)
            cluster.run()
            settle_and_check(cluster, rts, handles, ledger)
            assert_all_settled(rts)
        finally:
            cluster.shutdown()


class TestReconfigurationRaces:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_move_shard_races_live_transactions(self, seed):
        cluster, rts, handles = build(seed)
        ledger = []
        try:
            for node in cluster.nodes:
                node.kernel.spawn_thread(
                    mover, cluster, rts, handles, node.node_id, 0, seed,
                    ledger)

            def churner():
                proc = cluster.sim.current_process
                rng = random.Random(f"{seed}/churn")
                for _ in range(6):
                    proc.hold(0.0006)
                    handle = handles[rng.randrange(NUM_ACCOUNTS)]
                    target = (rts.shard_of(handle) + 1) % 2
                    # Pinned participants refuse the move; that refusal is
                    # part of what this test exercises.
                    rts.move_shard(proc, handle, target)

            cluster.node(0).kernel.spawn_thread(churner)
            cluster.run()
            settle_and_check(cluster, rts, handles, ledger)
            assert_all_settled(rts)
        finally:
            cluster.shutdown()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_policy_migration_races_live_transactions(self, seed):
        cluster, rts, handles = build(seed)
        ledger = []
        try:
            for node in cluster.nodes:
                node.kernel.spawn_thread(
                    mover, cluster, rts, handles, node.node_id, 0, seed,
                    ledger)

            def migrator():
                proc = cluster.sim.current_process
                rng = random.Random(f"{seed}/migrate")
                flips = ["primary-invalidate", "broadcast",
                         "primary-update", "broadcast"]
                for flip in flips:
                    proc.hold(0.0007)
                    handle = handles[rng.randrange(NUM_ACCOUNTS)]
                    try:
                        rts.migrate(proc, handle, flip)
                    except RtsError:
                        # Already under that policy; irrelevant here.
                        pass

            cluster.node(0).kernel.spawn_thread(migrator)
            cluster.run()
            settle_and_check(cluster, rts, handles, ledger)
            assert_all_settled(rts)
        finally:
            cluster.shutdown()
