"""Tests for the Arc Consistency application."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.acp import random_acp_problem, solve_sequential_ac3
from repro.apps.acp.orca_acp import partition_variables, run_acp_program
from repro.apps.acp.problem import AcpProblem, Constraint, revise


class TestProblem:
    def test_random_problem_shape(self):
        problem = random_acp_problem(num_variables=16, domain_size=8, seed=1)
        assert problem.num_variables == 16
        assert all(len(d) == 8 for d in problem.domains)
        assert len(problem.constraints) >= 15  # at least the backbone chain

    def test_neighbours_and_involvement(self):
        problem = AcpProblem(
            domains=(frozenset({1, 2}), frozenset({1, 2}), frozenset({1, 2})),
            constraints=(Constraint(0, 1, 1), Constraint(1, 2, 1)),
        )
        assert problem.neighbours(1) == [0, 2]
        assert len(problem.constraints_involving(0)) == 1

    def test_revise_removes_unsupported_values(self):
        constraint = Constraint(0, 1, 1)  # V0 + 1 <= V1
        domain_a = frozenset({1, 2, 3})
        domain_b = frozenset({2, 3})
        revised, checks = revise(domain_a, domain_b, constraint, 0)
        assert revised == frozenset({1, 2})
        assert checks > 0

    def test_revise_other_side(self):
        constraint = Constraint(0, 1, 1)
        domain_b = frozenset({1, 2, 3})
        domain_a = frozenset({2, 3})
        revised, _ = revise(domain_b, domain_a, constraint, 1)
        assert revised == frozenset({3})


class TestSequentialAc3:
    def test_chain_constraints_prune_domains(self):
        # V0+1<=V1, V1+1<=V2 over {0..3}: V0 in {0,1}, V1 in {1,2}, V2 in {2,3}.
        problem = AcpProblem(
            domains=tuple(frozenset(range(4)) for _ in range(3)),
            constraints=(Constraint(0, 1, 1), Constraint(1, 2, 1)),
        )
        result = solve_sequential_ac3(problem)
        assert result.consistent
        assert result.domains[0] == frozenset({0, 1})
        assert result.domains[1] == frozenset({1, 2})
        assert result.domains[2] == frozenset({2, 3})

    def test_infeasible_chain_detected(self):
        # A chain of length 5 over a domain of 3 values cannot be satisfied.
        problem = AcpProblem(
            domains=tuple(frozenset(range(3)) for _ in range(5)),
            constraints=tuple(Constraint(i, i + 1, 1) for i in range(4)),
        )
        result = solve_sequential_ac3(problem)
        assert not result.consistent

    def test_fixed_point_is_arc_consistent(self):
        problem = random_acp_problem(num_variables=12, domain_size=6, seed=3)
        result = solve_sequential_ac3(problem)
        if not result.consistent:
            pytest.skip("instance happens to be infeasible")
        # Every remaining value must have support in every constraint.
        for constraint in problem.constraints:
            for value in result.domains[constraint.var_a]:
                assert any(constraint.allows(value, other)
                           for other in result.domains[constraint.var_b])
            for value in result.domains[constraint.var_b]:
                assert any(constraint.allows(other, value)
                           for other in result.domains[constraint.var_a])


class TestOrcaAcp:
    def test_parallel_matches_sequential_domains(self):
        problem = random_acp_problem(num_variables=16, domain_size=8, seed=5)
        sequential = solve_sequential_ac3(problem)
        result = run_acp_program(problem, num_procs=4)
        assert result.value.consistent == sequential.consistent
        if sequential.consistent:
            assert result.value.domain_sizes == sequential.domain_sizes()

    def test_same_answer_for_different_processor_counts(self):
        problem = random_acp_problem(num_variables=16, domain_size=8, seed=8)
        sizes = set()
        for procs in (2, 3, 5):
            result = run_acp_program(problem, num_procs=procs)
            sizes.add(tuple(result.value.domain_sizes))
        assert len(sizes) == 1

    def test_infeasible_instance_detected_in_parallel(self):
        problem = AcpProblem(
            domains=tuple(frozenset(range(3)) for _ in range(6)),
            constraints=tuple(Constraint(i, i + 1, 1) for i in range(5)),
        )
        result = run_acp_program(problem, num_procs=3)
        assert not result.value.consistent

    def test_replication_overhead_is_visible(self):
        """ACP's updates are broadcast to every node: overhead grows with nodes."""
        problem = random_acp_problem(num_variables=16, domain_size=8, seed=2)
        small = run_acp_program(problem, num_procs=2)
        large = run_acp_program(problem, num_procs=8)
        assert large.overhead_time > small.overhead_time

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=5, deadline=None)
    def test_parallel_equals_sequential_property(self, seed):
        problem = random_acp_problem(num_variables=10, domain_size=5, seed=seed,
                                     constraints_per_variable=1.5)
        sequential = solve_sequential_ac3(problem)
        result = run_acp_program(problem, num_procs=3)
        assert result.value.consistent == sequential.consistent
        if sequential.consistent:
            assert result.value.domain_sizes == sequential.domain_sizes()


class TestPartitioning:
    def test_partition_covers_all_variables(self):
        parts = partition_variables(64, 7)
        flattened = [v for part in parts for v in part]
        assert sorted(flattened) == list(range(64))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_variables(self):
        parts = partition_variables(3, 5)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == 3
