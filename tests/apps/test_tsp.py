"""Tests for the TSP application (sequential and Orca-parallel)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.tsp import (
    TspInstance,
    circle_instance,
    random_instance,
    solve_sequential,
)
from repro.apps.tsp.orca_tsp import run_tsp_program
from repro.apps.tsp.problem import generate_jobs
from repro.errors import ApplicationError


def brute_force(instance: TspInstance) -> int:
    """Exact optimum by enumerating all permutations (small instances only)."""
    n = instance.num_cities
    best = float("inf")
    for perm in itertools.permutations(range(1, n)):
        tour = (0,) + perm
        best = min(best, instance.tour_length(tour))
    return int(best)


class TestProblem:
    def test_random_instance_is_symmetric(self):
        instance = random_instance(8, seed=3)
        for i in range(8):
            assert instance.distance(i, i) == 0
            for j in range(8):
                assert instance.distance(i, j) == instance.distance(j, i)

    def test_tiny_instance_rejected(self):
        with pytest.raises(ApplicationError):
            TspInstance(((0, 1), (1, 0)))

    def test_tour_length_requires_permutation(self):
        instance = random_instance(5, seed=1)
        with pytest.raises(ApplicationError):
            instance.tour_length([0, 1, 2, 3, 3])

    def test_circle_instance_optimum_is_perimeter_order(self):
        instance = circle_instance(8)
        ordered = instance.tour_length(list(range(8)))
        shuffled = instance.tour_length([0, 4, 1, 5, 2, 6, 3, 7])
        assert ordered < shuffled

    def test_nearest_neighbour_is_valid_upper_bound(self):
        instance = random_instance(7, seed=5)
        tour, length = instance.nearest_neighbour_tour()
        assert sorted(tour) == list(range(7))
        assert length == instance.tour_length(tour)

    def test_job_generation_covers_the_space(self):
        instance = random_instance(6, seed=2)
        jobs = generate_jobs(instance, depth=3)
        # depth 3: routes start at 0 then choose 2 distinct cities: 5*4 jobs.
        assert len(jobs) == 20
        assert all(job.route[0] == 0 and len(job.route) == 3 for job in jobs)
        assert len({job.route for job in jobs}) == 20

    def test_job_depth_validation(self):
        instance = random_instance(5, seed=2)
        with pytest.raises(ApplicationError):
            generate_jobs(instance, depth=0)
        with pytest.raises(ApplicationError):
            generate_jobs(instance, depth=5)


class TestSequentialSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        instance = random_instance(7, seed=seed)
        result = solve_sequential(instance)
        assert result.best_length == brute_force(instance)
        assert instance.tour_length(result.best_tour) == result.best_length

    def test_circle_instance_optimum(self):
        instance = circle_instance(8)
        result = solve_sequential(instance)
        assert result.best_length == instance.tour_length(list(range(8)))

    def test_work_units_accounted(self):
        instance = random_instance(7, seed=1)
        result = solve_sequential(instance)
        assert result.work_units > 0
        assert result.nodes_expanded > 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_optimality_property_random_instances(self, seed):
        instance = random_instance(6, seed=seed)
        result = solve_sequential(instance)
        assert result.best_length == brute_force(instance)


class TestOrcaTsp:
    def test_parallel_matches_sequential(self):
        instance = random_instance(8, seed=7)
        sequential = solve_sequential(instance)
        result = run_tsp_program(instance, num_procs=4)
        best_length, jobs, _nodes = result.value
        assert best_length == sequential.best_length
        assert jobs == len(generate_jobs(instance, 2))

    def test_parallel_same_answer_for_every_processor_count(self):
        instance = random_instance(8, seed=9)
        answers = set()
        for procs in (1, 2, 5):
            result = run_tsp_program(instance, num_procs=procs)
            answers.add(result.value.best_length)
        assert len(answers) == 1

    def test_more_processors_reduce_elapsed_time(self):
        instance = random_instance(9, seed=4)
        t1 = run_tsp_program(instance, num_procs=1).elapsed
        t8 = run_tsp_program(instance, num_procs=8).elapsed
        assert t8 < t1
        # Speedup should be meaningful (well above 2x on 8 CPUs for this size).
        assert t1 / t8 > 2.0

    def test_bound_object_read_write_ratio_is_high(self):
        instance = random_instance(8, seed=3)
        result = run_tsp_program(instance, num_procs=4)
        assert result.rts["local_reads"] > 50 * result.rts["broadcast_writes"]

    def test_runs_on_p2p_rts_too(self):
        instance = random_instance(7, seed=6)
        sequential = solve_sequential(instance)
        result = run_tsp_program(instance, num_procs=3, rts="p2p",
                                 rts_options={"protocol": "update"})
        assert result.value.best_length == sequential.best_length
