"""Tests for the chess application (board, search, parallel Oracol)."""

from __future__ import annotations

import pytest

from repro.apps.chess.board import (
    EMPTY,
    KING,
    KNIGHT,
    PAWN,
    QUEEN,
    ROOK,
    SIZE,
    Board,
    Move,
    initial_board,
    random_tactical_position,
    square,
)
from repro.apps.chess.evaluate import MATE_SCORE, evaluate, material_balance
from repro.apps.chess.orca_chess import run_chess_program
from repro.apps.chess.search import SearchTables, iterative_deepening
from repro.apps.chess.sequential import solve_position_sequential, solve_positions_sequential
from repro.apps.chess.tables import LocalKillerTable, LocalTranspositionTable


def empty_board(side=1):
    return Board([EMPTY] * (SIZE * SIZE), side_to_move=side)


class TestBoard:
    def test_initial_board_setup(self):
        board = initial_board()
        assert board.squares[square(0, 3)] == KING
        assert board.squares[square(SIZE - 1, 3)] == -KING
        assert board.squares.count(PAWN) == SIZE
        assert board.squares.count(-PAWN) == SIZE

    def test_initial_position_has_legal_moves(self):
        board = initial_board()
        moves = board.legal_moves()
        assert len(moves) > 5
        assert all(move.captured == EMPTY for move in moves)

    def test_make_unmake_round_trip(self):
        board = initial_board()
        snapshot = (list(board.squares), board.side_to_move, board.zobrist())
        for move in board.legal_moves():
            board.make(move)
            board.unmake(move)
        assert (list(board.squares), board.side_to_move, board.zobrist()) == snapshot

    def test_zobrist_changes_with_position(self):
        board = initial_board()
        h0 = board.zobrist()
        move = board.legal_moves()[0]
        board.make(move)
        assert board.zobrist() != h0
        board.unmake(move)
        assert board.zobrist() == h0

    def test_pawn_promotion(self):
        board = empty_board()
        board.squares[square(SIZE - 2, 0)] = PAWN
        board.squares[square(0, 5)] = KING
        board.squares[square(SIZE - 1, 5)] = -KING
        moves = [m for m in board.legal_moves() if m.promotion]
        assert moves
        board.make(moves[0])
        assert board.squares[moves[0].dst] == QUEEN

    def test_check_detection(self):
        board = empty_board()
        board.squares[square(0, 0)] = KING
        board.squares[square(5, 0)] = -ROOK
        board.squares[square(5, 5)] = -KING
        assert board.in_check(1)
        assert not board.in_check(-1)

    def test_moves_leaving_king_in_check_are_illegal(self):
        board = empty_board()
        board.squares[square(0, 0)] = KING
        board.squares[square(1, 0)] = ROOK   # pinned against the king
        board.squares[square(5, 0)] = -ROOK
        board.squares[square(5, 5)] = -KING
        legal = board.legal_moves()
        # The pinned rook may only move along the a-file.
        rook_moves = [m for m in legal if m.src == square(1, 0)]
        assert all(m.dst % SIZE == 0 for m in rook_moves)

    def test_random_tactical_position_is_playable(self):
        for seed in range(5):
            board = random_tactical_position(seed=seed)
            assert board.legal_moves()
            assert board.king_square(1) is not None
            assert board.king_square(-1) is not None


class TestEvaluation:
    def test_material_balance_symmetry(self):
        assert material_balance(initial_board()) == 0

    def test_evaluation_prefers_extra_material(self):
        board = empty_board()
        board.squares[square(0, 0)] = KING
        board.squares[square(5, 5)] = -KING
        board.squares[square(2, 2)] = QUEEN
        assert evaluate(board) > 0
        board.side_to_move = -1
        assert evaluate(board) < 0


class TestSearch:
    def test_finds_mate_in_one(self):
        board = empty_board()
        # White: Qb4(?), Kc1-ish; black king cornered on a6-file corner.
        board.squares[square(3, 1)] = QUEEN
        board.squares[square(3, 2)] = KING
        board.squares[square(5, 0)] = -KING
        board.side_to_move = 1
        result = iterative_deepening(board, 3)
        assert result.score >= MATE_SCORE - 10

    def test_search_prefers_winning_capture(self):
        board = empty_board()
        board.squares[square(0, 0)] = KING
        board.squares[square(5, 5)] = -KING
        board.squares[square(2, 2)] = ROOK
        board.squares[square(4, 2)] = -QUEEN  # undefended queen on the rook's file
        board.side_to_move = 1
        result = iterative_deepening(board, 3)
        assert result.best_move is not None
        assert result.best_move.dst == square(4, 2)

    def test_transposition_table_reduces_nodes(self):
        board = random_tactical_position(seed=3)
        without_tt = iterative_deepening(board.copy(), 3, tables=SearchTables(
            transposition=LocalTranspositionTable(capacity=0),
            killers=LocalKillerTable()))
        with_tt = iterative_deepening(board.copy(), 3)
        assert with_tt.stats.total_nodes <= without_tt.stats.total_nodes
        assert with_tt.score == without_tt.score

    def test_sequential_batch_counts_nodes(self):
        boards = [random_tactical_position(seed=s) for s in range(2)]
        result = solve_positions_sequential(boards, depth=2)
        assert result.total_nodes > 0
        assert len(result.results) == 2


class TestOrcaChess:
    def test_parallel_best_scores_match_sequential(self):
        positions = [random_tactical_position(seed=s, plies=6) for s in (1, 2)]
        depth = 2
        sequential_scores = [
            solve_position_sequential(board, depth).score for board in positions
        ]
        result = run_chess_program(positions, num_procs=4, depth=depth)
        assert result.value.scores == sequential_scores

    def test_parallel_search_has_overhead_but_still_speeds_up(self):
        positions = [random_tactical_position(seed=7, plies=6)]
        depth = 3
        t1 = run_chess_program(positions, num_procs=1, depth=depth)
        t6 = run_chess_program(positions, num_procs=6, depth=depth)
        speedup = t1.elapsed / t6.elapsed
        assert speedup > 1.2          # it does get faster...
        assert speedup < 6.0          # ...but nowhere near linearly (search overhead)
        # The parallel run searches at least as many nodes as the sequential one.
        assert t6.value.total_nodes >= t1.value.total_nodes

    def test_shared_vs_local_tables_same_best_scores(self):
        positions = [random_tactical_position(seed=11, plies=6)]
        # Depth 3 so that sub-trees deep enough to be worth sharing exist
        # (the run-time heuristic only shares entries of depth >= 2).
        shared = run_chess_program(positions, num_procs=3, depth=3, shared_tables=True)
        local = run_chess_program(positions, num_procs=3, depth=3, shared_tables=False)
        assert shared.value.scores == local.value.scores
        # Shared tables generate communication; local ones generate none for the TT.
        assert shared.rts["broadcast_writes"] > local.rts["broadcast_writes"]
