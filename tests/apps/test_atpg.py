"""Tests for the ATPG application (circuits, PODEM, fault simulation, parallel)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.atpg.circuit import (
    Circuit,
    D,
    DB,
    Gate,
    ONE,
    X,
    ZERO,
    evaluate_gate,
    random_circuit,
)
from repro.apps.atpg.faults import Fault, all_faults, complete_pattern, detects, fault_simulate
from repro.apps.atpg.orca_atpg import partition_faults, run_atpg_program
from repro.apps.atpg.podem import podem
from repro.apps.atpg.sequential import solve_sequential_atpg
from repro.errors import ApplicationError


def small_circuit() -> Circuit:
    """A tiny two-gate circuit: out = NOT(a AND b)."""
    return Circuit(
        primary_inputs=["a", "b"],
        gates=[Gate("n1", "AND", ("a", "b")), Gate("out", "NOT", ("n1",))],
        primary_outputs=["out"],
    )


class TestGateEvaluation:
    def test_and_gate_truth_table(self):
        assert evaluate_gate("AND", [ONE, ONE]) == ONE
        assert evaluate_gate("AND", [ONE, ZERO]) == ZERO
        assert evaluate_gate("AND", [ZERO, X]) == ZERO
        assert evaluate_gate("AND", [ONE, X]) == X

    def test_d_propagation(self):
        assert evaluate_gate("AND", [D, ONE]) == D
        assert evaluate_gate("AND", [D, ZERO]) == ZERO
        assert evaluate_gate("NOT", [D]) == DB
        assert evaluate_gate("OR", [DB, ZERO]) == DB
        assert evaluate_gate("XOR", [D, ONE]) == DB

    def test_nor_nand(self):
        assert evaluate_gate("NAND", [ONE, ONE]) == ZERO
        assert evaluate_gate("NOR", [ZERO, ZERO]) == ONE


class TestCircuit:
    def test_simulation_of_small_circuit(self):
        circuit = small_circuit()
        values, work = circuit.simulate({"a": ONE, "b": ONE})
        assert values["out"] == ZERO
        assert work == 2

    def test_cycle_detection(self):
        with pytest.raises(ApplicationError):
            Circuit(
                primary_inputs=["a"],
                gates=[Gate("g1", "AND", ("a", "g2")), Gate("g2", "AND", ("a", "g1"))],
                primary_outputs=["g1"],
            ).topological_gates()

    def test_undefined_line_rejected(self):
        with pytest.raises(ApplicationError):
            Circuit(primary_inputs=["a"],
                    gates=[Gate("g", "AND", ("a", "zz"))],
                    primary_outputs=["g"])

    def test_random_circuit_is_well_formed(self):
        circuit = random_circuit(num_inputs=6, num_gates=30, num_outputs=4, seed=2)
        assert len(circuit.topological_gates()) == 30
        values, _ = circuit.simulate({pi: ZERO for pi in circuit.primary_inputs})
        assert all(values[po] in (ZERO, ONE) for po in circuit.primary_outputs)

    def test_fanout_map(self):
        circuit = small_circuit()
        assert circuit.fanout()["n1"] == ["out"]
        assert circuit.fanout()["a"] == ["n1"]


class TestFaults:
    def test_fault_list_covers_every_line_twice(self):
        circuit = small_circuit()
        faults = all_faults(circuit)
        assert len(faults) == 2 * len(circuit.lines)

    def test_detects_simple_fault(self):
        circuit = small_circuit()
        # out stuck-at-0 is detected by any input making out=1 in the good circuit.
        pattern = {"a": ZERO, "b": ZERO}
        detected, _ = detects(circuit, pattern, Fault("out", ZERO))
        assert detected

    def test_pattern_completion(self):
        circuit = small_circuit()
        filled = complete_pattern(circuit, {"a": ONE})
        assert filled == {"a": ONE, "b": ZERO}

    def test_fault_simulation_finds_extra_faults(self):
        circuit = random_circuit(num_inputs=5, num_gates=20, num_outputs=3, seed=4)
        faults = all_faults(circuit)
        pattern = {pi: ONE for pi in circuit.primary_inputs}
        detected, work = fault_simulate(circuit, pattern, faults)
        assert work > 0
        assert len(detected) > 1


class TestPodem:
    def test_generates_test_for_testable_fault(self):
        circuit = small_circuit()
        result = podem(circuit, Fault("n1", ZERO))
        assert result.testable
        detected, _ = detects(circuit, result.pattern, Fault("n1", ZERO))
        assert detected

    def test_untestable_fault_reported(self):
        # out = a OR (NOT a) is always 1: out stuck-at-1 is untestable.
        circuit = Circuit(
            primary_inputs=["a"],
            gates=[Gate("na", "NOT", ("a",)), Gate("out", "OR", ("a", "na"))],
            primary_outputs=["out"],
        )
        result = podem(circuit, Fault("out", ONE))
        assert not result.testable

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_generated_patterns_really_detect_their_faults(self, seed):
        circuit = random_circuit(num_inputs=5, num_gates=15, num_outputs=3, seed=seed)
        faults = all_faults(circuit)[:10]
        for fault in faults:
            result = podem(circuit, fault, max_backtracks=100)
            if result.testable:
                detected, _ = detects(circuit, result.pattern, fault)
                assert detected


class TestSequentialAtpg:
    def test_coverage_reported(self):
        circuit = random_circuit(num_inputs=6, num_gates=25, num_outputs=3, seed=1)
        result = solve_sequential_atpg(circuit)
        assert 0.5 < result.coverage <= 1.0
        assert result.patterns

    def test_fault_simulation_reduces_pattern_count(self):
        circuit = random_circuit(num_inputs=6, num_gates=25, num_outputs=3, seed=1)
        plain = solve_sequential_atpg(circuit, use_fault_simulation=False)
        with_sim = solve_sequential_atpg(circuit, use_fault_simulation=True)
        assert len(with_sim.patterns) < len(plain.patterns)
        assert with_sim.covered == plain.covered or len(with_sim.covered) >= len(plain.covered) * 0.95


class TestOrcaAtpg:
    def test_partition_is_balanced_and_complete(self):
        faults = [Fault(f"l{i}", ZERO) for i in range(10)]
        parts = partition_faults(faults, 3)
        assert sum(len(p) for p in parts) == 10
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1

    def test_parallel_coverage_matches_sequential(self):
        circuit = random_circuit(num_inputs=6, num_gates=20, num_outputs=3, seed=3)
        sequential = solve_sequential_atpg(circuit)
        result = run_atpg_program(circuit, num_procs=4)
        assert result.value.covered == len(sequential.covered)
        assert result.value.total_faults == len(all_faults(circuit))

    def test_parallel_speedup_is_close_to_linear_without_fault_sim(self):
        circuit = random_circuit(num_inputs=7, num_gates=40, num_outputs=4, seed=5)
        t1 = run_atpg_program(circuit, num_procs=1)
        t8 = run_atpg_program(circuit, num_procs=8)
        assert t1.elapsed / t8.elapsed > 3.0

    def test_fault_simulation_is_faster_in_absolute_terms(self):
        circuit = random_circuit(num_inputs=7, num_gates=40, num_outputs=4, seed=5)
        plain = run_atpg_program(circuit, num_procs=4, use_fault_simulation=False)
        with_sim = run_atpg_program(circuit, num_procs=4, use_fault_simulation=True)
        assert with_sim.elapsed < plain.elapsed
        assert with_sim.value.covered >= plain.value.covered * 0.95
