"""Tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    BroadcastParams,
    ClusterConfig,
    CostModel,
    CpuParams,
    NetworkParams,
    ReplicationParams,
)
from repro.errors import ConfigurationError


class TestNetworkParams:
    def test_defaults_match_paper_testbed(self):
        params = NetworkParams()
        assert params.bandwidth_bps == 10_000_000.0
        assert params.supports_broadcast

    def test_transmit_time_scales_with_size(self):
        params = NetworkParams(bandwidth_bps=10_000_000.0, packet_overhead_bytes=0)
        assert params.transmit_time(1250) == pytest.approx(0.001)  # 10 kbit at 10 Mb/s

    def test_packets_for(self):
        params = NetworkParams(packet_size=1500)
        assert params.packets_for(0) == 1
        assert params.packets_for(1) == 1
        assert params.packets_for(1500) == 1
        assert params.packets_for(1501) == 2
        assert params.packets_for(4500) == 3

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkParams(bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            NetworkParams(latency=-1)
        with pytest.raises(ConfigurationError):
            NetworkParams(loss_rate=1.5)


class TestCpuParams:
    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuParams(work_unit_time=-1.0)


class TestBroadcastParams:
    def test_method_validation(self):
        with pytest.raises(ConfigurationError):
            BroadcastParams(method="xyz")
        assert BroadcastParams(method="pb").method == "pb"

    def test_pb_max_packets_validation(self):
        with pytest.raises(ConfigurationError):
            BroadcastParams(pb_max_packets=0)


class TestReplicationParams:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            ReplicationParams(replicate_threshold=1.0, drop_threshold=2.0)

    def test_defaults_have_hysteresis(self):
        params = ReplicationParams()
        assert params.replicate_threshold > params.drop_threshold


class TestCostModel:
    def test_with_overrides(self):
        model = CostModel()
        updated = model.with_overrides(network={"bandwidth_bps": 1e8},
                                       cpu={"work_unit_time": 1e-6})
        assert updated.network.bandwidth_bps == 1e8
        assert updated.cpu.work_unit_time == 1e-6
        # The original is unchanged (frozen dataclasses).
        assert model.network.bandwidth_bps == 1e7

    def test_with_overrides_unknown_section(self):
        with pytest.raises(ConfigurationError):
            CostModel().with_overrides(gpu={"x": 1})


class TestClusterConfig:
    def test_with_nodes_and_seed(self):
        config = ClusterConfig(num_nodes=4, seed=1)
        assert config.with_nodes(8).num_nodes == 8
        assert config.with_seed(9).seed == 9
        # Original untouched.
        assert config.num_nodes == 4

    def test_invalid_node_count(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_nodes=0)
