"""Integration tests: gateway-mode workload runs end to end."""

from __future__ import annotations

import json

import pytest

from repro.config import ClusterConfig, CostModel
from repro.errors import ConfigurationError
from repro.workloads import PhaseSpec, TenantSpec, WorkloadRunner, WorkloadSpec

TWO_TENANTS = WorkloadSpec(
    name="two-tenants", num_keys=8, read_fraction=0.8, client_model="open",
    arrival_rate=200.0, ops_per_client=15,
    tenants=(TenantSpec(name="quiet", sessions=3, priority=1),
             TenantSpec(name="noisy", sessions=6, priority=0,
                        rate=200.0, burst=20.0, arrival_rate=800.0)))


def gateway_run(workload=TWO_TENANTS, gateway=True, seed=11, **kwargs):
    runner = WorkloadRunner("counter-farm", workload=workload,
                            runtime="broadcast", num_nodes=3, seed=seed,
                            gateway=gateway, **kwargs)
    return runner.run()


class TestGatewayRuns:
    def test_counters_conserve_and_validate_passes(self):
        report = gateway_run()
        gw = report.rts_summary["gateway"]
        # Only completed requests touch objects; the scenario's own
        # conservation check ran against exactly those.
        assert report.scenario_facts["counter_total"] == report.writes
        assert report.total_ops == gw["completed"]
        assert gw["offered"] == gw["completed"] + gw["shed"]
        for row in gw["tenants"].values():
            shed_at_admission = (row["shed"]["quota"] + row["shed"]["overload"]
                                 + row["shed"]["queue_full"])
            assert row["offered"] == row["admitted"] + shed_at_admission
            assert row["completed"] == row["admitted"] - row["shed"]["evicted"]
            assert row["latency"]["count"] == row["completed"]

    def test_sessions_are_not_processes(self):
        report = gateway_run()
        gw = report.rts_summary["gateway"]
        # 9 sessions per node x 3 nodes, but only (1 driver + 4 workers)
        # per node actually run as simulated processes.
        assert report.num_clients == gw["sessions"] == 27
        assert gw["gateways"] == 3

    def test_quota_sheds_the_noisy_tenant_only(self):
        report = gateway_run()
        tenants = report.rts_summary["gateway"]["tenants"]
        assert tenants["noisy"]["shed"]["quota"] > 0
        assert tenants["quiet"]["shed"]["quota"] == 0
        assert tenants["quiet"]["completed"] == tenants["quiet"]["offered"]

    def test_deterministic_fingerprint(self):
        first = json.dumps(gateway_run().fingerprint(), sort_keys=True)
        second = json.dumps(gateway_run().fingerprint(), sort_keys=True)
        assert first == second

    def test_seed_changes_the_run(self):
        first = json.dumps(gateway_run(seed=11).fingerprint(), sort_keys=True)
        second = json.dumps(gateway_run(seed=12).fingerprint(), sort_keys=True)
        assert first != second

    def test_classic_runs_carry_no_gateway_block(self):
        report = gateway_run(gateway=None)
        assert "gateway" not in report.rts_summary
        assert "gateway" not in report.fingerprint()

    def test_gateway_requires_sim_backend(self):
        with pytest.raises(ConfigurationError):
            WorkloadRunner("counter-farm", backend="real", gateway=True)


class TestOverloadShedding:
    def test_queue_bound_sheds_when_offered_exceeds_capacity(self):
        crowd = WorkloadSpec(
            name="crowd", num_keys=4, read_fraction=0.5, client_model="open",
            arrival_rate=3000.0, ops_per_client=30,
            tenants=(TenantSpec(name="crowd", sessions=8),))
        report = gateway_run(workload=crowd,
                             gateway={"workers": 1, "accept_queue": 4})
        row = report.rts_summary["gateway"]["tenants"]["crowd"]
        assert row["shed"]["queue_full"] > 0
        # The accept queue caps in-gateway waiting: everything admitted
        # still completed, it just waited a bounded amount.
        assert row["completed"] == row["admitted"]

    def test_downstream_depth_sheds_low_priority_first(self):
        # The shed signal is the sequencer's service queue, which only
        # forms when ordering work costs CPU (the calibrated default is 0).
        cost = CostModel().with_overrides(cpu={"sequencing_cost": 2.0e-3})
        config = ClusterConfig(num_nodes=3, seed=11, cost_model=cost)
        mixed = WorkloadSpec(
            name="mixed", num_keys=4, read_fraction=0.2, client_model="open",
            arrival_rate=2000.0, ops_per_client=25,
            tenants=(TenantSpec(name="premium", sessions=2, priority=1),
                     TenantSpec(name="standard", sessions=6, priority=0)))
        report = WorkloadRunner(
            "counter-farm", workload=mixed, runtime="broadcast",
            num_nodes=3, seed=11, config=config,
            gateway={"workers": 4, "accept_queue": None, "shed_depth": 1},
        ).run()
        tenants = report.rts_summary["gateway"]["tenants"]
        assert tenants["standard"]["shed"]["overload"] > 0
        # Top-priority traffic is never overload-shed.
        assert tenants["premium"]["shed"]["overload"] == 0

    def test_eviction_prefers_low_priority_victims(self):
        mixed = WorkloadSpec(
            name="evict", num_keys=4, read_fraction=0.5, client_model="open",
            arrival_rate=4000.0, ops_per_client=25,
            tenants=(TenantSpec(name="premium", sessions=2, priority=1),
                     TenantSpec(name="standard", sessions=6, priority=0)))
        report = gateway_run(workload=mixed,
                             gateway={"workers": 1, "accept_queue": 2})
        tenants = report.rts_summary["gateway"]["tenants"]
        assert tenants["standard"]["shed"]["evicted"] > 0
        assert tenants["premium"]["shed"]["evicted"] == 0


class TestGatewayClientModels:
    def test_closed_loop_sessions_complete_everything(self):
        closed = WorkloadSpec(
            name="closed", num_keys=4, read_fraction=0.75,
            client_model="closed", think_time=0.0002, ops_per_client=10,
            tenants=(TenantSpec(name="only", sessions=4),))
        report = gateway_run(workload=closed)
        gw = report.rts_summary["gateway"]
        # Closed-loop sessions self-pace: nothing queues deep enough to shed.
        assert gw["shed"] == 0
        assert gw["completed"] == 4 * 3 * 10

    def test_hybrid_phases_run_and_fingerprint_deterministically(self):
        hybrid = WorkloadSpec(
            name="hybrid", num_keys=4, read_fraction=0.75,
            client_model="closed", think_time=0.0002, arrival_rate=400.0,
            phases=(PhaseSpec(ops_per_client=6),
                    PhaseSpec(ops_per_client=6, client_model="open"),
                    PhaseSpec(ops_per_client=6, client_model="closed")),
            tenants=(TenantSpec(name="only", sessions=4),))
        first = json.dumps(gateway_run(workload=hybrid).fingerprint(),
                           sort_keys=True)
        second = json.dumps(gateway_run(workload=hybrid).fingerprint(),
                            sort_keys=True)
        assert first == second

    def test_trace_driven_sessions(self):
        report = WorkloadRunner("diurnal-trace", runtime="broadcast",
                                num_nodes=3, seed=5, gateway=True).run()
        gw = report.rts_summary["gateway"]
        assert gw["completed"] > 0
        assert report.scenario_facts["counter_total"] == report.writes


class TestScenarioKinds:
    @pytest.mark.parametrize("kind", ["multi-tenant-noisy-neighbour",
                                      "flash-crowd", "diurnal-trace"])
    def test_gateway_kinds_run_under_the_classic_runner_too(self, kind):
        # Without a gateway the tenant list is inert; the kinds must still
        # run (and validate) as plain workloads on the classic runner.
        report = WorkloadRunner(kind, runtime="broadcast", num_nodes=3,
                                clients_per_node=1, seed=7).run()
        assert report.total_ops > 0
        assert "gateway" not in report.rts_summary

    @pytest.mark.parametrize("kind", ["multi-tenant-noisy-neighbour",
                                      "flash-crowd", "diurnal-trace"])
    def test_gateway_kinds_run_through_the_gateway(self, kind):
        runner = WorkloadRunner(kind, runtime="broadcast", num_nodes=3,
                                seed=7, gateway=True)
        report = runner.run()
        gw = report.rts_summary["gateway"]
        assert gw["completed"] > 0
        assert set(gw["tenants"]) == {t.name for t in runner.workload.tenants}
