"""Unit tests for the gateway building blocks (no cluster needed)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gateway import FairQueue, GatewayParams, TokenBucket, gateway_params
from repro.gateway.gateway import TenantState, _QueueEntry
from repro.workloads import Request, TenantSpec


def entry_for(tenant: TenantState, seq: int = 0) -> _QueueEntry:
    request = Request(seq=seq, key=0, is_write=False, phase=0)
    return _QueueEntry(arrival=0.0, request=request, session=None, tenant=tenant)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        assert bucket.try_take(0.1)  # 0.1 s * 10/s = 1 token back
        assert not bucket.try_take(0.1)

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        bucket.try_take(0.0)
        # A long idle period banks at most ``burst`` tokens.
        for _ in range(3):
            assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_burst_defaults_to_one_second_of_tokens(self):
        assert TokenBucket(rate=25.0, burst=None).burst == 25.0


class TestFairQueue:
    def test_fifo_within_one_tenant(self):
        tenant = TenantState(TenantSpec(name="a"))
        queue = FairQueue()
        first, second = entry_for(tenant, 1), entry_for(tenant, 2)
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_weights_split_service_proportionally(self):
        heavy = TenantState(TenantSpec(name="heavy", weight=2.0))
        light = TenantState(TenantSpec(name="light", weight=1.0))
        queue = FairQueue()
        for seq in range(4):
            queue.push(entry_for(heavy, seq))
            queue.push(entry_for(light, 100 + seq))
        # In any window of 3 dequeues the 2:1 weights give heavy 2 slots.
        order = [queue.pop().tenant.name for _ in range(6)]
        assert order.count("heavy") == 4
        assert order[:3].count("heavy") == 2

    def test_evicts_lowest_priority_latest_entry(self):
        high = TenantState(TenantSpec(name="high", priority=2))
        low = TenantState(TenantSpec(name="low", priority=0))
        queue = FairQueue()
        keep = entry_for(low, 1)
        victim = entry_for(low, 2)
        queue.push(keep)
        queue.push(victim)
        queue.push(entry_for(high, 3))
        assert queue.evict_lower_priority(2) is victim
        assert len(queue) == 2
        # Nothing below priority 0 exists: nothing to evict.
        assert queue.evict_lower_priority(0) is None


class TestParams:
    def test_coercions(self):
        assert gateway_params(None) is None
        assert gateway_params(False) is None
        assert gateway_params(True) == GatewayParams()
        assert gateway_params({"workers": 2, "shed_depth": 3}) == GatewayParams(
            workers=2, shed_depth=3)
        params = GatewayParams(accept_queue=None)
        assert gateway_params(params) is params

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GatewayParams(workers=0)
        with pytest.raises(ConfigurationError):
            GatewayParams(accept_queue=0)
        with pytest.raises(ConfigurationError):
            GatewayParams(shed_depth=0)
        with pytest.raises(ConfigurationError):
            gateway_params("yes")


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantSpec(name="")
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", sessions=0)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", weight=0.0)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", rate=-1.0)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", burst=8.0)  # burst without rate
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", arrival_rate=0.0)

    def test_duplicate_tenant_names_rejected(self):
        from repro.workloads import WorkloadSpec

        with pytest.raises(ConfigurationError):
            WorkloadSpec(tenants=(TenantSpec(name="t"), TenantSpec(name="t")))
