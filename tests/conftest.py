"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, CostModel
from repro.sim import Simulator


@pytest.fixture
def sim():
    """A fresh simulator that is shut down (threads reclaimed) after the test."""
    simulator = Simulator(seed=1234)
    yield simulator
    simulator.shutdown()


@pytest.fixture
def traced_sim():
    """A simulator with tracing enabled."""
    simulator = Simulator(seed=1234, trace=True)
    yield simulator
    simulator.shutdown()


@pytest.fixture
def small_config():
    """A 4-node cluster configuration used by integration tests."""
    return ClusterConfig(num_nodes=4, seed=7)


@pytest.fixture
def cost_model():
    return CostModel()
