"""SHARDING — throughput vs. shard count, and batched vs. unbatched writes.

The broadcast RTS funnels every write through one sequencer whose per-message
ordering work (``cpu.sequencing_cost``) gives it a hard service rate; under a
write-heavy load that single queue is the cluster-wide throughput ceiling.
This benchmark measures two ways of breaking it:

* **Sharding** — the counter-farm scenario (independent counters, no shared
  hot spot) swept over 1/2/4/8 broadcast groups with sequencer seats spread
  round-robin over the machines.  Throughput must rise monotonically from
  1 to 4 shards.
* **Write batching** — the fifo-queue scenario (every request is an RTS-level
  write on one object, the broadcast-heaviest case) run with batching off,
  group-commit batching (``flush_delay=0``), and a small flush window.  The
  batched write path must beat the unbatched p99.

Everything is deterministic under the fixed seed; one cell is re-run and
compared fingerprint-for-fingerprint.
"""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, CostModel
from repro.metrics.latency import format_latency_row
from repro.metrics.report import format_table
from repro.workloads import WorkloadRunner, WorkloadSpec

from conftest import run_once

NUM_NODES = 8
SEED = 42
SHARD_COUNTS = [1, 2, 4, 8]

#: The loaded-sequencer regime: 0.2 ms of ordering service per message caps
#: one sequencer at 5000 msgs/s, which the write-heavy workloads below
#: saturate.  (The default cost model keeps this far below the paper
#: applications' message rates; here the ceiling is the subject.)
COST_MODEL = CostModel().with_overrides(cpu={"sequencing_cost": 2.0e-4})

#: Write-only counter traffic: each client increments random counters, which
#: keeps every request on the sequenced write path without any object-level
#: hot spot (the counters are independent and spread over the shards).
SHARD_SPEC = WorkloadSpec(name="counter-farm-writes", num_keys=16,
                          read_fraction=0.0, ops_per_client=40,
                          think_time=0.0005)
SHARD_CLIENTS_PER_NODE = 6

#: Balanced produce/consume queue traffic; put *and* poll are writes, so this
#: is the scenario whose tail latency batching is expected to rescue.
FIFO_SPEC = WorkloadSpec(name="fifo-queue", read_fraction=0.5,
                         ops_per_client=40, think_time=0.0005)
FIFO_CLIENTS_PER_NODE = 4

BATCHING_MODES = {
    "unbatched": None,
    "group-commit": {"max_batch": 8, "flush_delay": 0.0},
    "windowed": {"max_batch": 8, "flush_delay": 0.0005},
}


def run_shard_cell(num_shards: int, batching=None):
    runner = WorkloadRunner("counter-farm", workload=SHARD_SPEC,
                            runtime="broadcast", num_nodes=NUM_NODES,
                            clients_per_node=SHARD_CLIENTS_PER_NODE,
                            seed=SEED, num_shards=num_shards,
                            batching=batching,
                            config=ClusterConfig(num_nodes=NUM_NODES,
                                                 seed=SEED,
                                                 cost_model=COST_MODEL))
    return runner.run()


def run_fifo_cell(mode: str):
    runner = WorkloadRunner("fifo-queue", workload=FIFO_SPEC,
                            runtime="broadcast", num_nodes=NUM_NODES,
                            clients_per_node=FIFO_CLIENTS_PER_NODE,
                            seed=SEED, batching=BATCHING_MODES[mode],
                            config=ClusterConfig(num_nodes=NUM_NODES,
                                                 seed=SEED,
                                                 cost_model=COST_MODEL))
    return runner.run()


@pytest.mark.benchmark(group="sharding")
def test_throughput_scales_with_shard_count(benchmark):
    def experiment():
        sweep = {shards: run_shard_cell(shards) for shards in SHARD_COUNTS}
        combined = run_shard_cell(4, batching=BATCHING_MODES["group-commit"])
        return sweep, combined

    sweep, combined = run_once(benchmark, experiment)

    throughput = {shards: report.throughput for shards, report in sweep.items()}
    # Breaking the single-sequencer ceiling: monotonically higher throughput
    # all the way from one group to four.
    assert throughput[1] < throughput[2] < throughput[4], throughput
    assert throughput[4] > 1.1 * throughput[1], throughput
    # Each cell really ran on its own set of groups/sequencers.
    for shards, report in sweep.items():
        assert report.num_shards == shards
        if shards > 1:
            seats = report.rts_summary["sharding"]["sequencer_nodes"]
            assert len(set(seats)) == min(shards, NUM_NODES)
        expected = report.num_clients * SHARD_SPEC.total_ops_per_client
        assert report.total_ops == expected
    # Sharding and batching compose.
    assert combined.throughput > throughput[1], (combined.throughput, throughput)

    # Determinism: re-running a cell reproduces its report exactly.
    repeat = run_shard_cell(4)
    assert repeat.fingerprint() == sweep[4].fingerprint()

    rows = []
    for shards, report in sorted(sweep.items()):
        p50, p95, p99, mean = format_latency_row(report.request_latency["overall"])
        rows.append([str(shards), f"{report.throughput:.0f}", p50, p95, p99, mean])
    p50, p95, p99, mean = format_latency_row(combined.request_latency["overall"])
    rows.append(["4+batch", f"{combined.throughput:.0f}", p50, p95, p99, mean])
    benchmark.extra_info["throughput_by_shards"] = {
        str(s): round(t, 3) for s, t in throughput.items()
    }
    benchmark.extra_info["cells"] = {f"shards={s}": r.fingerprint() for s, r in sweep.items()}
    print()
    print(format_table(
        ["shards", "ops/s", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
        rows,
        title=f"Counter-farm writes vs. shard count ({NUM_NODES} nodes, "
              f"{SHARD_CLIENTS_PER_NODE} clients/node, seed {SEED})"))


@pytest.mark.benchmark(group="sharding")
def test_batched_writes_beat_unbatched_p99_on_fifo_queue(benchmark):
    def experiment():
        return {mode: run_fifo_cell(mode) for mode in BATCHING_MODES}

    reports = run_once(benchmark, experiment)

    p99 = {mode: r.percentile_row()["p99"] for mode, r in reports.items()}
    # The batched write path must beat unbatched tail latency on the
    # broadcast-heaviest scenario, without giving up throughput.
    assert p99["group-commit"] < p99["unbatched"], p99
    assert p99["windowed"] < p99["unbatched"], p99
    assert reports["group-commit"].throughput >= reports["unbatched"].throughput

    # Batches actually formed (shard stats flow through the report).
    for mode in ("group-commit", "windowed"):
        sharding = reports[mode].rts_summary["sharding"]
        stats = sharding["per_shard"][0]
        assert stats["batches"] > 0
        assert stats["max_batch"] > 1
    # Queue conservation held in every mode.
    for report in reports.values():
        facts = report.scenario_facts
        assert facts["enqueued"] - facts["dequeued"] == facts["backlog"]

    rows = []
    for mode, report in reports.items():
        p50, p95, p99s, mean = format_latency_row(report.request_latency["overall"])
        sharding = report.rts_summary.get("sharding")
        mean_batch = (sharding["per_shard"][0]["mean_batch"] if sharding else 1.0)
        rows.append([mode, f"{report.throughput:.0f}", p50, p95, p99s, mean, f"{mean_batch:.2f}"])
    benchmark.extra_info["p99_by_mode"] = {m: round(v, 6) for m, v in p99.items()}
    benchmark.extra_info["cells"] = {m: r.fingerprint() for m, r in reports.items()}
    print()
    print(format_table(
        ["batching", "ops/s", "p50 ms", "p95 ms", "p99 ms", "mean ms", "avg batch"],
        rows,
        title=f"FIFO queue: batched vs. unbatched writes ({NUM_NODES} nodes, "
              f"{FIFO_CLIENTS_PER_NODE} clients/node, seed {SEED})"))
