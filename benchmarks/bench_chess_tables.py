"""CHESS-TABLES — shared versus local killer/transposition tables (paper §4.3).

"Both the killer table and the transposition table can be implemented as
local data structures or as shared objects. [...] For Oracol, we have
determined that, especially for the killer table, shared tables are most
efficient."  The benchmark runs the same parallel search with the tables
shared (as replicated objects) and with the tables private to every worker,
and compares elapsed time, nodes searched, and the communication the shared
version pays for its advantage.
"""

from __future__ import annotations

import pytest

from repro.apps.chess import random_tactical_position
from repro.apps.chess.orca_chess import run_chess_program

from conftest import SCALE, run_once

DEPTH = 4 if SCALE == "paper" else 3
NUM_PROCS = 10 if SCALE == "paper" else 6


@pytest.mark.benchmark(group="chess-tables")
def test_shared_vs_local_tables(benchmark):
    positions = [random_tactical_position(seed=s, plies=6) for s in (3, 9)]

    def experiment():
        shared = run_chess_program(positions, num_procs=NUM_PROCS, depth=DEPTH, shared_tables=True)
        local = run_chess_program(positions, num_procs=NUM_PROCS, depth=DEPTH, shared_tables=False)
        return shared, local

    shared, local = run_once(benchmark, experiment)

    # Both variants find the same best scores ("differ in only a few lines").
    assert shared.value.scores == local.value.scores
    # Sharing the tables costs communication...
    assert shared.rts["broadcast_writes"] > local.rts["broadcast_writes"]
    # ...and lets workers reuse each other's work: no more nodes than local tables.
    assert shared.value.total_nodes <= local.value.total_nodes

    benchmark.extra_info["shared_elapsed"] = round(shared.elapsed, 4)
    benchmark.extra_info["local_elapsed"] = round(local.elapsed, 4)
    benchmark.extra_info["shared_nodes"] = shared.value.total_nodes
    benchmark.extra_info["local_nodes"] = local.value.total_nodes
    benchmark.extra_info["shared_broadcasts"] = shared.rts["broadcast_writes"]
    benchmark.extra_info["local_broadcasts"] = local.rts["broadcast_writes"]
    print(f"\nShared tables: {shared.elapsed:.3f}s / {shared.value.total_nodes} nodes; "
          f"local tables: {local.elapsed:.3f}s / {local.value.total_nodes} nodes")
