"""CHESS-SPEEDUP — Oracol speedup and search overhead (paper §4.3).

"On 10 CPUs, we have measured speedups between 4.5 and 5.5.  Almost all of
the overhead is search overhead, which means that the parallel program
searches far more nodes than a sequential program does."  The benchmark runs
the parallel alpha-beta program on 1 and 10 processors and checks both
properties: a clearly sub-linear speedup and a node count that exceeds the
single-processor search.
"""

from __future__ import annotations

import pytest

from repro.apps.chess import random_tactical_position
from repro.apps.chess.orca_chess import run_chess_program

from conftest import SCALE, run_once

DEPTH = 4 if SCALE == "paper" else 3
NUM_POSITIONS = 2 if SCALE == "paper" else 1


@pytest.mark.benchmark(group="chess-speedup")
def test_chess_speedup_on_ten_cpus(benchmark):
    positions = [random_tactical_position(seed=s, plies=6) for s in range(NUM_POSITIONS)]

    def experiment():
        one = run_chess_program(positions, num_procs=1, depth=DEPTH)
        ten = run_chess_program(positions, num_procs=10, depth=DEPTH)
        return one, ten

    one, ten = run_once(benchmark, experiment)
    assert one.value.scores == ten.value.scores

    speedup = one.elapsed / ten.elapsed
    overhead = ten.value.total_nodes / max(1, one.value.total_nodes)

    # Paper shape: real speedup, but far from linear on 10 CPUs...
    assert 1.5 < speedup < 9.0
    # ...and the cause is search overhead: the parallel run expands more nodes.
    assert overhead >= 1.0

    benchmark.extra_info["depth"] = DEPTH
    benchmark.extra_info["speedup_10cpu"] = round(speedup, 2)
    benchmark.extra_info["search_overhead_node_ratio"] = round(overhead, 2)
    print(f"\nChess speedup on 10 CPUs: {speedup:.2f} (paper: 4.5-5.5); "
          f"search overhead {overhead:.2f}x nodes")
