"""FIG3 — Arc Consistency Problem speedup (paper Fig. 3).

The paper reports significant but clearly sub-linear speedups for a
64-variable ACP instance on 2-16 processors, and attributes the gap to the
CPU overhead of handling incoming update messages for the fully replicated
domain/work objects.  The benchmark reproduces the curve and checks both the
shape (real speedup, but below TSP's efficiency) and the explanation (protocol
overhead grows with the processor count).
"""

from __future__ import annotations

import pytest

from repro.apps.acp import random_acp_problem, solve_sequential_ac3
from repro.apps.acp.orca_acp import run_acp_program
from repro.harness.figures import render_speedup_figure
from repro.metrics.speedup import SpeedupCurve

from conftest import SCALE, run_once

NUM_VARIABLES = 64 if SCALE == "paper" else 32
DOMAIN_SIZE = 16 if SCALE == "paper" else 12


@pytest.mark.benchmark(group="fig3-acp")
def test_fig3_acp_speedup_curve(benchmark, acp_processor_counts):
    problem = random_acp_problem(num_variables=NUM_VARIABLES, domain_size=DOMAIN_SIZE,
                                 constraints_per_variable=2.5, seed=21)
    sequential = solve_sequential_ac3(problem)

    def experiment():
        times = {}
        overheads = {}
        for procs in acp_processor_counts:
            result = run_acp_program(problem, num_procs=procs)
            assert result.value.domain_sizes == sequential.domain_sizes()
            times[procs] = result.elapsed
            overheads[procs] = result.overhead_time
        return times, overheads

    times, overheads = run_once(benchmark, experiment)
    curve = SpeedupCurve(times, base_procs=min(times))

    top = max(times)
    # Fig. 3 shape: worthwhile speedup ...
    assert curve.speedup(top) > 2.0
    # ... but clearly below perfect (the paper's 16-CPU point is ~8-10).
    assert curve.efficiency(top) < 0.95
    # The explanation: update-handling overhead rises with the machine count.
    assert overheads[top] > overheads[min(times)]

    benchmark.extra_info["num_variables"] = NUM_VARIABLES
    benchmark.extra_info["speedups"] = {str(p): round(s, 2) for p, s in curve.speedups().items()}
    benchmark.extra_info["protocol_overhead_seconds"] = {
        str(p): round(o, 4) for p, o in overheads.items()
    }
    print()
    print(render_speedup_figure(f"Fig. 3 — ACP speedup ({NUM_VARIABLES} variables)", curve, top))
