"""KERNEL SCALING — simulator-core throughput at 8/16/64 nodes.

Every other benchmark measures the *protocols*; this one measures the
*simulator* that carries them.  A broadcast-heavy write workload (every
request crosses the sequencer and fans out to all members) is swept over
8, 16 and 64 nodes, the scale at which the per-member delivery fan-out and
the event-queue constant factors dominate wall-clock time.  The paper's
broadcast-vs-point-to-point tradeoff turns on exactly these cluster sizes,
so CI must be able to afford them.

Two outputs, deliberately separated:

* the **fingerprint report** (``--smoke --out``) holds virtual-time metrics
  only and must be byte-identical across runs — it is committed as
  ``benchmarks/baselines/kernel_scaling.json`` and double-run in CI;
* the **timings report** (``--timings``) holds per-cell wall-clock seconds
  and feeds the wall-clock budget gate
  (``scripts/check_bench_regression.py --budget``).  Wall-clock never goes
  into the fingerprint file, where it would break the byte diff.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_kernel_scaling.py \
        --smoke --out smoke.json --timings timings.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.config import ClusterConfig
from repro.metrics.report import format_table
from repro.workloads import WorkloadRunner, WorkloadSpec

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

SEED = 42
NODE_COUNTS = [8, 16, 64]

#: Write-only counter traffic: every request is a sequenced broadcast that
#: fans out to all members, so the cost per op grows with the cluster and
#: the simulator core (event queue, delivery path, process handshake) is
#: what the wall clock measures.
SPEC = WorkloadSpec(name="counter-farm-writes", num_keys=32,
                    read_fraction=0.0, ops_per_client=20,
                    think_time=0.0005)
CLIENTS_PER_NODE = 2

#: Reduced smoke matrix: one client per node, a few ops each — small enough
#: for CI to run the whole sweep twice for the byte diff.
SMOKE_OPS = 8
SMOKE_CLIENTS_PER_NODE = 1


def run_cell(num_nodes: int, clients_per_node: int, ops_per_client: int):
    """One timed cell; returns ``(report, wall_seconds)``."""
    spec = SPEC.with_overrides(ops_per_client=ops_per_client)
    started = time.perf_counter()
    report = WorkloadRunner(
        "counter-farm", workload=spec, runtime="broadcast",
        num_nodes=num_nodes, clients_per_node=clients_per_node, seed=SEED,
        config=ClusterConfig(num_nodes=num_nodes, seed=SEED)).run()
    return report, time.perf_counter() - started


@pytest.mark.benchmark(group="kernel-scaling")
def test_kernel_scaling_sweep(benchmark):
    def experiment():
        return [(nodes,) + run_cell(nodes, CLIENTS_PER_NODE,
                                    SPEC.ops_per_client)
                for nodes in NODE_COUNTS]

    cells = run_once(benchmark, experiment)

    rows = []
    for nodes, report, wall in cells:
        expected = nodes * CLIENTS_PER_NODE * SPEC.ops_per_client
        assert report.total_ops == expected
        assert report.throughput > 0
        rows.append([str(nodes), str(report.total_ops),
                     f"{report.throughput:.0f}",
                     f"{report.elapsed * 1e3:.1f}", f"{wall:.2f}"])

    # Determinism: the largest cell replays fingerprint-for-fingerprint.
    largest, largest_report, _ = cells[-1]
    repeat, _ = run_cell(largest, CLIENTS_PER_NODE, SPEC.ops_per_client)
    assert repeat.fingerprint() == largest_report.fingerprint()

    benchmark.extra_info["cells"] = {str(nodes): report.fingerprint() for nodes, report, _ in cells}
    benchmark.extra_info["wall_seconds"] = {str(nodes): wall for nodes, _, wall in cells}
    print()
    print(format_table(
        ["nodes", "ops", "ops/s (virtual)", "virtual ms", "wall s"],
        rows,
        title=f"Kernel scaling, broadcast write storm (seed {SEED})"))


# ---------------------------------------------------------------------- #
# Script mode: the CI determinism smoke report + wall-clock timings
# ---------------------------------------------------------------------- #


def smoke_cells():
    """Run the reduced sweep; returns (fingerprint payload, timings payload)."""
    fingerprints = {}
    timings = {}
    for nodes in NODE_COUNTS:
        report, wall = run_cell(nodes, SMOKE_CLIENTS_PER_NODE, SMOKE_OPS)
        fingerprints[str(nodes)] = report.fingerprint()
        timings[f"kernel_scaling/{nodes}_nodes"] = round(wall, 3)
    return fingerprints, timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Kernel scaling benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced sweep and emit canonical JSON")
    parser.add_argument("--out", default=None,
                        help="write the fingerprint JSON here instead of stdout")
    parser.add_argument("--timings", default=None,
                        help="write per-cell wall-clock seconds (JSON) here; "
                             "kept out of the byte-diffed fingerprint file")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    fingerprints, timings = smoke_cells()
    payload = {
        "seed": SEED,
        "clients_per_node": SMOKE_CLIENTS_PER_NODE,
        "ops_per_client": SMOKE_OPS,
        "cells": fingerprints,
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    if args.timings:
        with open(args.timings, "w") as fh:
            fh.write(json.dumps(timings, indent=2, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
