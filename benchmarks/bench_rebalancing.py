"""REBALANCING — moving hot objects across broadcast groups at run time.

Static sharding breaks the single-sequencer ceiling, but it pins every
object to the group it hashed to at creation: under a Zipfian-skewed
workload one sequencer melts while the others idle.  This benchmark measures
the online drain-and-switch rebalancing that fixes it, in three cells:

* **Skewed counter farm, no flow control** — 64 Zipf(s=1.2) counters whose
  name-hash placement clumps ~43% of the write traffic onto one of four
  groups.  The melted sequencer's queue outlives the senders' retry timers,
  so duplicate retransmissions eat its service capacity — the overload
  spiral.  Online rebalancing drains hot objects onto the idle groups and
  must recover **>= 1.3x the static-placement write throughput** (measured
  ~1.9x).  An oracle cell (weight-balanced explicit placement) shows the
  ceiling.
* **Skewed counter farm + batch-aware flow control** — the same shape with
  ``backpressure_depth`` coupling the batching window to the sequencer
  queue: the spiral is capped for *everyone*, static placement stops
  collapsing, and rebalancing composes with flow control to reach the
  oracle placement's throughput.
* **Live group growth** — a cluster born with ONE broadcast group under a
  multi-log append workload; the rebalancing controller adds three groups
  to the running cluster (``grow_to=4``) and spreads the logs over them,
  with per-client FIFO and exactly-once delivery intact and zero elections.

Deterministic under the fixed seed; the rebalanced cell is re-run and
compared fingerprint-for-fingerprint (move points included).

Run as a script with ``--smoke`` to emit a reduced canonical-JSON report for
the CI determinism regression (two runs must be byte-identical)::

    PYTHONPATH=src python benchmarks/bench_rebalancing.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig, CostModel
from repro.metrics.latency import format_latency_row
from repro.metrics.report import format_table
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation
from repro.rts.sharding import ExplicitPlacement, HashPlacement
from repro.workloads import WorkloadRunner, WorkloadSpec

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

NUM_NODES = 8
SEED = 42
NUM_SHARDS = 4
CLIENTS_PER_NODE = 5

#: 1 ms of ordering service per message: a lone sequencer caps at 1000
#: msgs/s, which the write-only skewed farm saturates several times over.
COST_MODEL = CostModel().with_overrides(cpu={"sequencing_cost": 1.0e-3})
#: The flow-control cell runs an even slower sequencer so that *batched*
#: traffic still saturates the hot group.
SLOW_COST_MODEL = CostModel().with_overrides(cpu={"sequencing_cost": 4.0e-3})

#: Write-only Zipfian traffic over 64 counters.  CRC name-hash placement
#: over 4 shards clumps the hottest ranks: one group carries ~43% of the
#: writes while the best achievable bin (the top key alone) is ~29%.
SKEW_SPEC = WorkloadSpec(name="skewed-writes", num_keys=64,
                         popularity="zipfian", zipf_s=1.2, read_fraction=0.0,
                         ops_per_client=100, think_time=0.0)

FLOW_SPEC = SKEW_SPEC.with_overrides(name="skewed-writes-fc", zipf_s=1.3, ops_per_client=150)

REBALANCE = {"interval": 0.004, "imbalance": 1.4, "min_writes": 64, "max_moves": 3}

BACKPRESSURE_BATCHING = {"max_batch": 4, "flush_delay": 0.0, "backpressure_depth": 8}


def oracle_placement(spec: WorkloadSpec) -> ExplicitPlacement:
    """Weight-balanced explicit placement: greedy Zipf bin-packing.

    The static optimum a clairvoyant operator could configure — the
    reference "uniform placement" the rebalancer is measured against.
    """
    weights = sorted(((1.0 / ((k + 1) ** spec.zipf_s), k)
                      for k in range(spec.num_keys)), reverse=True)
    bins = [0.0] * NUM_SHARDS
    assignments = {}
    for weight, key in weights:
        target = min(range(NUM_SHARDS), key=lambda b: (bins[b], b))
        bins[target] += weight
        assignments[f"counter[{key}]"] = target
    return ExplicitPlacement(NUM_SHARDS, assignments)


def run_cell(spec: WorkloadSpec, placement, rebalance=None, batching=None,
             cost_model=COST_MODEL, num_nodes=NUM_NODES,
             clients_per_node=CLIENTS_PER_NODE):
    options = {"placement": placement}
    if rebalance is not None:
        options["rebalance"] = dict(rebalance)
    return WorkloadRunner(
        "counter-farm", workload=spec, runtime="broadcast",
        num_nodes=num_nodes, clients_per_node=clients_per_node, seed=SEED,
        num_shards=NUM_SHARDS, batching=batching, rts_options=options,
        config=ClusterConfig(num_nodes=num_nodes, seed=SEED,
                             cost_model=cost_model)).run()


def skew_cells(spec: WorkloadSpec, batching=None, cost_model=COST_MODEL):
    """The three placements under one workload: static hash / oracle /
    online-rebalanced."""
    return {
        "static-hash": run_cell(spec, HashPlacement(NUM_SHARDS, by="name"),
                                batching=batching, cost_model=cost_model),
        "oracle": run_cell(spec, oracle_placement(spec), batching=batching,
                           cost_model=cost_model),
        "rebalanced": run_cell(spec, HashPlacement(NUM_SHARDS, by="name"),
                               rebalance=REBALANCE, batching=batching,
                               cost_model=cost_model),
    }


# ---------------------------------------------------------------------- #
# Live group growth under an order-sensitive workload (direct harness)
# ---------------------------------------------------------------------- #


class BenchLog(ObjectSpec):
    """Order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)


def run_live_growth(seed=SEED, writers_per_node=2, ops_per_writer=40,
                    num_nodes=NUM_NODES, grow_to=4):
    """Start with ONE broadcast group; let the controller add groups to the
    running cluster and spread the logs over them; returns order facts."""
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed, cost_model=COST_MODEL))
    rts = HybridRts(cluster, default_policy="broadcast", num_shards=1,
                    rebalance={"interval": 0.004, "imbalance": 1.4,
                               "min_writes": 48, "max_moves": 3,
                               "grow_to": grow_to})
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        for i in range(num_nodes):
            handles[i] = rts.create_object(proc, BenchLog, name=f"log[{i}]")

    def writer(node_id, writer_id):
        proc = cluster.sim.current_process
        for k in range(ops_per_writer):
            rts.invoke(proc, handles[node_id % num_nodes], "append",
                       ((node_id, writer_id, k),))
            proc.hold(0.0002)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    for node in cluster.nodes:
        for writer_id in range(writers_per_node):
            node.kernel.spawn_thread(writer, node.node_id, writer_id)
    cluster.run()

    fifo_ok = True
    replicas_agree = True
    appends = 0
    for i in range(num_nodes):
        items = rts.managers[0].get(handles[i].obj_id).instance.items
        appends += len(items)
        per_client = {}
        for node_id, writer_id, k in items:
            per_client.setdefault((node_id, writer_id), []).append(k)
        fifo_ok &= all(ks == list(range(ops_per_writer)) for ks in per_client.values())
        fifo_ok &= len(per_client) == writers_per_node
        for node in cluster.nodes:
            replicas_agree &= (rts.managers[node.node_id]
                               .get(handles[i].obj_id).instance.items == items)
    facts = {
        "final_shards": rts.router.num_shards,
        "shards_added": rts.stats.shards_added,
        "moves": rts.stats.shard_moves,
        "placement": {h.name: rts.shard_of(h)
                      for h in sorted(handles.values(), key=lambda h: h.name)},
        "appends_applied": appends,
        "expected_appends": num_nodes * writers_per_node * ops_per_writer,
        "per_client_fifo": fifo_ok,
        "replicas_agree": replicas_agree,
        "elections": sum(g.stats.elections for g in rts.router.groups),
        "deliveries_per_group": {g.group_id: g.stats.deliveries
                                 for g in rts.router.groups},
    }
    cluster.shutdown()
    return facts


# ---------------------------------------------------------------------- #
# Benchmarks
# ---------------------------------------------------------------------- #


def _print_cells(title, reports, extra_cols=()):
    rows = []
    for name, report in reports.items():
        p50, p95, p99, mean = format_latency_row(report.request_latency["overall"])
        rebal = report.rts_summary.get("rebalancing", {})
        row = [name, f"{report.throughput:.0f}", p50, p95, p99, str(rebal.get("moves", 0))]
        for col in extra_cols:
            row.append(str(report.rts_summary.get(col, 0)))
        rows.append(row)
    headers = ["placement", "ops/s", "p50 ms", "p95 ms", "p99 ms", "moves"]
    headers += list(extra_cols)
    print()
    print(format_table(headers, rows, title=title))


@pytest.mark.benchmark(group="rebalancing")
def test_rebalancing_recovers_skewed_write_throughput(benchmark):
    def experiment():
        return skew_cells(SKEW_SPEC)

    reports = run_once(benchmark, experiment)

    throughput = {name: r.throughput for name, r in reports.items()}
    # The acceptance claim: online rebalancing recovers >= 1.3x the static
    # hash placement's write throughput on the skewed farm (measured ~1.9x:
    # the melted sequencer's retry spiral makes static placement *worse*
    # than its share imbalance alone would suggest).
    assert throughput["rebalanced"] >= 1.3 * throughput["static-hash"], throughput
    assert throughput["oracle"] > throughput["static-hash"], throughput

    rebalancing = reports["rebalanced"].rts_summary["rebalancing"]
    assert rebalancing["moves"] >= 3
    assert rebalancing["placement_epoch"] >= rebalancing["moves"]
    # The static cells never moved anything.
    for name in ("static-hash", "oracle"):
        assert "rebalancing" not in reports[name].rts_summary
    # Every cell applied every write exactly once (counter conservation is
    # asserted inside the scenario's validate()).
    for report in reports.values():
        assert report.scenario_facts["counter_total"] == report.writes

    # Determinism: re-running the rebalanced cell reproduces it exactly,
    # move points included.
    repeat = run_cell(SKEW_SPEC, HashPlacement(NUM_SHARDS, by="name"),
                      rebalance=REBALANCE)
    assert repeat.fingerprint() == reports["rebalanced"].fingerprint()

    benchmark.extra_info["throughput"] = {k: round(v, 3) for k, v in throughput.items()}
    benchmark.extra_info["moves"] = rebalancing["moves"]
    benchmark.extra_info["cells"] = {k: r.fingerprint() for k, r in reports.items()}
    _print_cells(
        f"Zipf(s={SKEW_SPEC.zipf_s}) write-only counter farm, no flow "
        f"control ({NUM_NODES} nodes, {NUM_SHARDS} shards, "
        f"{CLIENTS_PER_NODE} clients/node, seed {SEED})", reports)


@pytest.mark.benchmark(group="rebalancing")
def test_rebalancing_composes_with_flow_control(benchmark):
    def experiment():
        return skew_cells(FLOW_SPEC, batching=dict(BACKPRESSURE_BATCHING),
                          cost_model=SLOW_COST_MODEL)

    reports = run_once(benchmark, experiment)

    throughput = {name: r.throughput for name, r in reports.items()}
    # Flow control stops the retry spiral for everyone, so the static gap
    # narrows to the share imbalance itself — and rebalancing closes it,
    # reaching the clairvoyant oracle placement's throughput.
    assert throughput["rebalanced"] >= 1.1 * throughput["static-hash"], throughput
    assert throughput["rebalanced"] >= 0.85 * throughput["oracle"], throughput
    # The backpressure knob actually engaged in every cell.
    for name, report in reports.items():
        assert report.rts_summary.get("flow_control_holds", 0) > 0, name
        assert report.scenario_facts["counter_total"] == report.writes

    benchmark.extra_info["throughput"] = {k: round(v, 3) for k, v in throughput.items()}
    benchmark.extra_info["cells"] = {k: r.fingerprint() for k, r in reports.items()}
    _print_cells(
        f"Zipf(s={FLOW_SPEC.zipf_s}) counter farm with batch-aware flow "
        f"control ({NUM_NODES} nodes, {NUM_SHARDS} shards, seed {SEED})",
        reports, extra_cols=("flow_control_holds",))


@pytest.mark.benchmark(group="rebalancing")
def test_live_group_add_preserves_per_client_fifo(benchmark):
    facts = run_once(benchmark, run_live_growth)

    # The cluster grew from one broadcast group to four while the writers
    # ran, and the controller spread the logs over the new groups.
    assert facts["final_shards"] == 4, facts
    assert facts["shards_added"] == 3, facts
    assert facts["moves"] >= 3, facts
    assert len(set(facts["placement"].values())) >= 3, facts
    for group_id, deliveries in facts["deliveries_per_group"].items():
        assert deliveries > 0, facts
    # ... with every append applied exactly once, in per-client order, the
    # same everywhere, and without a single (spurious) election.
    assert facts["appends_applied"] == facts["expected_appends"], facts
    assert facts["per_client_fifo"], facts
    assert facts["replicas_agree"], facts
    assert facts["elections"] == 0, facts

    benchmark.extra_info["facts"] = facts
    print()
    print(format_table(
        ["shards", "added", "moves", "appends", "fifo", "elections"],
        [[str(facts["final_shards"]), str(facts["shards_added"]),
          str(facts["moves"]), str(facts["appends_applied"]),
          str(facts["per_client_fifo"]), str(facts["elections"])]],
        title="Live add_group() under an order-sensitive append workload"))


# ---------------------------------------------------------------------- #
# Script mode: the CI determinism smoke report
# ---------------------------------------------------------------------- #

SMOKE_NODES = 4
SMOKE_SPEC = SKEW_SPEC.with_overrides(num_keys=32, ops_per_client=40)


def smoke_reports():
    """Reduced rebalancing cells for the byte-diff determinism regression.

    Small enough for CI to run twice, but still exercising object moves,
    the flow-control hold path, and live group growth — so nondeterminism
    in any of them shows up as a byte diff.
    """
    static = run_cell(SMOKE_SPEC, HashPlacement(NUM_SHARDS, by="name"),
                      num_nodes=SMOKE_NODES, clients_per_node=3)
    rebalanced = run_cell(
        SMOKE_SPEC, HashPlacement(NUM_SHARDS, by="name"),
        rebalance={"interval": 0.004, "imbalance": 1.4, "min_writes": 32,
                   "max_moves": 3},
        num_nodes=SMOKE_NODES, clients_per_node=3)
    flow = run_cell(
        SMOKE_SPEC, HashPlacement(NUM_SHARDS, by="name"),
        rebalance={"interval": 0.004, "imbalance": 1.4, "min_writes": 32,
                   "max_moves": 3},
        batching=dict(BACKPRESSURE_BATCHING), cost_model=SLOW_COST_MODEL,
        num_nodes=SMOKE_NODES, clients_per_node=3)
    return {"static": static, "rebalanced": rebalanced, "flow-control": flow}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Shard rebalancing benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced cells and emit canonical JSON")
    parser.add_argument("--out", default=None, help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    reports = smoke_reports()
    growth = run_live_growth(writers_per_node=1, ops_per_writer=20,
                             num_nodes=SMOKE_NODES, grow_to=3)
    payload = {
        "seed": SEED,
        "nodes": SMOKE_NODES,
        "cells": {name: report.fingerprint()
                  for name, report in reports.items()},
        "live_growth": growth,
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
