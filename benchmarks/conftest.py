"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's figures or reported results.
Because each data point is a full cluster simulation, benchmarks run exactly
once per invocation (``rounds=1``) and record their derived measurements in
``benchmark.extra_info`` so the JSON output contains the reproduced
figure/table data alongside the wall-clock timing.

Set ``REPRO_BENCH_SCALE=paper`` to run the paper-sized workloads (14-city
TSP, 64-variable ACP, ...); the default ``small`` scale keeps the whole suite
to a few minutes on a laptop while preserving every qualitative shape.
"""

from __future__ import annotations

import os

import pytest

#: "small" (default) or "paper".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def tsp_processor_counts() -> list:
    return [1, 2, 4, 8, 12, 16]


@pytest.fixture(scope="session")
def acp_processor_counts() -> list:
    return [2, 4, 8, 16]
