"""GATEWAY — graceful degradation at the client edge.

PR 10 added the session tier (:mod:`repro.gateway`): per-node gateways
multiplex thousands of lightweight client sessions onto the runtime's
invoke path through admission control, per-tenant weighted fair queueing
with token-bucket quotas, and overload shedding off the sequencer queue
depth.  Four cells measure what the front door buys:

* **flash-unloaded** — the reference cell: the crowd tenant at its calm
  arrival rate, nothing sheds; its p99 is the "healthy" latency;
* **flash-shed / flash-unshed** — the same crowd spikes to 4x the calm
  rate.  With the bounded accept queue the gateway sheds the excess and
  the *admitted* requests' p99 stays within 2x of the unloaded cell;
  with the bound removed every arrival is admitted and the backlog
  drags p99 out by well over an order of magnitude;
* **noisy-neighbour** — a quota-capped aggressive tenant shares the
  gateway with a protected quiet tenant: the quiet tenant's p99 must
  stay within 20% of its quiet-alone reference (the uncapped variant is
  reported for contrast);
* **scale** — >=10k concurrent sessions through 8 gateways, the
  many-cheap-sessions design point (sessions are state machines, not
  simulated processes).

Run as a script with ``--smoke`` to emit a reduced canonical-JSON report
for the CI determinism regression (two runs must be byte-identical)::

    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.metrics.report import format_table
from repro.workloads import (
    PhaseSpec,
    TenantSpec,
    WorkloadRunner,
    WorkloadSpec,
)

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

NUM_NODES = 4
SEED = 42

#: Calm per-gateway arrival rate (req/s) and the flash-crowd multiplier.
CALM_RATE = 1000.0
OVERLOAD = 4.0
CROWD_SESSIONS = 16
READ_FRACTION = 0.5

#: The quiet tenant every noisy-neighbour variant must protect.
QUIET = TenantSpec(name="quiet", sessions=4, weight=4.0, priority=1,
                   arrival_rate=100.0, ops_per_session=60)


def _run(workload, gateway, num_nodes=NUM_NODES, seed=SEED):
    return WorkloadRunner("counter-farm", workload=workload,
                          runtime="broadcast", num_nodes=num_nodes,
                          seed=seed, gateway=gateway).run()


def _tenant_facts(report, name):
    """One tenant's edge-side facts, flattened for the smoke report."""
    row = report.rts_summary["gateway"]["tenants"][name]
    return {
        "offered": row["offered"],
        "completed": row["completed"],
        "shed": dict(row["shed"]),
        "p50": row["latency"]["p50"],
        "p99": row["latency"]["p99"],
        "throughput": round(row["completed"] / report.elapsed, 3),
    }


# ---------------------------------------------------------------------- #
# Cells
# ---------------------------------------------------------------------- #


def run_flash_crowd_cell(mode, seed=SEED, num_nodes=NUM_NODES, burst_ops=60):
    """The crowd tenant under one of three edge configurations.

    ``"unloaded"`` runs the calm rate throughout (the latency reference);
    ``"shed"`` spikes to ``OVERLOAD`` x calm behind the bounded accept
    queue; ``"unshed"`` runs the same spike with the bound removed, so
    the backlog — not the front door — absorbs the crowd.
    """
    crowd = TenantSpec(name="crowd", sessions=CROWD_SESSIONS)
    per_session = CALM_RATE / CROWD_SESSIONS
    if mode == "unloaded":
        workload = WorkloadSpec(
            name="flash-unloaded", num_keys=32, read_fraction=READ_FRACTION,
            client_model="open", arrival_rate=per_session,
            ops_per_client=burst_ops // 2 + burst_ops, tenants=(crowd,))
    else:
        workload = WorkloadSpec(
            name="flash", num_keys=32, read_fraction=READ_FRACTION,
            client_model="open", tenants=(crowd,),
            phases=(PhaseSpec(ops_per_client=burst_ops // 4,
                              arrival_rate=per_session),
                    PhaseSpec(ops_per_client=burst_ops,
                              arrival_rate=per_session * OVERLOAD),
                    PhaseSpec(ops_per_client=burst_ops // 4,
                              arrival_rate=per_session)))
    accept_queue = None if mode == "unshed" else 2 if mode == "shed" else 64
    report = _run(workload, {"workers": 2, "accept_queue": accept_queue},
                  num_nodes=num_nodes, seed=seed)
    return _tenant_facts(report, "crowd")


def run_noisy_neighbour_cell(noisy, seed=SEED, num_nodes=NUM_NODES):
    """The quiet tenant alone, or sharing with a (capped?) noisy tenant.

    ``noisy=None`` is the quiet-alone reference; ``"capped"`` adds an
    aggressive tenant behind a token-bucket quota; ``"uncapped"`` removes
    the quota so only fair queueing stands between the tenants.
    """
    tenants = (QUIET,)
    if noisy is not None:
        rate, burst = (300.0, 10.0) if noisy == "capped" else (None, None)
        tenants += (TenantSpec(name="noisy", sessions=8, priority=0,
                               rate=rate, burst=burst, arrival_rate=250.0,
                               ops_per_session=60),)
    workload = WorkloadSpec(
        name="noisy-neighbour", num_keys=32, read_fraction=READ_FRACTION,
        client_model="open", arrival_rate=100.0, ops_per_client=60,
        tenants=tenants)
    report = _run(workload, {"workers": 2, "accept_queue": 64}, num_nodes=num_nodes, seed=seed)
    facts = {"quiet": _tenant_facts(report, "quiet")}
    if noisy is not None:
        facts["noisy"] = _tenant_facts(report, "noisy")
    return facts


def run_scale_cell(sessions_per_gateway, num_nodes=8, seed=SEED):
    """Many cheap sessions: a whole fleet through a handful of gateways."""
    workload = WorkloadSpec(
        name="scale", num_keys=64, read_fraction=0.9, client_model="open",
        arrival_rate=4.0, ops_per_client=3,
        tenants=(TenantSpec(name="fleet", sessions=sessions_per_gateway),))
    report = _run(workload, {"workers": 8, "accept_queue": 256}, num_nodes=num_nodes, seed=seed)
    gateway = report.rts_summary["gateway"]
    facts = _tenant_facts(report, "fleet")
    facts["sessions"] = gateway["sessions"]
    facts["gateways"] = gateway["gateways"]
    return facts


def gateway_cells(seed=SEED, num_nodes=NUM_NODES, burst_ops=60, scale_sessions=1280, scale_nodes=8):
    return {
        "flash-unloaded": run_flash_crowd_cell("unloaded", seed=seed,
                                               num_nodes=num_nodes,
                                               burst_ops=burst_ops),
        "flash-shed": run_flash_crowd_cell("shed", seed=seed,
                                           num_nodes=num_nodes,
                                           burst_ops=burst_ops),
        "flash-unshed": run_flash_crowd_cell("unshed", seed=seed,
                                             num_nodes=num_nodes,
                                             burst_ops=burst_ops),
        "quiet-alone": run_noisy_neighbour_cell(None, seed=seed,
                                                num_nodes=num_nodes),
        "noisy-capped": run_noisy_neighbour_cell("capped", seed=seed,
                                                 num_nodes=num_nodes),
        "noisy-uncapped": run_noisy_neighbour_cell("uncapped", seed=seed,
                                                   num_nodes=num_nodes),
        "scale": run_scale_cell(scale_sessions, num_nodes=scale_nodes,
                                seed=seed),
    }


# ---------------------------------------------------------------------- #
# Benchmarks
# ---------------------------------------------------------------------- #


def _print_cells(title, cells):
    unloaded = cells["flash-unloaded"]

    def flash_row(name):
        cell = cells[name]
        return [name, f"{cell['completed']}/{cell['offered']}",
                f"p99={cell['p99'] * 1e3:.3f}ms",
                f"x{cell['p99'] / unloaded['p99']:.2f}",
                f"{cell['throughput']:.0f}/s"]

    quiet_alone = cells["quiet-alone"]["quiet"]

    def quiet_row(name):
        quiet = cells[name]["quiet"]
        return [name, f"{quiet['completed']}/{quiet['offered']}",
                f"p99={quiet['p99'] * 1e3:.3f}ms",
                f"x{quiet['p99'] / quiet_alone['p99']:.2f}",
                f"{quiet['throughput']:.0f}/s"]

    scale = cells["scale"]
    rows = [
        flash_row("flash-unloaded"),
        flash_row("flash-shed"),
        flash_row("flash-unshed"),
        quiet_row("quiet-alone"),
        quiet_row("noisy-capped"),
        quiet_row("noisy-uncapped"),
        ["scale", f"{scale['sessions']} sessions",
         f"p99={scale['p99'] * 1e3:.3f}ms", "-",
         f"{scale['throughput']:.0f}/s"],
    ]
    print()
    print(format_table(["cell", "volume", "latency", "vs ref", "goodput"], rows, title=title))


@pytest.mark.benchmark(group="gateway")
def test_gateway_sheds_gracefully_under_overload(benchmark):
    cells = run_once(benchmark, gateway_cells)

    unloaded = cells["flash-unloaded"]
    shed, unshed = cells["flash-shed"], cells["flash-unshed"]
    assert unloaded["shed"] == dict.fromkeys(unloaded["shed"], 0)
    # Graceful degradation: under the 4x flash crowd the bounded accept
    # queue sheds the excess and keeps the admitted requests' p99 within
    # 2x of the unloaded reference ...
    assert sum(shed["shed"].values()) > 0, "the flash crowd never shed"
    assert shed["p99"] <= 2.0 * unloaded["p99"], (shed, unloaded)
    # ... while admitting everything lets the backlog spiral the tail
    # out by an order of magnitude or more.
    assert unshed["completed"] == unshed["offered"]
    assert unshed["p99"] >= 10.0 * unloaded["p99"], (unshed, unloaded)

    alone = cells["quiet-alone"]["quiet"]
    capped = cells["noisy-capped"]
    # Noisy neighbour: behind its quota the aggressive tenant cannot move
    # the protected tenant's p99 by more than 20%.
    assert capped["noisy"]["shed"]["quota"] > 0, "the quota never engaged"
    assert capped["quiet"]["p99"] <= 1.2 * alone["p99"], (capped, alone)
    assert capped["quiet"]["completed"] == capped["quiet"]["offered"]

    scale = cells["scale"]
    assert scale["sessions"] >= 10_000
    assert scale["completed"] == scale["offered"] == 3 * scale["sessions"]

    # Determinism: the cheapest cell replays byte-for-byte.
    repeat = run_noisy_neighbour_cell(None)
    assert repeat == cells["quiet-alone"]

    benchmark.extra_info["cells"] = cells
    _print_cells(f"Gateway admission control on {NUM_NODES} nodes (seed {SEED})", cells)


# ---------------------------------------------------------------------- #
# Script mode: the CI determinism smoke report
# ---------------------------------------------------------------------- #

SMOKE_KWARGS = dict(num_nodes=4, burst_ops=40, scale_sessions=640,
                    scale_nodes=4)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Gateway benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced cells and emit canonical JSON")
    parser.add_argument("--out", default=None, help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    payload = {
        "seed": SEED,
        "nodes": SMOKE_KWARGS["num_nodes"],
        "cells": gateway_cells(**SMOKE_KWARGS),
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
