"""RW-RATIO — when does replication pay off? (paper §2 and ref. [3])

"Whether replication can be done efficiently in software depends on two
factors.  The first is the ratio of reads to writes. [...] The gain from
making reads cheap generally results in a major gain in performance."

The benchmark runs the same shared-counter workload under three object
managements — the fully replicated broadcast RTS, a central-server (single
copy, every remote access is an RPC), and a page-based DSM baseline — while
sweeping the read fraction, and checks the crossover: replication wins
decisively for read-mostly objects and loses its advantage as writes dominate.
"""

from __future__ import annotations

import pytest

from repro.baselines.central_server import CentralServerRts
from repro.baselines.ivy_dsm import run_ivy_workload
from repro.config import ClusterConfig
from repro.metrics.report import format_table
from repro.orca.builtin_objects import IntObject
from repro.orca.program import OrcaProgram

from conftest import run_once

NUM_PROCS = 8
OPS_PER_WORKER = 40
READ_FRACTIONS = [0.99, 0.9, 0.7, 0.4, 0.1]


def shared_counter_main(proc, read_fraction: float):
    shared = proc.new_object(IntObject, 0)

    def worker(wproc, obj, worker_id=0):
        state = worker_id * 2654435761 + 1
        for _ in range(OPS_PER_WORKER):
            wproc.compute(200)
            state = (state * 1103515245 + 12345) % 2**31
            if (state % 1000) / 1000.0 < read_fraction:
                obj.read()
            else:
                obj.add(1)

    proc.join_all(proc.fork_workers(worker, shared))
    return shared.read()


def run_rts(kind: str, read_fraction: float) -> float:
    config = ClusterConfig(num_nodes=NUM_PROCS, seed=13)
    if kind == "replicated":
        program = OrcaProgram(shared_counter_main, config, rts="broadcast")
    elif kind == "central":
        program = OrcaProgram(shared_counter_main, config, rts="p2p",
                              rts_options={"dynamic_replication": False})
        program._build_runtime = lambda cluster: CentralServerRts(cluster)  # type: ignore[method-assign]
    else:
        raise ValueError(kind)
    return program.run(read_fraction).elapsed


@pytest.mark.benchmark(group="rw-ratio")
def test_replication_pays_off_for_read_mostly_objects(benchmark):
    def experiment():
        rows = []
        for read_fraction in READ_FRACTIONS:
            replicated = run_rts("replicated", read_fraction)
            central = run_rts("central", read_fraction)
            ivy = run_ivy_workload(num_nodes=NUM_PROCS, ops_per_worker=OPS_PER_WORKER,
                                   read_fraction=read_fraction, seed=13)
            rows.append((read_fraction, replicated, central, ivy))
        return rows

    rows = run_once(benchmark, experiment)

    by_fraction = {rf: (rep, cen, ivy) for rf, rep, cen, ivy in rows}
    # Read-mostly: full replication clearly beats both baselines.
    rep, cen, ivy = by_fraction[0.99]
    assert rep < cen / 2
    assert rep < ivy
    # Write-heavy: replication's advantage over the central server disappears
    # (broadcasting every write to 8 machines is no longer worth it).
    rep_w, cen_w, _ivy_w = by_fraction[0.1]
    assert rep_w > cen_w * 0.5
    advantage_read_mostly = cen / rep
    advantage_write_heavy = cen_w / rep_w
    assert advantage_read_mostly > advantage_write_heavy

    table = [[f"{rf:.2f}", f"{rep:.4f}", f"{cen:.4f}", f"{ivy:.4f}"] for rf, rep, cen, ivy in rows]
    benchmark.extra_info["rows"] = {
        str(rf): {"replicated": round(rep, 4), "central": round(cen, 4),
                  "ivy_dsm": round(ivy, 4)}
        for rf, rep, cen, ivy in rows
    }
    print()
    print(format_table(
        ["read fraction", "replicated objects (s)", "central server (s)", "Ivy-style DSM (s)"],
        table, title="§2 — read/write ratio vs object management"))
