"""ELASTICITY — rolling restarts, planned drains and live scale-in.

PR 5 made the cluster survive crashes; this benchmark closes the loop: a
recovered machine rejoins (history reseeded through each group's total
order, membership re-armed, primary seats handed back), a machine leaves
*gracefully* (every primary and sequencer seat evacuated before it stops,
so no client ever sees a dead-peer failure), and the broadcast-group set
shrinks under load (``remove_shard`` merges a group's order away).  Three
cells measure the loop:

* **rolling-restart** — every non-client machine is crashed, recovered and
  caught back up in sequence under live mixed-policy traffic; the cell
  reports rejoins, reseeded copies and the worst catch-up window, and
  asserts conservation (zero lost or duplicated writes);
* **drain** — a machine holding primary seats and a sequencer seat is
  drained mid-run: all seats move, the machine retires, and — the claim
  that separates a drain from a crash — *zero* takeovers fire and every
  writer completes exactly once;
* **scale-in** — a 4-group cluster merges down to 2 groups while a counter
  farm keeps writing; objects are evacuated through the retiring groups'
  total order with conservation intact.

Run as a script with ``--smoke`` to emit a reduced canonical-JSON report
for the CI determinism regression (two runs must be byte-identical)::

    PYTHONPATH=src python benchmarks/bench_elasticity.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.metrics.report import format_table
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

NUM_NODES = 5
SEED = 42
CLIENTS_PER_NODE = 2
OPS_PER_CLIENT = 60
DRAIN_AT = 0.006


class BenchLog(ObjectSpec):
    """Order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)


# ---------------------------------------------------------------------- #
# Cells
# ---------------------------------------------------------------------- #


def run_restart_cell(seed=SEED, num_nodes=NUM_NODES,
                     clients_per_node=CLIENTS_PER_NODE,
                     ops_per_client=OPS_PER_CLIENT):
    """Rolling restart of every non-client node under mixed-policy load."""
    spec = WorkloadSpec(name="rolling-restart", num_keys=8,
                        read_fraction=0.5, think_time=0.0005,
                        ops_per_client=ops_per_client)
    report = WorkloadRunner("rolling-restart", workload=spec,
                            runtime="adaptive", num_nodes=num_nodes,
                            clients_per_node=clients_per_node,
                            seed=seed).run()
    facts = report.scenario_facts
    elasticity = report.rts_summary.get("elasticity") or {}
    return {
        "writes": report.writes,
        "counter_total": facts["counter_total"],
        "restarted_nodes": facts.get("restarted_nodes", []),
        "rejoins": elasticity.get("node_rejoins", 0),
        "objects_reseeded": elasticity.get("objects_reseeded", 0),
        "seats_handed_back": elasticity.get("seats_handed_back", 0),
        "max_rejoin_window": elasticity.get("max_rejoin_window"),
        "rejoin_log": [list(entry)
                       for entry in elasticity.get("rejoin_log", [])],
        "policies": dict(sorted(report.final_policies().items())),
    }


def run_drain_cell(seed=SEED, num_nodes=NUM_NODES,
                   writers_per_node=CLIENTS_PER_NODE,
                   ops_per_writer=OPS_PER_CLIENT):
    """Drain a machine holding primary + sequencer seats under live writes.

    The victim hosts both primary-policy logs' seats and (being the first
    machine) shard 0's sequencer seat; writers on the other machines keep
    appending while ``drain_node`` evacuates everything.  A drain differs
    from a crash precisely in what must NOT happen: no takeover, no failed
    RPC, no re-issued write.
    """
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast")
    victim = 0  # node 0 seats shard sequencers, the interesting drain
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        handles["update"] = rts.create_object(
            proc, BenchLog, name="log-update", policy="primary-update")
        handles["invalidate"] = rts.create_object(
            proc, BenchLog, name="log-invalidate",
            policy="primary-invalidate")
        handles["shared"] = rts.create_object(
            proc, BenchLog, name="log-broadcast", policy="broadcast")
        for key in ("update", "invalidate"):
            rts.relocate_primary(proc, handles[key], target=victim)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    assert rts.directory.primary_of(handles["update"].obj_id) == victim
    drained = {}

    def writer(node_id, writer_id):
        proc = cluster.sim.current_process
        targets = ("update", "invalidate", "shared")
        for k in range(ops_per_writer):
            handle = handles[targets[k % len(targets)]]
            rts.invoke(proc, handle, "append", ((node_id, writer_id, k),))
            proc.hold(0.0003)

    def drainer():
        proc = cluster.sim.current_process
        proc.hold(DRAIN_AT)
        drained["ok"] = rts.drain_node(proc, victim)

    for node in cluster.nodes:
        if node.node_id == victim:
            continue
        for writer_id in range(writers_per_node):
            node.kernel.spawn_thread(writer, node.node_id, writer_id)
    cluster.node(1).kernel.spawn_thread(drainer)
    cluster.run()

    # Exactly-once + per-writer FIFO across all three logs combined.
    per_client = {}
    applied = 0
    for key in ("update", "invalidate", "shared"):
        obj_id = handles[key].obj_id
        holder = (rts.directory.primary_of(obj_id)
                  if key != "shared" else
                  next(n.node_id for n in cluster.nodes if n.alive))
        items = rts.managers[holder].get(obj_id).instance.items
        applied += len(items)
        for node_id, writer_id, k in items:
            # Per (log, writer): each writer round-robins the three logs,
            # so FIFO holds within a log, not across them.
            per_client.setdefault((key, node_id, writer_id), []).append(k)
    fifo_ok = all(ks == sorted(ks) and len(ks) == len(set(ks)) for ks in per_client.values())
    expected = (num_nodes - 1) * writers_per_node * ops_per_writer
    record = rts.drains[0] if rts.drains else None
    facts = {
        "drained": bool(drained.get("ok")),
        "victim_alive": cluster.node(victim).alive,
        "appends_applied": applied,
        "expected_appends": expected,
        "per_client_fifo": fifo_ok,
        "takeovers": rts.stats.primary_recoveries,
        "primary_seats_moved": (record.primary_seats_moved
                                if record else 0),
        "sequencer_seats_moved": (record.sequencer_seats_moved
                                  if record else 0),
        "drain_window": (None if record is None or record.completed_at is None
                         else round(record.completed_at - record.started_at, 9)),
        "deduplicated_writes": rts.stats.deduplicated_writes,
    }
    cluster.shutdown()
    return facts


def run_scale_in_cell(seed=SEED, num_nodes=NUM_NODES,
                      clients_per_node=CLIENTS_PER_NODE,
                      ops_per_client=OPS_PER_CLIENT):
    """Merge a 4-group cluster down to 2 groups under counter-farm load."""
    spec = WorkloadSpec(name="scale-in", num_keys=16, read_fraction=0.5,
                        think_time=0.0005, ops_per_client=ops_per_client)
    report = WorkloadRunner("scale-in", workload=spec, runtime="broadcast",
                            num_nodes=num_nodes,
                            clients_per_node=clients_per_node,
                            seed=seed, num_shards=4).run()
    facts = report.scenario_facts
    elasticity = report.rts_summary.get("elasticity") or {}
    return {
        "writes": report.writes,
        "counter_total": facts["counter_total"],
        "shards_removed": elasticity.get("shards_removed", 0),
        "removed_shards": list(elasticity.get("removed_shards", [])),
        "active_shards": facts.get("active_shards"),
        "shard_moves": report.rts_summary.get("rebalancing", {}).get(
            "moves", 0),
    }


def elasticity_cells(**kwargs):
    return {
        "rolling-restart": run_restart_cell(**kwargs),
        "drain": run_drain_cell(
            seed=kwargs.get("seed", SEED),
            num_nodes=kwargs.get("num_nodes", NUM_NODES),
            writers_per_node=kwargs.get("clients_per_node",
                                        CLIENTS_PER_NODE),
            ops_per_writer=kwargs.get("ops_per_client", OPS_PER_CLIENT)),
        "scale-in": run_scale_in_cell(**kwargs),
    }


# ---------------------------------------------------------------------- #
# Benchmarks
# ---------------------------------------------------------------------- #


def _print_cells(title, cells):
    restart, drain, scale = (cells["rolling-restart"], cells["drain"], cells["scale-in"])
    rows = [
        ["rolling-restart",
         f"{len(restart['restarted_nodes'])} nodes",
         f"rejoins={restart['rejoins']}",
         f"reseeded={restart['objects_reseeded']}",
         f"{restart['counter_total']}/{restart['writes']}"],
        ["drain",
         f"seats={drain['primary_seats_moved']}+"
         f"{drain['sequencer_seats_moved']}",
         f"takeovers={drain['takeovers']}",
         f"window={0 if drain['drain_window'] is None else drain['drain_window'] * 1e3:.2f}ms",
         f"{drain['appends_applied']}/{drain['expected_appends']}"],
        ["scale-in",
         f"4->{scale['active_shards']} groups",
         f"removed={scale['removed_shards']}",
         f"moves={scale['shard_moves']}",
         f"{scale['counter_total']}/{scale['writes']}"],
    ]
    print()
    print(format_table(["cell", "scope", "events", "cost", "conserved"], rows, title=title))


@pytest.mark.benchmark(group="elasticity")
def test_elasticity_loop_conserves_every_write(benchmark):
    cells = run_once(benchmark, elasticity_cells)

    restart = cells["rolling-restart"]
    # Every non-client node restarted, every restart produced a completed
    # rejoin that reseeded real object copies, and nothing was lost.
    assert restart["restarted_nodes"] == list(range(2, NUM_NODES))
    assert restart["rejoins"] == NUM_NODES - 2
    assert restart["objects_reseeded"] > 0
    assert restart["counter_total"] == restart["writes"], restart

    drain = cells["drain"]
    # The drain claim: seats moved, the machine retired, and the failure
    # path never fired — zero takeovers, zero re-issued writes, all
    # appends exactly once in per-writer FIFO order.
    assert drain["drained"] and not drain["victim_alive"]
    assert drain["takeovers"] == 0, drain
    assert drain["primary_seats_moved"] >= 2
    assert drain["sequencer_seats_moved"] >= 1
    assert drain["appends_applied"] == drain["expected_appends"], drain
    assert drain["per_client_fifo"], drain

    scale = cells["scale-in"]
    assert scale["shards_removed"] == 2
    assert scale["active_shards"] == 2
    assert scale["counter_total"] == scale["writes"], scale

    # Determinism: the most chaotic cell replays byte-for-byte.
    repeat = run_restart_cell()
    assert repeat == restart

    benchmark.extra_info["cells"] = cells
    _print_cells(f"Elasticity loop on {NUM_NODES} nodes (seed {SEED})", cells)


# ---------------------------------------------------------------------- #
# Script mode: the CI determinism smoke report
# ---------------------------------------------------------------------- #

SMOKE_KWARGS = dict(num_nodes=5, clients_per_node=1, ops_per_client=40)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Elasticity benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced cells and emit canonical JSON")
    parser.add_argument("--out", default=None, help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    payload = {
        "seed": SEED,
        "nodes": SMOKE_KWARGS["num_nodes"],
        "cells": elasticity_cells(**SMOKE_KWARGS),
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
