"""REAL BACKEND — the protocol over real sockets, timed on a wall clock.

Every other benchmark in this directory measures *virtual* time inside the
deterministic simulator.  This one runs the same scenarios through
:mod:`repro.net` — one OS process per node, asyncio UDP unicast on loopback,
the full ordering/primary/heartbeat protocol — and reports real wall-clock
throughput next to the simulator's virtual-time numbers for the identical
workload (same seed, same per-client request streams).

Every real cell is oracle-checked before its number is reported: the
converged state must match the deterministic stream replay (and the
simulator's facts), so a throughput figure can never come from a diverged
run.

Run as a script with ``--smoke`` to emit a JSON report with a deterministic
*schema* (fixed cells, fixed keys, deterministic convergence facts)::

    PYTHONPATH=src python benchmarks/bench_real_backend.py --smoke --out real.json

Unlike the simulator smokes, the wall-clock fields (``elapsed``,
``ops_per_s``) legitimately vary between runs, so this report is **not**
part of the CI byte-diff determinism gate; the ``real-backend`` CI job runs
the convergence tests and this smoke once instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.metrics.report import format_table
from repro.net.runner import run_real_workload
from repro.net.runtime import RealTimings
from repro.workloads.runner import WorkloadRunner
from repro.workloads.scenarios import ScenarioRegistry

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

NUM_NODES = 3
NUM_SHARDS = 2
SEED = 42
OPS_PER_CLIENT = 40
SCENARIOS = ("counter-farm", "fifo-queue", "hotspot-shift")

#: Loopback-friendly protocol timers (fast retry/sync, tolerant detector).
TIMINGS = RealTimings(heartbeat_interval=0.05, dead_after=0.5,
                      retry_interval=0.05, sync_interval=0.05,
                      gap_delay=0.03, submit_deadline=60.0)


def bench_spec(scenario):
    return ScenarioRegistry.get(scenario).default_spec().with_overrides(
        ops_per_client=OPS_PER_CLIENT)


def run_cell(scenario, seed=SEED):
    """One scenario on both backends; returns the comparison row."""
    spec = bench_spec(scenario)
    sim = WorkloadRunner(scenario, workload=spec, runtime="broadcast",
                         num_nodes=NUM_NODES, clients_per_node=1, seed=seed,
                         num_shards=NUM_SHARDS).run()
    real = run_real_workload(scenario=scenario, workload=spec,
                             num_nodes=NUM_NODES, num_shards=NUM_SHARDS,
                             seed=seed, timings=TIMINGS)
    assert real.total_ops == sim.total_ops, (real.total_ops, sim.total_ops)
    return {
        "scenario": scenario,
        "seed": seed,
        "ops": real.total_ops,
        "reads": real.reads,
        "writes": real.writes,
        "converged": True,  # run_real_workload raises otherwise
        "facts": dict(sorted(real.scenario_facts.items())),
        "real": {
            "elapsed": round(real.elapsed, 6),
            "ops_per_s": round(real.throughput, 1),
            "datagrams": real.network.get("datagrams_sent", 0),
        },
        "sim": {
            "virtual_elapsed": round(sim.elapsed, 9),
            "ops_per_virtual_s": round(sim.throughput, 1),
            "messages": sim.network.get("messages"),
        },
    }


def comparison_cells(scenarios=SCENARIOS):
    return [run_cell(scenario) for scenario in scenarios]


# ---------------------------------------------------------------------- #
# Benchmarks
# ---------------------------------------------------------------------- #


def _print_cells(cells):
    rows = []
    for cell in cells:
        rows.append([
            cell["scenario"],
            str(cell["ops"]),
            f"{cell['real']['elapsed'] * 1e3:.1f}",
            f"{cell['real']['ops_per_s']:.0f}",
            f"{cell['sim']['ops_per_virtual_s']:.0f}",
            str(cell["real"]["datagrams"]),
            str(cell["converged"]),
        ])
    print()
    print(format_table(
        ["scenario", "ops", "real ms", "real ops/s", "sim ops/vs",
         "datagrams", "converged"],
        rows,
        title=f"Real-socket backend vs simulator ({NUM_NODES} nodes, "
              f"{NUM_SHARDS} shards, seed {SEED})"))


@pytest.mark.benchmark(group="real-backend")
def test_real_backend_throughput_with_oracle_check(benchmark):
    cells = run_once(benchmark, comparison_cells)

    for cell in cells:
        # run_real_workload already asserted convergence; the numbers on
        # top of it must be sane.
        assert cell["converged"]
        assert cell["real"]["ops_per_s"] > 0
        assert cell["real"]["datagrams"] > 0
        assert cell["ops"] == cell["reads"] + cell["writes"]

    benchmark.extra_info["cells"] = cells
    _print_cells(cells)


# ---------------------------------------------------------------------- #
# Script mode: the real-backend smoke report
# ---------------------------------------------------------------------- #


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Real-socket backend benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the comparison cells and emit JSON")
    parser.add_argument("--out", default=None, help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    payload = {
        "seed": SEED,
        "nodes": NUM_NODES,
        "shards": NUM_SHARDS,
        "ops_per_client": OPS_PER_CLIENT,
        "cells": comparison_cells(),
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
