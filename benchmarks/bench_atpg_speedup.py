"""ATPG-SPEEDUP — test-pattern generation with static fault partitioning (paper §4.4).

"Using this basic algorithm, the program achieves good speedups (close to
linear) on circuits of reasonably large size."  Without the fault-simulation
optimisation the workers never communicate after start-up, so the speedup is
limited only by the static partition's load balance; the benchmark checks the
close-to-linear shape over 1-16 processors.
"""

from __future__ import annotations

import pytest

from repro.apps.atpg import random_circuit
from repro.apps.atpg.orca_atpg import run_atpg_program
from repro.harness.figures import render_speedup_figure
from repro.metrics.speedup import SpeedupCurve

from conftest import SCALE, run_once

NUM_GATES = 120 if SCALE == "paper" else 50
PROCESSOR_COUNTS = [1, 4, 8, 16]


@pytest.mark.benchmark(group="atpg-speedup")
def test_atpg_speedup_curve(benchmark):
    circuit = random_circuit(num_inputs=8, num_gates=NUM_GATES, num_outputs=5, seed=19)

    def experiment():
        times = {}
        coverages = set()
        for procs in PROCESSOR_COUNTS:
            result = run_atpg_program(circuit, num_procs=procs, use_fault_simulation=False)
            times[procs] = result.elapsed
            coverages.add(result.value.covered)
        return times, coverages

    times, coverages = run_once(benchmark, experiment)
    curve = SpeedupCurve(times, base_procs=1)

    # Same coverage everywhere (no fault simulation -> fully deterministic split).
    assert len(coverages) == 1
    # Close-to-linear shape: at least ~60% efficiency at the largest count and
    # strong speedup at 8 CPUs.
    assert curve.speedup(8) > 4.0
    assert curve.efficiency(max(times)) > 0.55

    benchmark.extra_info["num_gates"] = NUM_GATES
    benchmark.extra_info["speedups"] = {str(p): round(s, 2) for p, s in curve.speedups().items()}
    print()
    print(render_speedup_figure(
        f"§4.4 — ATPG speedup ({NUM_GATES} gates, plain PODEM)", curve, max(times)))
