"""FIG2 — Traveling Salesman Problem speedup (paper Fig. 2).

The paper measures near-linear speedup for a 14-city branch-and-bound TSP on
1-16 processors, because the global bound object has an extremely high
read/write ratio and is replicated on every machine.  This benchmark runs the
same Orca program over the processor counts of Fig. 2 and records the speedup
curve; the assertion checks the *shape*: high parallel efficiency at 16 CPUs
and a bound object that is read orders of magnitude more often than written.
"""

from __future__ import annotations

import pytest

from repro.apps.tsp import random_instance
from repro.apps.tsp.orca_tsp import run_tsp_program
from repro.harness.figures import render_speedup_figure
from repro.metrics.speedup import SpeedupCurve

from conftest import SCALE, run_once

NUM_CITIES = 14 if SCALE == "paper" else 10
JOB_DEPTH = 3 if SCALE == "paper" else 2


@pytest.mark.benchmark(group="fig2-tsp")
def test_fig2_tsp_speedup_curve(benchmark, tsp_processor_counts):
    instance = random_instance(NUM_CITIES, seed=14)

    def experiment():
        times = {}
        answers = set()
        last = None
        for procs in tsp_processor_counts:
            result = run_tsp_program(instance, num_procs=procs, job_depth=JOB_DEPTH)
            times[procs] = result.elapsed
            answers.add(result.value.best_length)
            last = result
        return times, answers, last

    times, answers, last = run_once(benchmark, experiment)
    curve = SpeedupCurve(times, base_procs=1)

    # Every processor count finds the same optimal tour length.
    assert len(answers) == 1
    # Fig. 2 shape: close to linear speedup; at 16 CPUs the paper is ~90%+
    # efficient, we require at least 60% to allow for the smaller instance.
    assert curve.speedup(8) > 5.0
    assert curve.efficiency(max(times)) > 0.6
    # The replicated bound is read vastly more often than it is written.
    reads = last.rts["local_reads"]
    writes = last.rts["broadcast_writes"]
    assert reads > 20 * writes

    benchmark.extra_info["num_cities"] = NUM_CITIES
    benchmark.extra_info["speedups"] = {str(p): round(s, 2) for p, s in curve.speedups().items()}
    benchmark.extra_info["read_write_ratio"] = round(reads / max(1, writes), 1)
    print()
    print(render_speedup_figure(f"Fig. 2 — TSP speedup ({NUM_CITIES} cities)", curve, max(times)))
