"""TRANSACTIONS — cost and resilience of cross-object atomic commits.

PR 8 added ``rts.transact``: a group of operations on multiple shared
objects commits all-or-nothing, either as one ordered broadcast record
(every participant on the same shard) or through an ordered 2PC whose
prepares and decide ride the participants' shard orders.  Four cells
measure what that buys and what it costs:

* **same-shard** — transfer latency and throughput when the group
  commits as a single ordered record (atomicity is free: one broadcast);
* **cross-shard** — the same transfers split across two shard orders,
  paying the full prepare/decide round-trips;
* **contention** — many clients hammering two hot accounts with guarded
  withdrawals: the abort rate, conflict retries and deferred writes under
  pressure, with the balance sheet conserved throughout;
* **crash** — a participant-primary machine dies mid-traffic: committed
  transfers stay exactly-once, orphans resolve by presumed-abort
  recovery, and the cell reports the post-crash commit throughput.

Run as a script with ``--smoke`` to emit a reduced canonical-JSON report
for the CI determinism regression (two runs must be byte-identical)::

    PYTHONPATH=src python benchmarks/bench_transactions.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import TransactionAborted
from repro.metrics.report import format_table
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

NUM_NODES = 5
SEED = 42
INITIAL = 1_000
ROUNDS = 30
CRASH_AT = 0.02


class Account(ObjectSpec):
    def init(self, balance=0):
        self.balance = balance

    @operation(write=False)
    def read(self):
        return self.balance

    @operation(write=True, guard=lambda self, amount: self.balance >= amount)
    def withdraw(self, amount):
        self.balance -= amount
        return self.balance

    @operation(write=True)
    def deposit(self, amount):
        self.balance += amount
        return self.balance


def _build(seed, num_accounts, num_shards, policies=("broadcast",),
           num_nodes=NUM_NODES, initial=INITIAL):
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast", num_shards=num_shards)
    handles = []

    def setup():
        proc = cluster.sim.current_process
        for i in range(num_accounts):
            handles.append(rts.create_object(
                proc, Account, (initial,), name=f"acct{i}",
                policy=policies[i % len(policies)]))

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    return cluster, rts, handles


def _percentile(sorted_values, q):
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return round(sorted_values[index], 9)


def _settle(cluster, rts, handles):
    """Total balance at a quiescent point (read from a live node)."""
    balances = []

    def reader():
        proc = cluster.sim.current_process
        for handle in handles:
            balances.append(rts.invoke(proc, handle, "read"))

    host = next(n.node_id for n in cluster.nodes if n.alive)
    cluster.node(host).kernel.spawn_thread(reader)
    cluster.run()
    return sum(balances)


# ---------------------------------------------------------------------- #
# Cells
# ---------------------------------------------------------------------- #


def run_commit_cost_cell(same_shard, seed=SEED, num_nodes=NUM_NODES,
                         rounds=ROUNDS):
    """Transfer latency/throughput on one commit path.

    ``same_shard=True`` pins both accounts into the single shard (the
    one-record fast path); ``same_shard=False`` splits them across two
    shard orders (full ordered 2PC).
    """
    num_shards = 1 if same_shard else 2
    cluster, rts, handles = _build(seed, num_accounts=2, num_shards=num_shards, num_nodes=num_nodes)
    if not same_shard:
        assert rts.shard_of(handles[0]) != rts.shard_of(handles[1])
    latencies = []
    started = cluster.sim.now

    def mover(src, dst):
        proc = cluster.sim.current_process
        for _ in range(rounds):
            t0 = proc.local_time
            rts.transact(proc, [(handles[src], "withdraw", (5,)),
                                (handles[dst], "deposit", (5,))])
            latencies.append(proc.local_time - t0)

    cluster.node(1).kernel.spawn_thread(mover, 0, 1)
    cluster.node(2).kernel.spawn_thread(mover, 1, 0)
    cluster.run()
    elapsed = cluster.sim.now - started
    conserved = _settle(cluster, rts, handles) == 2 * INITIAL
    latencies.sort()
    facts = {
        "commits": rts.stats.txn_commits,
        "same_shard_commits": rts.stats.txn_same_shard_commits,
        "cross_shard_commits": rts.stats.txn_cross_shard_commits,
        "p50": _percentile(latencies, 0.50),
        "p95": _percentile(latencies, 0.95),
        "throughput": round(rts.stats.txn_commits / elapsed, 3),
        "conserved": conserved,
    }
    cluster.shutdown()
    return facts


def run_contention_cell(seed=SEED, num_nodes=NUM_NODES, rounds=ROUNDS):
    """Guarded withdrawals hammering two hot cross-shard accounts.

    Balances start low enough that concurrent drains hit the guard, so
    the abort path (all-or-nothing backout) runs constantly; every
    aborted transfer must leave both accounts untouched.
    """
    cluster, rts, handles = _build(seed, num_accounts=2, num_shards=2,
                                   num_nodes=num_nodes,
                                   initial=rounds)
    attempts = {"n": 0}

    def mover(client_id):
        proc = cluster.sim.current_process
        src, dst = (0, 1) if client_id % 2 else (1, 0)
        for k in range(rounds):
            amount = 1 + (client_id + k) % 7
            attempts["n"] += 1
            try:
                rts.transact(proc, [(handles[src], "withdraw", (amount,)),
                                    (handles[dst], "deposit", (amount,))],
                             on_guard="abort")
            except TransactionAborted:
                pass

    for node in cluster.nodes:
        node.kernel.spawn_thread(mover, node.node_id)
    cluster.run()
    conserved = _settle(cluster, rts, handles) == 2 * rounds
    commits, aborts = rts.stats.txn_commits, rts.stats.txn_aborts
    facts = {
        "attempts": attempts["n"],
        "commits": commits,
        "aborts": aborts,
        "abort_rate": round(aborts / attempts["n"], 6),
        "conflict_retries": rts.stats.txn_retries,
        "deferred_writes": rts.stats.txn_deferred_writes,
        "conserved": conserved,
    }
    cluster.shutdown()
    return facts


def run_crash_cell(seed=SEED, num_nodes=NUM_NODES, rounds=ROUNDS):
    """A participant-primary machine dies under live transaction traffic.

    Half the accounts are primary-copy with their seats parked on the
    victim; clients run only on surviving machines, so every commit is
    observed and the final balances are exactly determined by the
    committed transfers (exactly-once across the takeover and any
    presumed-abort recoveries).
    """
    victim = num_nodes - 1
    cluster, rts, handles = _build(
        seed, num_accounts=4, num_shards=2,
        policies=("broadcast", "primary-invalidate"),
        num_nodes=num_nodes)
    ledger = []

    def park_seats():
        proc = cluster.sim.current_process
        for handle in handles:
            if rts.policy_of(handle) == "primary-invalidate":
                rts.relocate_primary(proc, handle, target=victim)

    cluster.node(0).kernel.spawn_thread(park_seats)
    cluster.run()

    crash_time = {}

    def mover(node_id):
        proc = cluster.sim.current_process
        for k in range(rounds):
            src = (node_id + k) % len(handles)
            dst = (src + 1 + k % (len(handles) - 1)) % len(handles)
            amount = 1 + k % 5
            try:
                rts.transact(proc, [(handles[src], "withdraw", (amount,)),
                                    (handles[dst], "deposit", (amount,))],
                             on_guard="abort")
            except TransactionAborted:
                continue
            ledger.append((proc.local_time, src, dst, amount))

    def crasher():
        proc = cluster.sim.current_process
        proc.hold(CRASH_AT)
        crash_time["t"] = proc.local_time
        cluster.node(victim).crash()

    for node in cluster.nodes:
        if node.node_id != victim:
            node.kernel.spawn_thread(mover, node.node_id)
    cluster.node(0).kernel.spawn_thread(crasher)
    cluster.run()
    end = cluster.sim.now
    conserved = _settle(cluster, rts, handles) == 4 * INITIAL
    after = [entry for entry in ledger if entry[0] > crash_time["t"]]
    window = end - crash_time["t"]
    facts = {
        "commits": rts.stats.txn_commits,
        "aborts": rts.stats.txn_aborts,
        "txn_recoveries": rts.stats.txn_recoveries,
        "takeovers": rts.stats.primary_recoveries,
        "commits_after_crash": len(after),
        "post_window_throughput": (round(len(after) / window, 3)
                                   if window > 0 else None),
        "conserved": conserved,
    }
    cluster.shutdown()
    return facts


def transaction_cells(seed=SEED, num_nodes=NUM_NODES, rounds=ROUNDS):
    return {
        "same-shard": run_commit_cost_cell(True, seed=seed,
                                           num_nodes=num_nodes,
                                           rounds=rounds),
        "cross-shard": run_commit_cost_cell(False, seed=seed,
                                            num_nodes=num_nodes,
                                            rounds=rounds),
        "contention": run_contention_cell(seed=seed, num_nodes=num_nodes,
                                          rounds=rounds),
        "crash": run_crash_cell(seed=seed, num_nodes=num_nodes,
                                rounds=rounds),
    }


# ---------------------------------------------------------------------- #
# Benchmarks
# ---------------------------------------------------------------------- #


def _print_cells(title, cells):
    same, cross = cells["same-shard"], cells["cross-shard"]
    cont, crash = cells["contention"], cells["crash"]
    rows = [
        ["same-shard", f"{same['commits']} commits",
         f"p50={same['p50'] * 1e3:.3f}ms",
         f"p95={same['p95'] * 1e3:.3f}ms",
         f"{same['throughput']:.0f}/s"],
        ["cross-shard", f"{cross['commits']} commits",
         f"p50={cross['p50'] * 1e3:.3f}ms",
         f"p95={cross['p95'] * 1e3:.3f}ms",
         f"{cross['throughput']:.0f}/s"],
        ["contention", f"{cont['attempts']} attempts",
         f"aborts={cont['aborts']}",
         f"rate={cont['abort_rate']:.2f}",
         f"deferred={cont['deferred_writes']}"],
        ["crash", f"{crash['commits']} commits",
         f"recoveries={crash['txn_recoveries']}",
         f"takeovers={crash['takeovers']}",
         f"post={crash['post_window_throughput']}/s"],
    ]
    print()
    print(format_table(["cell", "volume", "…", "…", "rate"], rows, title=title))


@pytest.mark.benchmark(group="transactions")
def test_transaction_paths_commit_atomically(benchmark):
    cells = run_once(benchmark, transaction_cells)

    same, cross = cells["same-shard"], cells["cross-shard"]
    # Path classification: one shard -> every commit is the single-record
    # fast path; two shards -> every commit paid the 2PC.
    assert same["commits"] == same["same_shard_commits"] == 2 * ROUNDS
    assert cross["commits"] == cross["cross_shard_commits"] == 2 * ROUNDS
    assert same["conserved"] and cross["conserved"]
    # Atomicity is cheaper when the order provides it: the fast path must
    # beat the 2PC on latency.
    assert same["p50"] < cross["p50"], (same, cross)

    cont = cells["contention"]
    assert cont["commits"] + cont["aborts"] == cont["attempts"]
    assert cont["aborts"] > 0, "contention cell never hit a guard"
    assert cont["conserved"], cont

    crash = cells["crash"]
    assert crash["conserved"], crash
    assert crash["takeovers"] >= 1, "the victim's seats were never taken over"
    assert crash["commits_after_crash"] > 0, ("no transaction committed after the crash")

    # Determinism: the cheapest cell replays byte-for-byte.
    repeat = run_commit_cost_cell(True)
    assert repeat == same

    benchmark.extra_info["cells"] = cells
    _print_cells(f"Cross-object transactions on {NUM_NODES} nodes (seed {SEED})", cells)


# ---------------------------------------------------------------------- #
# Script mode: the CI determinism smoke report
# ---------------------------------------------------------------------- #

SMOKE_KWARGS = dict(num_nodes=5, rounds=12)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Transaction benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced cells and emit canonical JSON")
    parser.add_argument("--out", default=None, help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    payload = {
        "seed": SEED,
        "nodes": SMOKE_KWARGS["num_nodes"],
        "cells": transaction_cells(**SMOKE_KWARGS),
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
