"""INV-UPD — invalidation versus two-phase update (paper §3.2.2).

"Comparisons of update and invalidation did not show a clear winner.  Which
one is better depends on the problem being solved.  Our experience suggests
that updating is better more often than invalidation."

The benchmark sweeps a synthetic workload's read fraction and write
burstiness over both coherence protocols of the point-to-point RTS and
records which protocol wins each cell.  The assertions check the paper's two
qualitative findings: each protocol wins somewhere (no clear winner), and
update wins at least as many cells as invalidation.
"""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig
from repro.metrics.report import format_table
from repro.orca.builtin_objects import IntObject
from repro.orca.program import OrcaProgram

from conftest import run_once

NUM_PROCS = 8
OPS_PER_WORKER = 40

#: (read_fraction, consecutive_writes) cells of the sweep.  High read
#: fractions favour update (copies stay valid); bursts of consecutive writes
#: favour invalidation (one invalidation replaces many update rounds).
CELLS = [(0.95, 1), (0.9, 1), (0.7, 1), (0.5, 4), (0.3, 6), (0.1, 8)]


def make_program(protocol: str, read_fraction: float, burst: int) -> OrcaProgram:
    def main(proc):
        shared = proc.new_object(IntObject, 0)

        def worker(wproc, obj, worker_id=0):
            state = worker_id * 7919 + 13
            ops = 0
            while ops < OPS_PER_WORKER:
                wproc.compute(200)
                state = (state * 1103515245 + 12345) % 2**31
                if (state % 1000) / 1000.0 < read_fraction:
                    obj.read()
                    ops += 1
                else:
                    for _ in range(burst):
                        obj.add(1)
                    ops += burst

        proc.join_all(proc.fork_workers(worker, shared))
        return shared.read()

    return OrcaProgram(main, ClusterConfig(num_nodes=NUM_PROCS, seed=9), rts="p2p",
                       rts_options={"protocol": protocol,
                                    "replicate_everywhere": True,
                                    "dynamic_replication": False})


@pytest.mark.benchmark(group="inv-vs-upd")
def test_invalidation_vs_update_sweep(benchmark):
    def experiment():
        outcome = []
        for read_fraction, burst in CELLS:
            inval = make_program("invalidation", read_fraction, burst).run().elapsed
            update = make_program("update", read_fraction, burst).run().elapsed
            outcome.append((read_fraction, burst, inval, update))
        return outcome

    outcome = run_once(benchmark, experiment)
    update_wins = sum(1 for _rf, _b, inval, update in outcome if update < inval)
    inval_wins = len(outcome) - update_wins

    # "No clear winner": each protocol wins at least one cell...
    assert update_wins >= 1
    assert inval_wins >= 1
    # ..."updating is better more often than invalidation".
    assert update_wins >= inval_wins

    rows = [[f"{rf:.2f}", str(b), f"{inval:.4f}", f"{update:.4f}",
             "update" if update < inval else "invalidation"]
            for rf, b, inval, update in outcome]
    benchmark.extra_info["update_wins"] = update_wins
    benchmark.extra_info["invalidation_wins"] = inval_wins
    print()
    print(format_table(
        ["read fraction", "write burst", "invalidation (s)", "update (s)", "faster"],
        rows, title="§3.2.2 — invalidation vs two-phase update"))
