"""WORKLOADS — synthetic shared-object traffic across all four runtimes.

The paper reports aggregate speedup for four hand-written applications; this
benchmark instead drives the runtimes with parameterised synthetic traffic
(the workload subsystem) and reports *latency distributions* — p50/p95/p99 —
and throughput per scenario, in the spirit of the cluster-benchmark
methodology: read/write mixes, key-popularity skew, open- and closed-loop
clients.

Five named scenarios run on all four runtimes (broadcast RTS, point-to-point
RTS, central-server baseline, Ivy-style DSM baseline).  The whole sweep is
deterministic under a fixed seed: the benchmark re-runs one cell and asserts
the two reports are identical.

Run as a script with ``--smoke`` to emit a reduced, canonical-JSON report for
the CI determinism regression (two runs must be byte-identical)::

    PYTHONPATH=src python benchmarks/bench_workload_scenarios.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.harness.sweeps import workload_run_collection
from repro.metrics.latency import format_latency_row
from repro.metrics.report import format_table
from repro.workloads import RUNTIME_KINDS, WorkloadRunner, WorkloadSpec

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

NUM_NODES = 8
CLIENTS_PER_NODE = 1
SEED = 42

#: The five named scenarios with the workload each is driven by.  A small
#: think time keeps closed-loop clients interleaving instead of running
#: back-to-back, which is what exposes coherence-protocol latency.
SCENARIOS = {
    "counter-farm": WorkloadSpec(name="counter-farm", num_keys=16,
                                 read_fraction=0.9, ops_per_client=40,
                                 think_time=0.0002),
    "kv-table": WorkloadSpec(name="kv-table", num_keys=32, read_fraction=0.8,
                             popularity="zipfian", zipf_s=1.1,
                             ops_per_client=40, think_time=0.0002),
    "fifo-queue": WorkloadSpec(name="fifo-queue", read_fraction=0.5,
                               ops_per_client=30, think_time=0.0002),
    "read-mostly-catalog": WorkloadSpec(name="read-mostly-catalog",
                                        num_keys=32, read_fraction=0.98,
                                        popularity="zipfian", zipf_s=1.2,
                                        ops_per_client=40, think_time=0.0002),
    "hot-spot": WorkloadSpec(name="hot-spot", num_keys=1, read_fraction=0.5,
                             client_model="open", arrival_rate=1500.0,
                             ops_per_client=30),
}


def run_cell(scenario: str, runtime: str):
    runner = WorkloadRunner(scenario, workload=SCENARIOS[scenario],
                            runtime=runtime, num_nodes=NUM_NODES,
                            clients_per_node=CLIENTS_PER_NODE, seed=SEED)
    return runner.run()


@pytest.mark.benchmark(group="workloads")
def test_scenario_matrix_latency_and_throughput(benchmark):
    def experiment():
        return [run_cell(scenario, runtime) for scenario in SCENARIOS for runtime in RUNTIME_KINDS]

    reports = run_once(benchmark, experiment)

    # Every cell ran and issued its full request stream.
    assert len(reports) == len(SCENARIOS) * len(RUNTIME_KINDS)
    for report in reports:
        expected = report.num_clients * SCENARIOS[report.scenario].total_ops_per_client
        assert report.total_ops == expected
        assert report.throughput > 0
        overall = report.percentile_row()
        assert 0 <= overall["p50"] <= overall["p95"] <= overall["p99"]

    # Determinism: re-running one cell reproduces its report exactly.
    reference = next(r for r in reports if r.scenario == "kv-table"
                     and r.runtime == "broadcast-rts")
    repeat = run_cell("kv-table", "broadcast")
    assert repeat.fingerprint() == reference.fingerprint()
    assert repeat.request_latency == reference.request_latency

    # Replication should pay off on the read-mostly catalog: the broadcast
    # RTS serves reads locally, the central server pays an RPC per read.
    catalog = {r.runtime: r for r in reports if r.scenario == "read-mostly-catalog"}
    assert (catalog["broadcast-rts"].percentile_row("read")["p50"]
            < catalog["central-server-rts"].percentile_row("read")["p50"])

    collection = workload_run_collection(reports)
    rows = []
    for report in reports:
        p50, p95, p99, mean = format_latency_row(
            report.request_latency.get("overall", {"p50": 0, "p95": 0, "p99": 0,
                                                   "mean": 0}))
        rows.append([report.scenario, report.runtime,
                     str(report.total_ops), f"{report.throughput:.0f}",
                     p50, p95, p99, mean])
    benchmark.extra_info["cells"] = {f"{r.scenario}/{r.runtime}": r.fingerprint() for r in reports}
    benchmark.extra_info["records"] = len(collection)
    print()
    print(format_table(
        ["scenario", "runtime", "ops", "ops/s", "p50 ms", "p95 ms", "p99 ms",
         "mean ms"],
        rows,
        title=f"Workload scenarios x runtimes ({NUM_NODES} nodes, seed {SEED})"))


# ---------------------------------------------------------------------- #
# Script mode: the CI determinism smoke report
# ---------------------------------------------------------------------- #

#: Per-client request count of the reduced smoke matrix.
SMOKE_OPS = 12
SMOKE_NODES = 4


def smoke_reports():
    """A reduced scenario x runtime matrix, plus sharded/batched cells.

    Small enough for CI to run twice, but covering every runtime kind and
    both new broadcast-RTS scaling knobs, so any non-determinism anywhere in
    the simulation shows up as a byte diff between the two reports.
    """
    reports = []
    for scenario, spec in SCENARIOS.items():
        smoke_spec = spec.with_overrides(ops_per_client=SMOKE_OPS)
        for runtime in RUNTIME_KINDS:
            reports.append(WorkloadRunner(
                scenario, workload=smoke_spec, runtime=runtime,
                num_nodes=SMOKE_NODES, clients_per_node=CLIENTS_PER_NODE,
                seed=SEED).run())
    sharded_spec = SCENARIOS["counter-farm"].with_overrides(ops_per_client=SMOKE_OPS)
    reports.append(WorkloadRunner(
        "counter-farm", workload=sharded_spec, runtime="broadcast",
        num_nodes=SMOKE_NODES, clients_per_node=2, seed=SEED,
        num_shards=2).run())
    batched_spec = SCENARIOS["fifo-queue"].with_overrides(ops_per_client=SMOKE_OPS)
    reports.append(WorkloadRunner(
        "fifo-queue", workload=batched_spec, runtime="broadcast",
        num_nodes=SMOKE_NODES, clients_per_node=2, seed=SEED,
        num_shards=2, batching={"max_batch": 8, "flush_delay": 0.0005}).run())
    return reports


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Workload scenario benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced matrix and emit canonical JSON")
    parser.add_argument("--out", default=None, help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    reports = smoke_reports()
    payload = {
        "seed": SEED,
        "nodes": SMOKE_NODES,
        "ops_per_client": SMOKE_OPS,
        "cells": [report.fingerprint() for report in reports],
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
