"""WORKLOADS — synthetic shared-object traffic across all four runtimes.

The paper reports aggregate speedup for four hand-written applications; this
benchmark instead drives the runtimes with parameterised synthetic traffic
(the workload subsystem) and reports *latency distributions* — p50/p95/p99 —
and throughput per scenario, in the spirit of the cluster-benchmark
methodology: read/write mixes, key-popularity skew, open- and closed-loop
clients.

Five named scenarios run on all four runtimes (broadcast RTS, point-to-point
RTS, central-server baseline, Ivy-style DSM baseline).  The whole sweep is
deterministic under a fixed seed: the benchmark re-runs one cell and asserts
the two reports are identical.
"""

from __future__ import annotations

import pytest

from repro.harness.sweeps import workload_run_collection
from repro.metrics.latency import format_latency_row
from repro.metrics.report import format_table
from repro.workloads import RUNTIME_KINDS, WorkloadRunner, WorkloadSpec

from conftest import run_once

NUM_NODES = 8
CLIENTS_PER_NODE = 1
SEED = 42

#: The five named scenarios with the workload each is driven by.  A small
#: think time keeps closed-loop clients interleaving instead of running
#: back-to-back, which is what exposes coherence-protocol latency.
SCENARIOS = {
    "counter-farm": WorkloadSpec(name="counter-farm", num_keys=16,
                                 read_fraction=0.9, ops_per_client=40,
                                 think_time=0.0002),
    "kv-table": WorkloadSpec(name="kv-table", num_keys=32, read_fraction=0.8,
                             popularity="zipfian", zipf_s=1.1,
                             ops_per_client=40, think_time=0.0002),
    "fifo-queue": WorkloadSpec(name="fifo-queue", read_fraction=0.5,
                               ops_per_client=30, think_time=0.0002),
    "read-mostly-catalog": WorkloadSpec(name="read-mostly-catalog",
                                        num_keys=32, read_fraction=0.98,
                                        popularity="zipfian", zipf_s=1.2,
                                        ops_per_client=40, think_time=0.0002),
    "hot-spot": WorkloadSpec(name="hot-spot", num_keys=1, read_fraction=0.5,
                             client_model="open", arrival_rate=1500.0,
                             ops_per_client=30),
}


def run_cell(scenario: str, runtime: str):
    runner = WorkloadRunner(scenario, workload=SCENARIOS[scenario],
                            runtime=runtime, num_nodes=NUM_NODES,
                            clients_per_node=CLIENTS_PER_NODE, seed=SEED)
    return runner.run()


@pytest.mark.benchmark(group="workloads")
def test_scenario_matrix_latency_and_throughput(benchmark):
    def experiment():
        return [run_cell(scenario, runtime)
                for scenario in SCENARIOS
                for runtime in RUNTIME_KINDS]

    reports = run_once(benchmark, experiment)

    # Every cell ran and issued its full request stream.
    assert len(reports) == len(SCENARIOS) * len(RUNTIME_KINDS)
    for report in reports:
        expected = report.num_clients * SCENARIOS[report.scenario].total_ops_per_client
        assert report.total_ops == expected
        assert report.throughput > 0
        overall = report.percentile_row()
        assert 0 <= overall["p50"] <= overall["p95"] <= overall["p99"]

    # Determinism: re-running one cell reproduces its report exactly.
    reference = next(r for r in reports if r.scenario == "kv-table"
                     and r.runtime == "broadcast-rts")
    repeat = run_cell("kv-table", "broadcast")
    assert repeat.fingerprint() == reference.fingerprint()
    assert repeat.request_latency == reference.request_latency

    # Replication should pay off on the read-mostly catalog: the broadcast
    # RTS serves reads locally, the central server pays an RPC per read.
    catalog = {r.runtime: r for r in reports if r.scenario == "read-mostly-catalog"}
    assert (catalog["broadcast-rts"].percentile_row("read")["p50"]
            < catalog["central-server-rts"].percentile_row("read")["p50"])

    collection = workload_run_collection(reports)
    rows = []
    for report in reports:
        p50, p95, p99, mean = format_latency_row(
            report.request_latency.get("overall", {"p50": 0, "p95": 0, "p99": 0,
                                                   "mean": 0}))
        rows.append([report.scenario, report.runtime,
                     str(report.total_ops), f"{report.throughput:.0f}",
                     p50, p95, p99, mean])
    benchmark.extra_info["cells"] = {
        f"{r.scenario}/{r.runtime}": r.fingerprint() for r in reports
    }
    benchmark.extra_info["records"] = len(collection)
    print()
    print(format_table(
        ["scenario", "runtime", "ops", "ops/s", "p50 ms", "p95 ms", "p99 ms",
         "mean ms"],
        rows,
        title=f"Workload scenarios x runtimes ({NUM_NODES} nodes, seed {SEED})"))
