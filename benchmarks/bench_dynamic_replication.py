"""DYN-REPL — dynamic replication driven by read/write statistics (paper §3.2.2).

"Initially, only one copy of each object is maintained.  As accesses to
objects are made, statistics are maintained.  When the ratio of reads to
writes on any machine exceeds a certain threshold [...] a message is sent to
the primary to fetch a copy.  Similarly, when this ratio falls below another
threshold [...] the local copy is then discarded."

The benchmark runs a two-phase workload (read-mostly, then write-mostly) on
the point-to-point RTS with the policy enabled and disabled, and checks that
the policy (a) acquires copies during the read phase, (b) drops them during
the write phase, and (c) beats the no-replication configuration overall.
"""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig
from repro.orca.builtin_objects import IntObject
from repro.orca.program import OrcaProgram

from conftest import run_once

NUM_PROCS = 6
PHASE_OPS = 60


def two_phase_main(proc):
    shared = proc.new_object(IntObject, 0)

    def worker(wproc, obj, worker_id=0):
        # Phase 1: read-mostly (every machine should acquire a copy).
        for i in range(PHASE_OPS):
            wproc.compute(150)
            obj.read()
            if i % 20 == 19:
                obj.add(1)
        # Phase 2: write-mostly (copies should be dropped again).
        for i in range(PHASE_OPS // 2):
            wproc.compute(150)
            obj.add(1)
            if i % 10 == 9:
                obj.read()

    proc.join_all(proc.fork_workers(worker, shared))
    return shared.read()


def run_with_policy(dynamic: bool):
    program = OrcaProgram(two_phase_main, ClusterConfig(num_nodes=NUM_PROCS, seed=29),
                          rts="p2p", rts_options={"protocol": "update",
                                                  "dynamic_replication": dynamic})
    result = program.run(keep_cluster=True)
    runtime = program.runtime
    stats = {
        "elapsed": result.elapsed,
        "copies_fetched": runtime.policy.stats.copies_fetched if dynamic else 0,
        "copies_dropped": runtime.policy.stats.copies_dropped if dynamic else 0,
        "local_reads": runtime.stats.local_reads,
        "remote_reads": runtime.stats.remote_reads,
        "value": result.value,
    }
    program.cluster.shutdown()
    return stats


@pytest.mark.benchmark(group="dynamic-replication")
def test_dynamic_replication_adapts_to_phases(benchmark):
    def experiment():
        return run_with_policy(True), run_with_policy(False)

    dynamic, static = run_once(benchmark, experiment)

    # Both configurations compute the same final value.
    assert dynamic["value"] == static["value"]
    # The policy fetched copies in the read phase and dropped them later.
    assert dynamic["copies_fetched"] >= NUM_PROCS - 2
    assert dynamic["copies_dropped"] >= 1
    # Local copies turn remote reads into local ones...
    assert dynamic["local_reads"] > static["local_reads"]
    # ...and that pays off end to end.
    assert dynamic["elapsed"] < static["elapsed"]

    benchmark.extra_info.update({
        "dynamic_elapsed": round(dynamic["elapsed"], 4),
        "static_elapsed": round(static["elapsed"], 4),
        "copies_fetched": dynamic["copies_fetched"],
        "copies_dropped": dynamic["copies_dropped"],
    })
    print(f"\nDynamic replication: {dynamic['copies_fetched']} copies fetched, "
          f"{dynamic['copies_dropped']} dropped; elapsed {dynamic['elapsed']:.4f}s "
          f"vs {static['elapsed']:.4f}s without the policy")
