"""RTS-COMPARE — the broadcast RTS versus the point-to-point RTS (paper §3.2).

The paper built both runtime systems: the broadcast RTS is the one used for
all application measurements (it exploits the Ethernet's hardware broadcast),
while the point-to-point RTS exists for networks without broadcast.  This
benchmark runs the same TSP program on both and checks that (a) both produce
the identical application answer, and (b) on a broadcast-capable network the
broadcast RTS is the faster substrate for this replicated-object workload.
"""

from __future__ import annotations

import pytest

from repro.apps.tsp import random_instance
from repro.apps.tsp.orca_tsp import run_tsp_program

from conftest import SCALE, run_once

NUM_CITIES = 11 if SCALE == "paper" else 9
NUM_PROCS = 8


@pytest.mark.benchmark(group="rts-compare")
def test_broadcast_vs_p2p_rts_on_tsp(benchmark):
    instance = random_instance(NUM_CITIES, seed=14)

    def experiment():
        broadcast = run_tsp_program(instance, num_procs=NUM_PROCS, rts="broadcast")
        p2p_update = run_tsp_program(instance, num_procs=NUM_PROCS, rts="p2p",
                                     rts_options={"protocol": "update"})
        p2p_inval = run_tsp_program(instance, num_procs=NUM_PROCS, rts="p2p",
                                    rts_options={"protocol": "invalidation"})
        return broadcast, p2p_update, p2p_inval

    broadcast, p2p_update, p2p_inval = run_once(benchmark, experiment)

    # Identical answers: the RTS choice is semantically transparent.
    assert (broadcast.value.best_length == p2p_update.value.best_length
            == p2p_inval.value.best_length)
    # On broadcast hardware, the broadcast RTS is the better substrate for this
    # job-queue + shared-bound workload.
    assert broadcast.elapsed <= p2p_update.elapsed
    assert broadcast.elapsed <= p2p_inval.elapsed

    benchmark.extra_info.update({
        "broadcast_elapsed": round(broadcast.elapsed, 4),
        "p2p_update_elapsed": round(p2p_update.elapsed, 4),
        "p2p_invalidation_elapsed": round(p2p_inval.elapsed, 4),
    })
    print(f"\nTSP on {NUM_PROCS} CPUs: broadcast RTS {broadcast.elapsed:.3f}s, "
          f"p2p/update {p2p_update.elapsed:.3f}s, p2p/invalidation {p2p_inval.elapsed:.3f}s")
