"""ATPG-FAULTSIM — the fault-simulation optimisation trade-off (paper §4.4).

"The Orca program using this optimization is faster in absolute speed (by
about a factor of 3), but it obtains inferior speedups.  This is partly due
to the communication overhead, and partly to the fact that the static
partitioning of work may now lead to a load balancing problem."

The benchmark measures both variants on 1 and 8 processors and checks the
trade-off: fault simulation is faster in absolute terms at every processor
count, but its speedup curve is flatter than plain PODEM's.
"""

from __future__ import annotations

import pytest

from repro.apps.atpg import random_circuit
from repro.apps.atpg.orca_atpg import run_atpg_program

from conftest import SCALE, run_once

NUM_GATES = 120 if SCALE == "paper" else 50


@pytest.mark.benchmark(group="atpg-faultsim")
def test_fault_simulation_tradeoff(benchmark):
    circuit = random_circuit(num_inputs=8, num_gates=NUM_GATES, num_outputs=5, seed=19)

    def experiment():
        runs = {}
        for use_sim in (False, True):
            for procs in (1, 8):
                runs[(use_sim, procs)] = run_atpg_program(
                    circuit, num_procs=procs, use_fault_simulation=use_sim)
        return runs

    runs = run_once(benchmark, experiment)

    plain_1, plain_8 = runs[(False, 1)], runs[(False, 8)]
    sim_1, sim_8 = runs[(True, 1)], runs[(True, 8)]

    # Absolute speed: the fault-simulation variant wins at both counts.
    assert sim_1.elapsed < plain_1.elapsed
    assert sim_8.elapsed < plain_8.elapsed
    absolute_factor = plain_1.elapsed / sim_1.elapsed

    # Speedup: the plain variant scales better (fault simulation's curve is flatter).
    plain_speedup = plain_1.elapsed / plain_8.elapsed
    sim_speedup = sim_1.elapsed / sim_8.elapsed
    assert plain_speedup > sim_speedup

    # Both reach (almost) the same coverage.
    assert sim_8.value.covered >= plain_8.value.covered * 0.95

    benchmark.extra_info["absolute_speed_factor_1cpu"] = round(absolute_factor, 2)
    benchmark.extra_info["plain_speedup_8cpu"] = round(plain_speedup, 2)
    benchmark.extra_info["faultsim_speedup_8cpu"] = round(sim_speedup, 2)
    benchmark.extra_info["faultsim_communication_broadcasts"] = sim_8.rts["broadcast_writes"]
    print(f"\nFault simulation: {absolute_factor:.2f}x faster in absolute terms "
          f"(paper: ~3x); speedup on 8 CPUs {sim_speedup:.2f} vs {plain_speedup:.2f} "
          f"for plain PODEM")
