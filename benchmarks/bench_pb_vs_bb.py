"""PB-BB — the two reliable broadcast protocols (paper §3.1).

"In PB, each message appears in full on the network twice [...] However,
only the second of these is broadcast, so each user machine is only
interrupted once.  In BB, the full message only appears once on the network,
plus a very short Accept message [...] every machine is interrupted twice.
Thus PB wastes bandwidth to reduce interrupts compared to BB.  The present
implementation [...] dynamically chooses either PB or BB, using the former
for short messages and the latter for long ones (over 1 packet)."

The benchmark sweeps the message size, measures wire bytes and per-receiver
interrupts under each protocol, and checks the dynamic selection rule.
"""

from __future__ import annotations

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig, CostModel
from repro.metrics.report import format_table

from conftest import run_once

NUM_NODES = 8
BROADCASTS = 25
SIZES = [200, 1000, 2000, 6000]


def measure(method: str, size: int):
    cost_model = CostModel().with_overrides(broadcast={"method": method})
    cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=7, cost_model=cost_model))
    try:
        group = cluster.broadcast_group
        for node in cluster.nodes:
            group.set_delivery_handler(node.node_id, lambda d: None)
        for _ in range(BROADCASTS):
            group.broadcast_from(2, payload=b"x", size=size)
        elapsed = cluster.run()
        receiver = cluster.node(6)  # neither sender (2) nor sequencer (0)
        return {
            "wire_bytes": cluster.network.stats.wire_bytes,
            "interrupts_per_bcast": receiver.nic.stats.interrupts / BROADCASTS,
            "delivered": group.delivered_counts()[6],
            "elapsed": elapsed,
        }
    finally:
        cluster.shutdown()


@pytest.mark.benchmark(group="pb-vs-bb")
def test_pb_vs_bb_bandwidth_and_interrupts(benchmark):
    def experiment():
        rows = {}
        for size in SIZES:
            rows[size] = {method: measure(method, size) for method in ("pb", "bb", "auto")}
        return rows

    rows = run_once(benchmark, experiment)
    table = []
    for size in SIZES:
        pb, bb = rows[size]["pb"], rows[size]["bb"]
        # Everybody delivers everything under both protocols.
        assert pb["delivered"] == bb["delivered"] == BROADCASTS
        # PB carries the data twice: roughly double the wire bytes of BB.
        assert pb["wire_bytes"] > 1.5 * bb["wire_bytes"] * (size / (size + 100))
        # PB interrupts each receiver once per broadcast; BB twice.
        assert pb["interrupts_per_bcast"] < bb["interrupts_per_bcast"]
        table.append([str(size), str(pb["wire_bytes"]), str(bb["wire_bytes"]),
                      f"{pb['interrupts_per_bcast']:.1f}", f"{bb['interrupts_per_bcast']:.1f}"])

    # Dynamic selection: short messages behave like PB, long ones like BB.
    short_auto = rows[SIZES[0]]["auto"]
    long_auto = rows[SIZES[-1]]["auto"]
    assert abs(short_auto["interrupts_per_bcast"] -
               rows[SIZES[0]]["pb"]["interrupts_per_bcast"]) < 0.01
    assert long_auto["interrupts_per_bcast"] > short_auto["interrupts_per_bcast"]

    benchmark.extra_info["table"] = {
        str(size): {
            "pb_wire_bytes": rows[size]["pb"]["wire_bytes"],
            "bb_wire_bytes": rows[size]["bb"]["wire_bytes"],
            "pb_interrupts": rows[size]["pb"]["interrupts_per_bcast"],
            "bb_interrupts": rows[size]["bb"]["interrupts_per_bcast"],
        }
        for size in SIZES
    }
    print()
    print(format_table(
        ["msg bytes", "PB wire bytes", "BB wire bytes", "PB intr/recv", "BB intr/recv"],
        table, title="§3.1 — PB vs BB"))
