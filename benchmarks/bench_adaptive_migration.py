"""ADAPTIVE — per-object policies + online migration vs. the fixed runtimes.

The paper's two runtime systems are endpoints of one management spectrum;
this benchmark shows the payoff of choosing the point *per object, at run
time*.  One cluster, one shared Ethernet, one mixed workload:

* **counter-farm, Zipfian read-mostly/write-hot mix** — 16 counters where
  the two Zipf-hottest keys take write-dominated traffic while the cold
  tail is read-mostly.  A fixed broadcast runtime pays the loaded sequencer
  on every hot write; a fixed primary-copy runtime pays RPCs (or coherence
  fan-out) on the cold reads.  The adaptive runtime migrates the hot
  counters to primary-copy management and leaves the tail broadcast
  replicated — and must **beat both fixed runtimes on throughput**.
* **fifo-queue** — every request is an RTS-level write on one object (the
  broadcast-heaviest case).  The adaptive runtime migrates the queue to a
  primary copy early on and must **match the better fixed runtime's p99**
  (within 10%) while beating the broadcast runtime's tail outright.
* **migration during a sequencer election** — the switch message is
  broadcast while the shard's sequencer is crashed and the election is
  still open; every client's writes must still apply exactly once, in
  issue order.

All cells run every runtime on the *same* shared-Ethernet hardware and the
loaded-sequencer regime (0.2 ms ordering service per message), so the
comparison isolates the management policy.  Deterministic under the fixed
seed; one cell is re-run and compared fingerprint-for-fingerprint.

Run as a script with ``--smoke`` to emit a reduced canonical-JSON report for
the CI determinism regression (two runs must be byte-identical)::

    PYTHONPATH=src python benchmarks/bench_adaptive_migration.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig, CostModel
from repro.metrics.latency import format_latency_row
from repro.metrics.report import format_table
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation
from repro.workloads import WorkloadRunner, WorkloadSpec

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

NUM_NODES = 8
SEED = 42
CLIENTS_PER_NODE = 4
RUNTIMES = ("broadcast", "p2p", "adaptive")

#: The loaded-sequencer regime from the sharding benchmark: 0.2 ms of
#: ordering service caps one sequencer at 5000 msgs/s, which the write-hot
#: traffic saturates — the cost a fixed broadcast runtime cannot escape.
COST_MODEL = CostModel().with_overrides(cpu={"sequencing_cost": 2.0e-4})

#: Zipfian read-mostly/write-hot mix: the two hottest keys are 96%-write,
#: the cold tail 97%-read.  Different objects, genuinely different mixes —
#: exactly the input per-object policies exist for.
MIXED_SPEC = WorkloadSpec(name="mixed-hot-cold", num_keys=16,
                          read_fraction=0.97, hot_keys=2,
                          hot_read_fraction=0.04, popularity="zipfian",
                          zipf_s=1.1, ops_per_client=100, think_time=0.0003)

#: Producer/consumer queue traffic: put *and* poll are writes, so this is
#: the scenario whose tail latency the migration must rescue.  Long enough
#: that the one-time transition settles out of the steady state.
FIFO_SPEC = WorkloadSpec(name="fifo-queue", read_fraction=0.5,
                         ops_per_client=640, think_time=0.0005)

#: Controller used for the counter-farm cell: with 32 clients hammering the
#: hot keys, eight accesses are plenty of evidence — reacting early keeps
#: the costly pre-migration regime short.
FAST_CONTROLLER = {"min_accesses": 8, "check_interval": 4}


def run_cell(scenario: str, runtime: str, spec: WorkloadSpec, controller=None):
    # Every runtime on the same shared Ethernet: the comparison varies the
    # management policy, not the interconnect.
    options = None
    if runtime == "adaptive" and controller is not None:
        options = {"default_policy": dict(controller)}
    return WorkloadRunner(
        scenario, workload=spec, runtime=runtime, num_nodes=NUM_NODES,
        clients_per_node=CLIENTS_PER_NODE, seed=SEED,
        network_type="ethernet", rts_options=options,
        config=ClusterConfig(num_nodes=NUM_NODES, seed=SEED,
                             cost_model=COST_MODEL)).run()


# ---------------------------------------------------------------------- #
# Migration racing a sequencer election (direct harness, no runner)
# ---------------------------------------------------------------------- #


class BenchLog(ObjectSpec):
    """Order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)


def run_election_migration(seed=SEED, writers_per_node=2, ops_per_writer=12):
    """Crash the sequencer, then migrate the hot object while the election
    is still open; returns per-client order facts."""
    cluster = Cluster(ClusterConfig(num_nodes=NUM_NODES, seed=seed, cost_model=COST_MODEL))
    rts = HybridRts(cluster, default_policy="broadcast")
    handles = {}

    def setup():
        proc = cluster.sim.current_process
        handles["log"] = rts.create_object(proc, BenchLog, name="log")

    def writer(node_id, writer_id):
        proc = cluster.sim.current_process
        for k in range(ops_per_writer):
            rts.invoke(proc, handles["log"], "append",
                       ((node_id, writer_id, k),))
            proc.hold(0.0004)

    def crasher():
        proc = cluster.sim.current_process
        proc.hold(0.004)
        cluster.node(rts.group.sequencer_node_id).crash()

    def migrator():
        proc = cluster.sim.current_process
        # Just after the crash, before any election can have concluded: the
        # switch broadcast has to survive the failover itself.
        proc.hold(0.0042)
        rts.migrate(proc, handles["log"], "primary-invalidate", primary=2)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    crashed = rts.group.sequencer_node_id
    for node in cluster.nodes:
        if node.node_id == crashed:
            continue
        for writer_id in range(writers_per_node):
            node.kernel.spawn_thread(writer, node.node_id, writer_id)
    cluster.node(2).kernel.spawn_thread(migrator)
    cluster.node(1).kernel.spawn_thread(crasher)
    cluster.run()

    primary = rts.directory.primary_of(handles["log"].obj_id)
    log = [tuple(item) for item in rts.managers[primary].get(handles["log"].obj_id).instance.items]
    per_client = {}
    for node_id, writer_id, k in log:
        per_client.setdefault((node_id, writer_id), []).append(k)
    fifo_ok = all(ks == list(range(ops_per_writer)) for ks in per_client.values())
    complete = len(per_client) == (NUM_NODES - 1) * writers_per_node
    facts = {
        "elections": rts.group.stats.elections,
        "appends_applied": len(log),
        "writers": len(per_client),
        "per_client_fifo": fifo_ok,
        "all_writers_complete": complete,
        "policy": rts.policy_of(handles["log"]),
        "new_sequencer": rts.group.sequencer_node_id,
        "crashed": crashed,
    }
    cluster.shutdown()
    return facts


# ---------------------------------------------------------------------- #
# Benchmarks
# ---------------------------------------------------------------------- #


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_beats_fixed_runtimes_on_mixed_counter_farm(benchmark):
    def experiment():
        return {rt: run_cell("counter-farm", rt, MIXED_SPEC,
                             controller=FAST_CONTROLLER)
                for rt in RUNTIMES}

    reports = run_once(benchmark, experiment)

    throughput = {rt: r.throughput for rt, r in reports.items()}
    # The tentpole claim: choosing the management policy per object beats
    # either cluster-wide choice on the mixed workload.
    best_fixed = max(throughput["broadcast"], throughput["p2p"])
    assert throughput["adaptive"] > best_fixed, throughput
    # Median latency improves as well: cold reads stay local while hot
    # writes skip the loaded sequencer.
    p50 = {rt: r.percentile_row()["p50"] for rt, r in reports.items()}
    assert p50["adaptive"] < p50["broadcast"], p50
    assert p50["adaptive"] < p50["p2p"], p50

    # The hot counters migrated to a primary copy; the cold tail stayed
    # broadcast replicated.
    policies = reports["adaptive"].final_policies()
    assert policies["counter[0]"] == "primary-invalidate", policies
    assert policies["counter[1]"] == "primary-invalidate", policies
    cold = {policies[f"counter[{i}]"] for i in range(4, 16)}
    assert cold == {"broadcast"}, policies
    migrations = reports["adaptive"].rts_summary["migrations"]
    assert migrations["to_primary"] >= 2

    # Determinism: re-running the adaptive cell reproduces it exactly,
    # migration points included.
    repeat = run_cell("counter-farm", "adaptive", MIXED_SPEC,
                      controller=FAST_CONTROLLER)
    assert repeat.fingerprint() == reports["adaptive"].fingerprint()

    rows = []
    for rt, report in reports.items():
        p50s, p95, p99, mean = format_latency_row(report.request_latency["overall"])
        migs = report.rts_summary.get("migrations", {}).get("total", 0)
        rows.append([rt, f"{report.throughput:.0f}", p50s, p95, p99, mean, str(migs)])
    benchmark.extra_info["throughput"] = {rt: round(t, 3) for rt, t in throughput.items()}
    benchmark.extra_info["policies"] = policies
    benchmark.extra_info["cells"] = {rt: r.fingerprint() for rt, r in reports.items()}
    print()
    print(format_table(
        ["runtime", "ops/s", "p50 ms", "p95 ms", "p99 ms", "mean ms",
         "migrations"],
        rows,
        title=f"Mixed hot/cold counter farm ({NUM_NODES} nodes, "
              f"{CLIENTS_PER_NODE} clients/node, seed {SEED}, shared "
              "Ethernet, loaded sequencer)"))


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_matches_best_fixed_p99_on_fifo_queue(benchmark):
    def experiment():
        return {rt: run_cell("fifo-queue", rt, FIFO_SPEC) for rt in RUNTIMES}

    reports = run_once(benchmark, experiment)

    p99 = {rt: r.percentile_row()["p99"] for rt, r in reports.items()}
    # The queue migrates to a primary copy early; after the (one-time)
    # transition the tail matches the better fixed runtime and beats the
    # broadcast runtime's sequencer-bound tail outright.
    best_fixed = min(p99["broadcast"], p99["p2p"])
    assert p99["adaptive"] <= 1.10 * best_fixed, p99
    assert p99["adaptive"] < 0.5 * p99["broadcast"], p99
    p95 = {rt: r.percentile_row()["p95"] for rt, r in reports.items()}
    assert p95["adaptive"] <= 1.05 * min(p95.values()), p95

    policies = reports["adaptive"].final_policies()
    assert policies["job-queue"] == "primary-invalidate", policies
    # Queue conservation held in every cell.
    for report in reports.values():
        facts = report.scenario_facts
        assert facts["enqueued"] - facts["dequeued"] == facts["backlog"]

    rows = []
    for rt, report in reports.items():
        p50s, p95s, p99s, mean = format_latency_row(report.request_latency["overall"])
        rows.append([rt, f"{report.throughput:.0f}", p50s, p95s, p99s, mean])
    benchmark.extra_info["p99_by_runtime"] = {rt: round(v, 6) for rt, v in p99.items()}
    benchmark.extra_info["cells"] = {rt: r.fingerprint() for rt, r in reports.items()}
    print()
    print(format_table(
        ["runtime", "ops/s", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
        rows,
        title=f"FIFO queue, all-write traffic ({NUM_NODES} nodes, "
              f"{CLIENTS_PER_NODE} clients/node, seed {SEED}, shared "
              "Ethernet, loaded sequencer)"))


@pytest.mark.benchmark(group="adaptive")
def test_migration_completes_through_a_sequencer_election(benchmark):
    facts = run_once(benchmark, run_election_migration)

    assert facts["elections"] >= 1, facts
    assert facts["policy"] == "primary-invalidate", facts
    assert facts["per_client_fifo"], facts
    assert facts["all_writers_complete"], facts
    assert facts["appends_applied"] == (NUM_NODES - 1) * 2 * 12, facts
    assert facts["new_sequencer"] != facts["crashed"]

    benchmark.extra_info["facts"] = facts
    print()
    print(format_table(
        ["elections", "appends", "writers", "fifo", "policy"],
        [[str(facts["elections"]), str(facts["appends_applied"]),
          str(facts["writers"]), str(facts["per_client_fifo"]),
          facts["policy"]]],
        title="Policy switch broadcast across a sequencer crash + election"))


# ---------------------------------------------------------------------- #
# Script mode: the CI determinism smoke report
# ---------------------------------------------------------------------- #

SMOKE_NODES = 4
SMOKE_MIXED = MIXED_SPEC.with_overrides(ops_per_client=24)
SMOKE_FIFO = FIFO_SPEC.with_overrides(ops_per_client=24)


def smoke_reports():
    """Reduced adaptive cells for the byte-diff determinism regression.

    Small enough for CI to run twice, but covering adaptive migration on
    both scenario shapes plus the mixed-policy scenario, so migration-point
    nondeterminism anywhere shows up as a byte diff.
    """
    cells = []
    for scenario, spec in (("counter-farm", SMOKE_MIXED),
                           ("fifo-queue", SMOKE_FIFO),
                           ("policy-mix", None)):
        cells.append(WorkloadRunner(
            scenario, workload=spec, runtime="adaptive",
            num_nodes=SMOKE_NODES, clients_per_node=2, seed=SEED,
            network_type="ethernet",
            config=ClusterConfig(num_nodes=SMOKE_NODES, seed=SEED,
                                 cost_model=COST_MODEL)).run())
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Adaptive migration benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced cells and emit canonical JSON")
    parser.add_argument("--out", default=None, help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    reports = smoke_reports()
    election = run_election_migration(writers_per_node=1, ops_per_writer=8)
    payload = {
        "seed": SEED,
        "nodes": SMOKE_NODES,
        "cells": [report.fingerprint() for report in reports],
        "election_migration": election,
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
