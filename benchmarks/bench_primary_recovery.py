"""PRIMARY RECOVERY — surviving a primary-copy crash, and what it costs.

The paper's point-to-point runtime loses an object when its primary's
machine dies.  The unified runtime now elects the surviving secondary with
the freshest coherence version (or restores the last committed record when
no valid copy survived — the primary-invalidate worst case) through an
epoch-stamped, totally-ordered ``takeover`` switch.  This benchmark
measures what a crash costs the clients:

* **unavailability window** — virtual time from the primary's crash to the
  takeover switch completing at the new primary (writes park, re-route and
  retry exactly once across the window);
* **write-latency spike** — the worst write latency observed by any client,
  against the no-crash baseline's;
* **post-recovery throughput** — completed writes per second in a fixed
  window after the takeover, against the same window of a no-crash
  baseline run (the recovered seat must serve at full speed).

Both primary policies are measured: ``primary-update`` recovers from a
surviving secondary copy, ``primary-invalidate`` (whose writes leave no
valid secondary) from the committed record.

Run as a script with ``--smoke`` to emit a reduced canonical-JSON report
for the CI determinism regression (two runs must be byte-identical)::

    PYTHONPATH=src python benchmarks/bench_primary_recovery.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
try:  # pragma: no cover - script-mode bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.amoeba.cluster import Cluster
from repro.config import ClusterConfig
from repro.metrics.report import format_table
from repro.rts.hybrid import HybridRts
from repro.rts.object_model import ObjectSpec, operation

try:
    from conftest import run_once
except ImportError:  # pragma: no cover - script mode does not need pytest glue
    run_once = None

NUM_NODES = 6
SEED = 42
WRITERS_PER_NODE = 2
OPS_PER_WRITER = 60
#: Fixed inter-write pacing per writer (open-loop: latency is measured from
#: the intended arrival, so the outage's queueing delay is charged to it).
GAP = 0.0004
CRASH_AT = 0.008
#: Throughput comparison window (virtual seconds) starting at the takeover.
TPUT_WINDOW = 0.008


class BenchLog(ObjectSpec):
    """Order-sensitive object: the applied write order IS its state."""

    def init(self):
        self.items = []

    @operation(write=True)
    def append(self, item):
        self.items.append(item)
        return len(self.items)


def run_recovery_cell(policy, crash=True, seed=SEED, num_nodes=NUM_NODES,
                      writers_per_node=WRITERS_PER_NODE,
                      ops_per_writer=OPS_PER_WRITER):
    """One cell: open-loop writers hammer a primary-copy log whose seat sits
    on a reserved victim node; optionally crash the victim mid-run."""
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    rts = HybridRts(cluster, default_policy="broadcast")
    victim = num_nodes - 1
    quiet = num_nodes - 2  # hosts the crasher only, so CRASH_AT stays exact
    handles = {}
    completions = []
    latencies = []

    def setup():
        proc = cluster.sim.current_process
        handles["log"] = rts.create_object(proc, BenchLog, name="log", policy=policy)
        rts.relocate_primary(proc, handles["log"], target=victim)

    cluster.node(0).kernel.spawn_thread(setup)
    cluster.run()
    assert rts.directory.primary_of(handles["log"].obj_id) == victim
    #: Workload epoch: crash schedule and measurement windows are relative
    #: to when the writers start, not to the cluster's setup time.
    t0 = cluster.sim.now

    def writer(node_id, writer_id):
        proc = cluster.sim.current_process
        start = proc.local_time
        for k in range(ops_per_writer):
            arrival = start + k * GAP
            if proc.local_time < arrival:
                proc.hold(arrival - proc.local_time)
            rts.invoke(proc, handles["log"], "append",
                       ((node_id, writer_id, k),))
            completions.append(proc.local_time)
            latencies.append(proc.local_time - arrival)

    def crasher():
        proc = cluster.sim.current_process
        proc.hold(CRASH_AT)
        cluster.node(victim).crash()

    for node in cluster.nodes:
        if node.node_id in (victim, quiet):
            continue
        for writer_id in range(writers_per_node):
            node.kernel.spawn_thread(writer, node.node_id, writer_id)
    if crash:
        cluster.node(quiet).kernel.spawn_thread(crasher)
    cluster.run()

    # Exactly-once + per-client FIFO over the final log.
    primary = rts.directory.primary_of(handles["log"].obj_id)
    assert cluster.node(primary).alive
    items = rts.managers[primary].get(handles["log"].obj_id).instance.items
    per_client = {}
    for node_id, writer_id, k in items:
        per_client.setdefault((node_id, writer_id), []).append(k)
    expected_writers = (num_nodes - 2) * writers_per_node
    fifo_ok = (len(per_client) == expected_writers
               and all(ks == list(range(ops_per_writer))
                       for ks in per_client.values()))

    if crash:
        assert rts.recoveries, "the crash must have triggered a takeover"
        record = rts.recoveries[0]
        window = record.window
        tput_from = record.completed_at
        source = "snapshot" if record.from_snapshot else "copy"
    else:
        window = None
        # Baseline throughput is read over the same virtual window a crash
        # cell would measure after its takeover.
        tput_from = t0 + CRASH_AT + 0.001
        source = None
    in_window = [t for t in completions if tput_from <= t < tput_from + TPUT_WINDOW]
    facts = {
        "policy": policy,
        "crashed": crash,
        "appends_applied": len(items),
        "expected_appends": expected_writers * ops_per_writer,
        "per_client_fifo": fifo_ok,
        "recovery_window": None if window is None else round(window, 9),
        "recovery_source": source,
        "max_write_latency": round(max(latencies), 9),
        "post_window_ops": len(in_window),
        "post_window_throughput": round(len(in_window) / TPUT_WINDOW, 3),
        "deduplicated_writes": rts.stats.deduplicated_writes,
        "final_primary": rts.directory.primary_of(handles["log"].obj_id),
    }
    cluster.shutdown()
    return facts


def recovery_cells(**kwargs):
    return {
        "baseline-update": run_recovery_cell("primary-update", crash=False,
                                             **kwargs),
        "crash-update": run_recovery_cell("primary-update", **kwargs),
        "baseline-invalidate": run_recovery_cell("primary-invalidate",
                                                 crash=False, **kwargs),
        "crash-invalidate": run_recovery_cell("primary-invalidate", **kwargs),
    }


# ---------------------------------------------------------------------- #
# Benchmarks
# ---------------------------------------------------------------------- #


def _print_cells(title, cells):
    rows = []
    for name, facts in cells.items():
        rows.append([
            name,
            facts["recovery_source"] or "-",
            "-" if facts["recovery_window"] is None
            else f"{facts['recovery_window'] * 1e3:.2f}",
            f"{facts['max_write_latency'] * 1e3:.2f}",
            f"{facts['post_window_throughput']:.0f}",
            str(facts["appends_applied"]),
            str(facts["per_client_fifo"]),
        ])
    print()
    print(format_table(
        ["cell", "source", "window ms", "max lat ms", "post ops/s",
         "appends", "fifo"],
        rows, title=title))


@pytest.mark.benchmark(group="primary-recovery")
def test_recovery_window_is_bounded_with_exactly_once_writes(benchmark):
    cells = run_once(benchmark, recovery_cells)

    for name, facts in cells.items():
        # Every cell — crashed or not — applies every append exactly once,
        # in per-writer FIFO order.
        assert facts["appends_applied"] == facts["expected_appends"], (name,
                                                                       facts)
        assert facts["per_client_fifo"], (name, facts)
    for policy in ("update", "invalidate"):
        crashed = cells[f"crash-{policy}"]
        baseline = cells[f"baseline-{policy}"]
        # The acceptance claim: the seat is dark for a bounded window (well
        # under the pacing of the workload's 24 writers)...
        assert crashed["recovery_window"] is not None
        assert crashed["recovery_window"] < 0.01, crashed
        assert crashed["final_primary"] != NUM_NODES - 1
        # ... and the recovered seat serves the post-takeover window at
        # baseline speed (the outage does not linger).
        assert (crashed["post_window_throughput"]
                >= 0.6 * baseline["post_window_throughput"]), (crashed,
                                                               baseline)
    # The two policies recover through their different paths.
    assert cells["crash-update"]["recovery_source"] == "copy"
    assert cells["crash-invalidate"]["recovery_source"] == "snapshot"

    # Determinism: the crash cell replays byte-for-byte, takeover included.
    repeat = run_recovery_cell("primary-update")
    assert repeat == cells["crash-update"]

    benchmark.extra_info["cells"] = cells
    _print_cells(
        f"Primary crash at t={CRASH_AT * 1e3:.0f} ms under "
        f"{(NUM_NODES - 2) * WRITERS_PER_NODE} open-loop writers "
        f"({NUM_NODES} nodes, seed {SEED})", cells)


# ---------------------------------------------------------------------- #
# Script mode: the CI determinism smoke report
# ---------------------------------------------------------------------- #

SMOKE_KWARGS = dict(num_nodes=5, writers_per_node=1, ops_per_writer=40)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Primary-failure recovery benchmark (script mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced cells and emit canonical JSON")
    parser.add_argument("--out", default=None, help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("script mode currently only supports --smoke")
    payload = {
        "seed": SEED,
        "nodes": SMOKE_KWARGS["num_nodes"],
        "cells": recovery_cells(**SMOKE_KWARGS),
    }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
